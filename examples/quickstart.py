"""Quickstart: condense ACM with FreeHGC and evaluate the condensed graph.

Runs the paper's core protocol end-to-end in under a minute on a laptop CPU:

1. generate the synthetic ACM heterogeneous graph,
2. condense it to 5% of its nodes with FreeHGC (training-free),
3. train SeHGNN on the condensed graph,
4. evaluate on the full graph's test split and compare with whole-graph training.

Run with: ``python examples/quickstart.py``
"""

from __future__ import annotations

import time

from repro.core import FreeHGC
from repro.datasets import load_acm
from repro.evaluation import format_table
from repro.models import SeHGNN


def main() -> None:
    print("Loading the synthetic ACM heterogeneous graph ...")
    graph = load_acm(scale=1.0, seed=0)
    print(" ", graph.summary())

    ratio = 0.05
    print(f"\nCondensing with FreeHGC (training-free) at ratio {ratio:.1%} ...")
    condenser = FreeHGC(max_hops=3, max_paths=16)
    start = time.perf_counter()
    condensed = condenser.condense(graph, ratio, seed=0)
    condense_seconds = time.perf_counter() - start
    print(" ", condensed.summary())
    print(f"  condensation took {condense_seconds:.2f}s "
          f"(storage {condensed.storage_bytes() / 1e3:.0f} kB "
          f"vs {graph.storage_bytes() / 1e6:.1f} MB for the full graph)")

    print("\nTraining SeHGNN on the condensed graph ...")
    condensed_model = SeHGNN(hidden_dim=64, epochs=120, max_hops=2, seed=0)
    condensed_model.fit(condensed)
    condensed_accuracy = condensed_model.evaluate(graph)

    print("Training SeHGNN on the whole graph (reference) ...")
    whole_model = SeHGNN(hidden_dim=64, epochs=120, max_hops=2, seed=0)
    whole_model.fit(graph)
    whole_accuracy = whole_model.evaluate(graph)

    rows = [
        {
            "training data": f"FreeHGC condensed ({ratio:.1%} of nodes)",
            "test accuracy (full graph)": f"{100 * condensed_accuracy:.2f}%",
            "nodes": condensed.total_nodes,
        },
        {
            "training data": "whole graph",
            "test accuracy (full graph)": f"{100 * whole_accuracy:.2f}%",
            "nodes": graph.total_nodes,
        },
    ]
    print("\n" + format_table(rows, title="FreeHGC quickstart result"))
    print(
        f"\nThe condensed graph retains "
        f"{100 * condensed_accuracy / max(whole_accuracy, 1e-9):.1f}% of the "
        "whole-graph accuracy while using a fraction of the data."
    )


if __name__ == "__main__":
    main()
