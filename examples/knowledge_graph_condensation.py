"""Scenario: condensing an RDF knowledge graph (MUTAG-style) and comparing methods.

Knowledge graphs have many relation types and no obvious expert meta-paths,
which is exactly the setting FreeHGC's general meta-path generation targets
(Table V of the paper).  This example compares FreeHGC with the coreset
baselines and HGCond on the synthetic MUTAG graph, reporting accuracy,
condensation time and storage for each method.

Run with: ``python examples/knowledge_graph_condensation.py``
"""

from __future__ import annotations

from repro.datasets import load_mutag
from repro.evaluation import (
    evaluate_condenser,
    format_table,
    make_condenser,
    make_model_factory,
    whole_graph_reference,
)


def main() -> None:
    graph = load_mutag(scale=1.0, seed=0)
    print(graph.summary())
    print(f"Relations: {len(graph.schema.relations)} typed edge sets\n")

    ratio = 0.05
    model_factory = make_model_factory("sehgnn", hidden_dim=64, epochs=100, max_hops=2)

    rows = []
    for method in ("random-hg", "herding-hg", "gcond", "hgcond", "freehgc"):
        condenser = make_condenser(method, max_hops=2)
        evaluation = evaluate_condenser(
            graph, condenser, ratio, model_factory, seeds=2, dataset_name="mutag"
        )
        rows.append(
            {
                "method": evaluation.method,
                "accuracy %": round(100 * evaluation.mean_accuracy, 2),
                "± std": round(100 * evaluation.std_accuracy, 2),
                "condense s": round(evaluation.condense_seconds, 2),
                "storage kB": round(evaluation.storage / 1e3, 1),
            }
        )
    whole = whole_graph_reference(graph, model_factory, seeds=1, dataset_name="mutag")
    rows.append(
        {
            "method": whole.method,
            "accuracy %": round(100 * whole.mean_accuracy, 2),
            "± std": round(100 * whole.std_accuracy, 2),
            "condense s": 0.0,
            "storage kB": round(whole.storage / 1e3, 1),
        }
    )
    print(format_table(rows, title=f"MUTAG knowledge graph, condensation ratio {ratio:.1%}"))
    print(
        "\nExpected shape (Table V of the paper): FreeHGC is the most accurate "
        "condensation method and by far the fastest of the non-trivial ones."
    )


if __name__ == "__main__":
    main()
