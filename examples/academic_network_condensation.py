"""Scenario: condensing a hierarchical academic network (DBLP-style).

DBLP is the paper's "Structure 2" example (Fig. 5): authors (root) connect to
papers (father type), papers connect to terms and venues (leaf types).  This
example walks through the three FreeHGC stages explicitly — target selection,
father selection, leaf synthesis — then saves the condensed graph to disk and
shows it can be reloaded and used to train several different HGNNs (the
generalisation property of Table IV).

Run with: ``python examples/academic_network_condensation.py``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import FreeHGC, classify_node_types
from repro.datasets import load_dblp
from repro.evaluation import format_table
from repro.hetero import compression_summary, load_graph, save_graph
from repro.models import HAN, HGB, SeHGNN


def main() -> None:
    graph = load_dblp(scale=1.0, seed=0)
    hierarchy = classify_node_types(graph.schema)
    print(graph.summary())
    print(
        f"Topology (Fig. 5 structure {hierarchy.structure}): "
        f"root={hierarchy.root}, fathers={hierarchy.fathers}, leaves={hierarchy.leaves}"
    )

    ratio = 0.05
    condenser = FreeHGC(max_hops=4, max_paths=16)
    condensed = condenser.condense(graph, ratio, seed=0)
    print("\nCondensed graph:", condensed.summary())

    selection = condenser.last_target_selection
    print(
        f"Target selection used {selection.diagnostics['num_metapaths']} meta-paths "
        f"and per-class budgets {selection.diagnostics['class_budgets']}"
    )

    summary = compression_summary(graph, condensed)
    print(
        f"Storage: {summary['original_storage_mb']:.2f} MB -> "
        f"{summary['condensed_storage_mb']:.2f} MB "
        f"({summary['storage_reduction_pct']:.1f}% saved)"
    )

    # Persist and reload the condensed graph — the artefact a downstream team
    # would actually ship instead of the full network.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "dblp_condensed.npz"
        save_graph(condensed, path)
        print(f"\nSaved condensed graph to {path.name} ({path.stat().st_size / 1e3:.0f} kB)")
        reloaded = load_graph(path)

    # Generalisation: train three different HGNN families on the same
    # condensed graph and evaluate all of them on the full graph.
    rows = []
    for model_cls in (SeHGNN, HGB, HAN):
        model = model_cls(hidden_dim=64, epochs=100, max_hops=2, seed=0)
        model.fit(reloaded)
        rows.append(
            {
                "HGNN": model_cls.name,
                "accuracy on full DBLP": f"{100 * model.evaluate(graph):.2f}%",
            }
        )
    print("\n" + format_table(rows, title="One condensed graph, many HGNNs (Table IV property)"))


if __name__ == "__main__":
    main()
