"""Strategy plug-ins: extend FreeHGC through the unified registry.

Demonstrates the composable condensation API:

1. ``repro.condense`` — the one-call facade over the registry,
2. sweeping built-in stage strategies (the Table VIII ablation axes)
   without touching ``FreeHGC`` internals,
3. registering a *custom* other-type stage and driving ``FreeHGC`` with it
   by name, exactly like a built-in.

Run with: ``python examples/strategy_plugins.py``
"""

from __future__ import annotations

import numpy as np

import repro
from repro import registry
from repro.core import ConfigurableStage, StageResult
from repro.evaluation import format_table


@registry.other_stages.register("degree-topk")
class DegreeTopKStage(ConfigurableStage):
    """Toy custom stage: keep the ``budget`` highest-degree nodes of a type.

    Stages receive the shared :class:`~repro.core.CondensationContext`, so
    they can reuse memoized meta-path products; this one only needs the raw
    graph.
    """

    name = "degree-topk"

    def condense_type(self, context, node_type, budget, *, anchor=None, providers=None):
        graph = context.graph
        degrees = np.zeros(graph.num_nodes[node_type], dtype=np.float64)
        for name, matrix in graph.adjacency.items():
            rel = graph.schema.relation(name)
            if rel.src == node_type:
                degrees += np.asarray(matrix.sum(axis=1)).ravel()
            if rel.dst == node_type:
                degrees += np.asarray(matrix.sum(axis=0)).ravel()
        order = np.argsort(-degrees, kind="stable")
        return StageResult(node_type, selected=order[:budget])


def main() -> None:
    ratio = 0.05
    print("Condensing ACM with every father-stage strategy ...")
    rows = []
    for strategy in (*registry.other_stages.names(),):
        condensed = repro.condense(
            "acm", ratio, scale=0.35, seed=0, max_hops=2, father_strategy=strategy
        )
        rows.append(
            {
                "father_strategy": strategy,
                "nodes": condensed.total_nodes,
                "edges": condensed.total_edges,
            }
        )
    print(format_table(rows, title=f"ACM @ {ratio:.1%} per father strategy"))
    print(
        "\nThe custom 'degree-topk' stage above was registered with one "
        "decorator and swept exactly like the built-ins."
    )


if __name__ == "__main__":
    main()
