"""Scenario: condensing your own heterogeneous graph.

Shows the full "bring your own data" path: declare a schema, assemble a graph
with :class:`~repro.hetero.builder.HeteroGraphBuilder` from plain NumPy edge
lists (here: a small synthetic e-commerce network of users, products, brands
and categories), condense it with FreeHGC and inspect what was kept.

Run with: ``python examples/custom_dataset.py``
"""

from __future__ import annotations

import numpy as np

from repro.core import FreeHGC, classify_node_types
from repro.evaluation import format_table
from repro.hetero import HeteroGraphBuilder, HeteroSchema, Relation
from repro.models import SeHGNN


def build_ecommerce_graph(seed: int = 0):
    """A users/products/brands/categories graph with planted user segments."""
    rng = np.random.default_rng(seed)
    schema = HeteroSchema(
        node_types=("user", "product", "brand", "category"),
        relations=(
            Relation("bought", "user", "product"),
            Relation("made-by", "product", "brand"),
            Relation("in-category", "product", "category"),
        ),
        target_type="user",
        num_classes=3,
        name="ecommerce",
    )
    n_users, n_products, n_brands, n_categories = 600, 900, 40, 12
    segments = rng.integers(0, 3, size=n_users)
    product_topics = rng.integers(0, 3, size=n_products)

    builder = HeteroGraphBuilder(schema)
    segment_means = rng.standard_normal((3, 16)) * 2.0
    builder.add_nodes(
        "user", n_users, segment_means[segments] + rng.standard_normal((n_users, 16))
    )
    topic_means = rng.standard_normal((3, 12)) * 2.0
    builder.add_nodes(
        "product",
        n_products,
        topic_means[product_topics] + 0.6 * rng.standard_normal((n_products, 12)),
    )
    builder.add_nodes("brand", n_brands)
    builder.add_nodes("category", n_categories)

    # Users mostly buy products of their own segment's topic.
    src, dst = [], []
    for user in range(n_users):
        for _ in range(rng.poisson(4) + 1):
            if rng.random() < 0.8:
                pool = np.flatnonzero(product_topics == segments[user])
            else:
                pool = np.arange(n_products)
            src.append(user)
            dst.append(int(rng.choice(pool)))
    builder.add_edges("bought", np.array(src), np.array(dst))
    builder.add_edges(
        "made-by", np.arange(n_products), rng.integers(0, n_brands, size=n_products)
    )
    builder.add_edges(
        "in-category", np.arange(n_products), rng.integers(0, n_categories, size=n_products)
    )

    builder.set_labels(segments)
    order = rng.permutation(n_users)
    builder.set_splits(order[:150], order[150:200], order[200:])
    builder.set_metadata(name="ecommerce")
    return builder.build()


def main() -> None:
    graph = build_ecommerce_graph()
    print(graph.summary())
    hierarchy = classify_node_types(graph.schema)
    print(f"root={hierarchy.root}, fathers={hierarchy.fathers}, leaves={hierarchy.leaves}\n")

    condenser = FreeHGC(max_hops=3, max_paths=16)
    condensed = condenser.condense(graph, 0.08, seed=0)
    print("Condensed:", condensed.summary(), "\n")

    rows = [
        {
            "node type": node_type,
            "original": graph.num_nodes[node_type],
            "condensed": condensed.num_nodes[node_type],
            "role": hierarchy.role_of(node_type),
        }
        for node_type in graph.schema.node_types
    ]
    print(format_table(rows, title="Per-type condensation budget"))

    model = SeHGNN(hidden_dim=64, epochs=100, max_hops=2, seed=0)
    model.fit(condensed)
    print(
        f"\nSeHGNN trained on the condensed graph reaches "
        f"{100 * model.evaluate(graph):.2f}% accuracy on the full user base."
    )


if __name__ == "__main__":
    main()
