"""Drive the experiment runner programmatically: plan, execute, resume.

The ``python -m repro`` CLI is a thin shell around the three calls shown
here.  The script:

1. expands an :class:`~repro.evaluation.pipeline.ExperimentConfig` into an
   explicit cell plan,
2. executes it across worker processes with a progress callback, storing
   every completed cell in an artifact store,
3. re-executes the same plan to demonstrate that the second pass is served
   entirely from the store (zero cells re-run),
4. renders the report rows from the returned evaluations.

Run with: ``python examples/parallel_sweep.py``
"""

from __future__ import annotations

import tempfile

from repro.evaluation import ExperimentConfig, format_table, sweep_columns
from repro.runner import ArtifactStore, execute_plan, plan_ratio_sweep


def main() -> None:
    config = ExperimentConfig(
        dataset="acm",
        ratios=(0.024, 0.048),
        methods=("random-hg", "herding-hg", "freehgc"),
        model="sehgnn",
        scale=0.2,
        seeds=2,
        epochs=40,
        hidden_dim=16,
    )
    plan = plan_ratio_sweep(config)
    print(f"plan: {plan.description}")
    for cell, key in zip(plan.cells, plan.keys()):
        print(f"  {key}  {cell.label()}")

    store = ArtifactStore(tempfile.mkdtemp(prefix="repro-runs-"))

    def progress(outcome, index, total) -> None:
        status = "cached" if outcome.cached else f"ran {outcome.elapsed_s:.2f}s"
        print(f"  [{index + 1}/{total}] {outcome.cell.label()}  {status}")

    print("\nfirst pass (4 workers):")
    outcomes = execute_plan(plan, workers=4, store=store, progress=progress)

    print("\nsecond pass (resumed from the store):")
    resumed = execute_plan(plan, workers=4, store=store, progress=progress)
    assert all(outcome.cached for outcome in resumed)

    rows = [outcome.evaluation.as_row() for outcome in outcomes]
    print()
    print(format_table(rows, columns=sweep_columns(), title="Ratio sweep on ACM"))
    print(f"\nartifacts: {store.path}")


if __name__ == "__main__":
    main()
