#!/usr/bin/env python
"""Check that intra-repo markdown links resolve.

Scans every tracked ``*.md`` file for inline links/images
(``[text](target)``) and verifies that relative targets exist on disk
(anchors and external ``http(s)``/``mailto`` targets are skipped; anchor
fragments on existing files are accepted without heading verification).

Exit code 0 when every link resolves, 1 otherwise — suitable for CI.

Usage::

    python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — excluding images is pointless, broken images are bugs too.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", ".hypothesis", ".pytest_cache", "__pycache__", "node_modules", "runs"}


def markdown_files(root: Path) -> list[Path]:
    files = []
    for path in root.rglob("*.md"):
        if not any(part in SKIP_DIRS for part in path.parts):
            files.append(path)
    return sorted(files)


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(root)}:{line_number}: broken link -> {target}"
                )
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    errors: list[str] = []
    files = markdown_files(root)
    for path in files:
        errors.extend(check_file(path, root))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) across {len(files)} markdown file(s)")
        return 1
    print(f"all intra-repo links resolve across {len(files)} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
