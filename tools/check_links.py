#!/usr/bin/env python
"""Check that intra-repo markdown links — including #anchors — resolve.

Scans every tracked ``*.md`` file for inline links/images
(``[text](target)``) and verifies that

* relative file targets exist on disk, and
* anchor fragments — both same-file ``#section`` links and cross-file
  ``other.md#section`` links — match a heading in the target document,
  using GitHub's slugification (lowercase, punctuation stripped, spaces
  to ``-``, duplicate slugs suffixed ``-1``, ``-2``, …).

External ``http(s)``/``mailto`` targets are skipped.  Exit code 0 when
every link resolves, 1 otherwise — suitable for CI.

Usage::

    python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — excluding images is pointless, broken images are bugs too.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# GitHub slugs keep word chars, spaces and hyphens; everything else drops.
_SLUG_STRIP = re.compile(r"[^\w\- ]", re.UNICODE)
_MD_DECORATION = re.compile(r"[`*_]|\[([^\]]*)\]\([^)]*\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")
SKIP_DIRS = {".git", ".hypothesis", ".pytest_cache", "__pycache__", "node_modules", "runs"}


def markdown_files(root: Path) -> list[Path]:
    files = []
    for path in root.rglob("*.md"):
        if not any(part in SKIP_DIRS for part in path.parts):
            files.append(path)
    return sorted(files)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for one heading's text."""
    text = _MD_DECORATION.sub(lambda m: m.group(1) or "", heading)
    text = _SLUG_STRIP.sub("", text.strip().lower())
    return text.replace(" ", "-")


def heading_anchors(text: str) -> set[str]:
    """Every anchor a markdown document exposes, GitHub-style.

    Duplicate headings get ``-1``/``-2`` suffixes, matching how GitHub
    disambiguates them.
    """
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match is None:
            continue
        slug = slugify(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def check_file(path: Path, root: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    anchor_cache.setdefault(path.resolve(), heading_anchors(text))
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            file_part, _, fragment = target.partition("#")
            resolved = (path.parent / file_part).resolve() if file_part else path.resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(root)}:{line_number}: broken link -> {file_part}"
                )
                continue
            if not fragment or resolved.suffix.lower() != ".md" and file_part:
                continue
            if resolved not in anchor_cache:
                anchor_cache[resolved] = heading_anchors(
                    resolved.read_text(encoding="utf-8")
                )
            if fragment.lower() not in anchor_cache[resolved]:
                errors.append(
                    f"{path.relative_to(root)}:{line_number}: "
                    f"broken anchor -> {target} (no heading slugs to #{fragment.lower()})"
                )
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    errors: list[str] = []
    files = markdown_files(root)
    anchor_cache: dict[Path, set[str]] = {}
    for path in files:
        errors.extend(check_file(path, root, anchor_cache))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) across {len(files)} markdown file(s)")
        return 1
    print(f"all intra-repo links and anchors resolve across {len(files)} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
