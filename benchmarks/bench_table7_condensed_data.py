"""Table VII — condensed vs. original graphs: accuracy, storage, training time.

For each dataset the harness reports whole-graph accuracy / storage / HGB and
SeHGNN training time against the same quantities measured on the HGCond and
FreeHGC condensed graphs (r = 2.4%).  The paper's shape: FreeHGC cuts storage
by >95% and trains several times faster than the whole graph, while needing
less storage and training time than HGCond.
"""

from __future__ import annotations

import pytest

from benchmarks.common import EPOCHS, HIDDEN, SCALE, SEEDS, emit
from repro.datasets import load_dataset
from repro.evaluation import (
    evaluate_condenser,
    make_condenser,
    make_model_factory,
    whole_graph_reference,
)

DATASETS = ("acm", "dblp")
RATIO = 0.024
METHODS = ("hgcond", "freehgc")
TEST_MODELS = ("hgb", "sehgnn")


def run_table7(dataset: str) -> list[dict]:
    graph = load_dataset(dataset, scale=SCALE, seed=0)
    rows: list[dict] = []
    for model_name in TEST_MODELS:
        factory = make_model_factory(
            model_name, hidden_dim=HIDDEN, epochs=EPOCHS, max_hops=2
        )
        whole = whole_graph_reference(graph, factory, seeds=SEEDS, dataset_name=dataset)
        rows.append({**whole.as_row(), "test_model": model_name.upper()})
        for method in METHODS:
            condenser = make_condenser(method, max_hops=2)
            evaluation = evaluate_condenser(
                graph, condenser, RATIO, factory, seeds=SEEDS, dataset_name=dataset
            )
            rows.append({**evaluation.as_row(), "test_model": model_name.upper()})
    return rows


@pytest.mark.parametrize("dataset", DATASETS)
def test_table7_condensed_data(benchmark, dataset):
    rows = benchmark.pedantic(run_table7, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Table VII — condensed vs original graph on {dataset.upper()} (r = 2.4%)",
        rows,
        f"table7_{dataset}.txt",
        paper_note=(
            "The condensed graphs cut storage by >90% and accelerate HGB/SeHGNN "
            "training severalfold while keeping most of the accuracy; FreeHGC "
            "needs less storage and training time than HGCond (Table VII)."
        ),
    )
    whole_rows = [row for row in rows if row["method"] == "Whole Dataset"]
    freehgc_rows = [row for row in rows if row["method"] == "FreeHGC"]
    assert freehgc_rows and whole_rows
    assert min(r["storage_kb"] for r in freehgc_rows) < min(
        r["storage_kb"] for r in whole_rows
    )
