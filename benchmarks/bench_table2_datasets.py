"""Table II — overview of the datasets.

Regenerates the dataset-statistics table (node/edge counts, type counts,
target type, number of classes) for every synthetic benchmark graph at the
benchmark scale, mirroring Table II of the paper.
"""

from __future__ import annotations

from benchmarks.common import SCALE, emit
from repro.datasets import available_datasets, load_dataset
from repro.hetero import graph_stats


def run_table2() -> list[dict]:
    rows = []
    for name in available_datasets():
        graph = load_dataset(name, scale=SCALE, seed=0)
        rows.append(graph_stats(graph).as_row())
    return rows


def test_table2_dataset_overview(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit(
        "Table II — overview of the (synthetic) datasets",
        rows,
        "table2_datasets.txt",
        paper_note=(
            "Schemas (type counts, target type, class counts) follow the paper's "
            "Table II; node counts are scaled down for CPU-only runs."
        ),
    )
    assert len(rows) == 7
