"""Fig. 8 — condensation time of GCond / HGCond / FreeHGC.

The paper reports FreeHGC condensing several times faster than both
optimisation-based methods on Freebase, AM and AMiner because it never trains
a relay model.  The harness measures wall-clock condensation time per method
and ratio (paper-scale optimisation loops for GCond/HGCond).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import SCALE, emit
from repro.datasets import load_dataset
from repro.evaluation import make_condenser

GRIDS = {
    "freebase": (0.024, 0.048),
    "aminer": (0.02, 0.05),
}
METHODS = ("gcond", "hgcond", "freehgc")


def run_fig8(dataset: str) -> list[dict]:
    graph = load_dataset(dataset, scale=SCALE if dataset != "aminer" else 1.0, seed=0)
    rows: list[dict] = []
    for ratio in GRIDS[dataset]:
        timings: dict[str, float] = {}
        for method in METHODS:
            condenser = make_condenser(method, max_hops=2, fast_optimization=False)
            start = time.perf_counter()
            condenser.condense(graph, ratio, seed=0)
            timings[method] = time.perf_counter() - start
        speedup_gcond = timings["gcond"] / max(timings["freehgc"], 1e-9)
        speedup_hgcond = timings["hgcond"] / max(timings["freehgc"], 1e-9)
        rows.append(
            {
                "dataset": dataset,
                "ratio": ratio,
                "gcond_s": round(timings["gcond"], 3),
                "hgcond_s": round(timings["hgcond"], 3),
                "freehgc_s": round(timings["freehgc"], 3),
                "speedup_vs_gcond": round(speedup_gcond, 2),
                "speedup_vs_hgcond": round(speedup_hgcond, 2),
            }
        )
    return rows


@pytest.mark.parametrize("dataset", sorted(GRIDS))
def test_fig8_efficiency(benchmark, dataset):
    rows = benchmark.pedantic(run_fig8, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Fig. 8 — condensation time on {dataset.upper()}",
        rows,
        f"fig8_{dataset}.txt",
        paper_note=(
            "FreeHGC condenses several times faster than GCond and HGCond "
            "(up to 4–11x in the paper, Fig. 8)."
        ),
    )
    for row in rows:
        assert row["freehgc_s"] < row["hgcond_s"]
