"""Fig. 8 — condensation time of GCond / HGCond / FreeHGC.

The paper reports FreeHGC condensing several times faster than both
optimisation-based methods on Freebase, AM and AMiner because it never trains
a relay model.  The harness measures wall-clock condensation time per method
and ratio (paper-scale optimisation loops for GCond/HGCond).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import SCALE, emit
from repro.core import CondensationContext, FreeHGC
from repro.datasets import load_dataset
from repro.evaluation import make_condenser

GRIDS = {
    "freebase": (0.024, 0.048),
    "aminer": (0.02, 0.05),
}
METHODS = ("gcond", "hgcond", "freehgc")

#: grid for the shared-context wall-time measurement (ACM, paper ratios)
CONTEXT_GRID = {"acm": (0.024, 0.048)}


def run_fig8(dataset: str) -> list[dict]:
    graph = load_dataset(dataset, scale=SCALE if dataset != "aminer" else 1.0, seed=0)
    rows: list[dict] = []
    for ratio in GRIDS[dataset]:
        timings: dict[str, float] = {}
        for method in METHODS:
            condenser = make_condenser(method, max_hops=2, fast_optimization=False)
            start = time.perf_counter()
            condenser.condense(graph, ratio, seed=0)
            timings[method] = time.perf_counter() - start
        speedup_gcond = timings["gcond"] / max(timings["freehgc"], 1e-9)
        speedup_hgcond = timings["hgcond"] / max(timings["freehgc"], 1e-9)
        rows.append(
            {
                "dataset": dataset,
                "ratio": ratio,
                "gcond_s": round(timings["gcond"], 3),
                "hgcond_s": round(timings["hgcond"], 3),
                "freehgc_s": round(timings["freehgc"], 3),
                "speedup_vs_gcond": round(speedup_gcond, 2),
                "speedup_vs_hgcond": round(speedup_hgcond, 2),
            }
        )
    return rows


def run_context_reuse(dataset: str) -> list[dict]:
    """Condense wall-time with the shared CondensationContext vs. cold.

    ``freehgc_s`` is the default path: one memoized context shared by every
    stage of a ``condense()`` call.  ``freehgc_cold_s`` forces every stage
    to recompute meta-path products from scratch (``cache=False``), i.e.
    the pre-context behaviour; the ratio is the condense-time win of the
    shared context.
    """
    graph = load_dataset(dataset, scale=SCALE, seed=0)
    max_hops = 3 if dataset == "acm" else 2
    # Untimed warm-up so BLAS/scipy initialisation does not skew the first row.
    FreeHGC(max_hops=max_hops, max_paths=16).condense(
        graph, CONTEXT_GRID[dataset][0], seed=0
    )
    rows: list[dict] = []
    repeats = 2
    for ratio in CONTEXT_GRID[dataset]:
        condenser = FreeHGC(max_hops=max_hops, max_paths=16)

        def timed_condense(context=None) -> float:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                condenser.condense(graph, ratio, seed=0, context=context)
                best = min(best, time.perf_counter() - start)
            return best

        shared_s = timed_condense()
        stats = dict(condenser.last_context.stats)
        cold_s = timed_condense(
            CondensationContext(graph, max_hops=max_hops, max_paths=16, cache=False)
        )
        rows.append(
            {
                "dataset": dataset,
                "ratio": ratio,
                "freehgc_s": round(shared_s, 3),
                "freehgc_cold_s": round(cold_s, 3),
                "context_speedup": round(cold_s / max(shared_s, 1e-9), 2),
                "adjacency_builds": stats["adjacency_builds"],
                "adjacency_hits": stats["adjacency_hits"],
            }
        )
    return rows


@pytest.mark.parametrize("dataset", sorted(GRIDS))
def test_fig8_efficiency(benchmark, dataset):
    rows = benchmark.pedantic(run_fig8, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Fig. 8 — condensation time on {dataset.upper()}",
        rows,
        f"fig8_{dataset}.txt",
        paper_note=(
            "FreeHGC condenses several times faster than GCond and HGCond "
            "(up to 4–11x in the paper, Fig. 8)."
        ),
    )
    for row in rows:
        assert row["freehgc_s"] < row["hgcond_s"]


@pytest.mark.parametrize("dataset", sorted(CONTEXT_GRID))
def test_fig8_context_reuse(benchmark, dataset):
    rows = benchmark.pedantic(run_context_reuse, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Fig. 8 (extended) — FreeHGC condense() wall-time with shared "
        f"CondensationContext on {dataset.upper()}",
        rows,
        f"fig8_context_{dataset}.txt",
        paper_note=(
            "All condensation stages share one memoized CondensationContext; "
            "freehgc_cold_s recomputes every meta-path product per stage "
            "(the pre-context behaviour)."
        ),
    )
    for row in rows:
        assert row["adjacency_hits"] > 0, "stages must reuse cached adjacencies"
        # Loose bound: the shared context must never make condense slower in
        # any meaningful way (tolerates timer noise on tiny graphs).
        assert row["freehgc_s"] <= row["freehgc_cold_s"] * 1.25
