"""Table VIII — ablation study of FreeHGC's components.

Variants follow the paper:

* Variant #1 — no receptive-field maximisation (similarity term only);
* Variant #2 — no meta-path-similarity minimisation (coverage term only);
* Variant #3 — Herding replaces the unified criterion for the target type;
* Variant #4 — fathers by neighbour-influence maximisation, leaves by Herding;
* Variant #5 — fathers by information-loss synthesis, leaves by Herding;
* Variant #6 — Herding for both father and leaf types.

The paper's shape: the full FreeHGC beats every variant, and dropping either
criterion term costs a few points while replacing the criterion with Herding
(#3) or condensing other types with Herding (#6) costs the most.
"""

from __future__ import annotations

import pytest

from benchmarks.common import EPOCHS, HIDDEN, SCALE, SEEDS, emit
from repro.core import FreeHGC
from repro.datasets import DATASETS as DATASET_REGISTRY
from repro.datasets import load_dataset
from repro.evaluation import evaluate_condenser, make_model_factory

DATASETS = ("acm", "dblp")
RATIO = 0.048


def variant_condensers(max_hops: int) -> dict[str, FreeHGC]:
    return {
        "FreeHGC (full)": FreeHGC(max_hops=max_hops),
        "Variant#1 (no RF max)": FreeHGC(max_hops=max_hops, use_receptive_field=False),
        "Variant#2 (no similarity min)": FreeHGC(max_hops=max_hops, use_similarity=False),
        "Variant#3 (Herding targets)": FreeHGC(max_hops=max_hops, target_strategy="herding"),
        "Variant#4 (NIM fathers, Herding leaves)": FreeHGC(
            max_hops=max_hops, father_strategy="nim", leaf_strategy="herding"
        ),
        "Variant#5 (ILM fathers, Herding leaves)": FreeHGC(
            max_hops=max_hops, father_strategy="ilm", leaf_strategy="herding"
        ),
        "Variant#6 (Herding other types)": FreeHGC(
            max_hops=max_hops, father_strategy="herding", leaf_strategy="herding"
        ),
    }


def run_table8(dataset: str) -> list[dict]:
    graph = load_dataset(dataset, scale=SCALE, seed=0)
    max_hops = min(DATASET_REGISTRY[dataset].max_hops, 3)
    factory = make_model_factory("sehgnn", hidden_dim=HIDDEN, epochs=EPOCHS, max_hops=2)
    rows: list[dict] = []
    baseline_accuracy: float | None = None
    for name, condenser in variant_condensers(max_hops).items():
        condenser_named = condenser
        condenser_named.name = name  # type: ignore[attr-defined]
        evaluation = evaluate_condenser(
            graph, condenser_named, RATIO, factory, seeds=SEEDS, dataset_name=dataset
        )
        row = evaluation.as_row()
        if baseline_accuracy is None:
            baseline_accuracy = row["accuracy_mean"]
        row["delta_vs_full"] = round(row["accuracy_mean"] - baseline_accuracy, 2)
        rows.append(row)
    return rows


@pytest.mark.parametrize("dataset", DATASETS)
def test_table8_ablation(benchmark, dataset):
    rows = benchmark.pedantic(run_table8, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Table VIII — ablation of FreeHGC on {dataset.upper()} (r = 4.8%)",
        rows,
        f"table8_{dataset}.txt",
        paper_note=(
            "Both criterion terms and both other-type strategies contribute; the "
            "full method has the highest accuracy (Table VIII of the paper)."
        ),
    )
    assert len(rows) == 7
