"""Fig. 7 — accuracy vs. condensation ratio (flexible-ratio property).

FreeHGC and HGCond are swept over an increasing ratio grid on ACM and IMDB.
The paper's shape: FreeHGC's accuracy keeps rising towards the whole-graph
("ideal") accuracy, while HGCond flattens out.
"""

from __future__ import annotations

import pytest

from benchmarks.common import EPOCHS, HIDDEN, SCALE, SEEDS, emit
from repro.evaluation import ExperimentConfig, run_ratio_sweep

DATASETS = ("acm", "imdb")
RATIOS = (0.024, 0.048, 0.096, 0.15)


def run_fig7(dataset: str) -> list[dict]:
    config = ExperimentConfig(
        dataset=dataset,
        ratios=RATIOS,
        methods=("hgcond", "freehgc"),
        model="sehgnn",
        scale=SCALE,
        seeds=SEEDS,
        epochs=EPOCHS,
        hidden_dim=HIDDEN,
    )
    return [evaluation.as_row() for evaluation in run_ratio_sweep(config)]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig7_ratio_curve(benchmark, dataset):
    rows = benchmark.pedantic(run_fig7, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Fig. 7 — accuracy vs condensation ratio on {dataset.upper()}",
        rows,
        f"fig7_{dataset}.txt",
        paper_note=(
            "FreeHGC keeps improving as the ratio grows and approaches the whole-"
            "graph accuracy, unlike HGCond (Fig. 7 of the paper)."
        ),
    )
    freehgc = [row for row in rows if row["method"] == "FreeHGC"]
    assert freehgc[-1]["accuracy_mean"] >= freehgc[0]["accuracy_mean"] - 5.0
