"""Hot-path micro-benchmarks with a vectorized-vs-reference correctness gate.

Times the three condensation hot paths — greedy receptive-field coverage,
meta-path Jaccard similarity, and personalised PageRank — on a scaled
synthetic heterogeneous graph (``REPRO_BENCH_SCALE``), comparing the
vectorized kernels against their scalar reference implementations, and
writes the machine-readable trajectory file ``BENCH_perf_hotpaths.json``.

Two gates run on every invocation:

* **correctness** — kernel outputs must match the reference byte-for-byte
  (selection, gains, covered counts; similarity scores to 1e-10; PPR to a
  dense linear solve at small scales).  Any divergence exits non-zero, so
  the CI ``perf-smoke`` job fails.
* **speedup** — at full scale (candidate pools ≥ 2 000 nodes) the default
  coverage kernel must be at least 5× faster than the scalar reference.
  The gate is skipped at smaller scales, where timings are all noise: CI
  runs at ``REPRO_BENCH_SCALE=0.1`` as a correctness smoke only.

Run directly (``PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py``);
it is deliberately not named ``test_*`` so the tier-1 suite stays fast.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

# Allow `python benchmarks/bench_perf_hotpaths.py` without an installed
# package: put the repo root (for `benchmarks.*`) and src/ (for `repro.*`)
# on the path, mirroring the root conftest.
_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

import numpy as np

from benchmarks.common import SCALE, emit, emit_json
from repro import obs
from repro.core import CondensationContext
from repro.core.condenser import FreeHGC
from repro.streaming import assert_graphs_equal
from repro.core.coverage_kernels import (
    PackedAdjacency,
    greedy_max_coverage_packed,
    greedy_max_coverage_reference,
)
from repro.core.neighbor_influence import personalized_pagerank
from repro.core.receptive_field import greedy_max_coverage
from repro.core.similarity import metapath_similarity_scores
from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_hin
from repro.hetero.sparse import symmetric_normalize

import scipy.sparse as sp

#: pool size above which the ≥5× speedup gate applies (ISSUE 3 target)
SPEEDUP_POOL_THRESHOLD = 2000
SPEEDUP_FACTOR = 5.0
#: timing repetitions (best-of)
REPEATS = 3
#: maximum tolerated end-to-end condense slowdown with tracing enabled;
#: gated at full scale only (small scales are all timing noise)
TRACE_OVERHEAD_PCT = 5.0


def hotpath_config() -> SyntheticHINConfig:
    """Skewed bipartite-flavoured HIN sized so the target pool is ≥2k at scale 1."""
    return SyntheticHINConfig(
        name="hotpaths",
        target_type="paper",
        num_classes=3,
        node_types=(
            NodeTypeSpec("paper", count=2500, feature_dim=16),
            NodeTypeSpec("author", count=5000, feature_dim=16),
            NodeTypeSpec("term", count=1500, feature_dim=16),
        ),
        relations=(
            RelationSpec("paper-author", "paper", "author", avg_degree=6.0, affinity=0.8),
            RelationSpec("paper-term", "paper", "term", avg_degree=5.0, affinity=0.75),
            RelationSpec("paper-cite-paper", "paper", "paper", avg_degree=4.0, affinity=0.8),
        ),
        # full-pool selection: every target node is a candidate
        train_fraction=0.999,
        val_fraction=0.0004,
    )


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _same_coverage(a, b) -> bool:
    return (
        np.array_equal(a.selected, b.selected)
        and np.array_equal(a.gains, b.gains)
        and a.covered == b.covered
    )


# --------------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------------- #
def bench_coverage(context: CondensationContext, errors: list[str]) -> list[dict]:
    paths = sorted(
        (p for p in context.metapaths() if p.end != context.target_type),
        key=lambda p: (p.length, str(p)),
    )
    # One sparse 1-hop and one dense 2-hop receptive field.
    paths = [paths[0], paths[-1]] if len(paths) > 1 else paths
    rows: list[dict] = []
    for path in paths:
        adjacency = context.receptive_field(path)
        pool = context.graph.splits.train
        # Paper-scale condensation budget (~2.5% of the pool, Table grids).
        budget = max(1, int(round(0.025 * pool.size)))

        ref_s, reference = _best_of(
            lambda: greedy_max_coverage_reference(adjacency, pool, budget)
        )
        packed = context.packed_receptive_field(path)
        fast_s, fast = _best_of(lambda: greedy_max_coverage(packed, pool, budget))
        celf_s, celf = _best_of(
            lambda: greedy_max_coverage_packed(packed, pool, budget, lazy=True)
        )
        eager_s, eager = _best_of(
            lambda: greedy_max_coverage_packed(packed, pool, budget, lazy=False)
        )
        identical = all(_same_coverage(r, reference) for r in (fast, celf, eager))
        if not identical:
            errors.append(f"greedy_max_coverage diverges from reference on {path}")
        rows.append(
            {
                "kernel": "greedy_max_coverage",
                "case": str(path),
                "pool": int(pool.size),
                "budget": budget,
                "reference_s": round(ref_s, 5),
                "vectorized_s": round(fast_s, 5),
                "celf_s": round(celf_s, 5),
                "eager_s": round(eager_s, 5),
                "speedup": round(ref_s / max(fast_s, 1e-9), 2),
                "identical": identical,
            }
        )
    return rows


def _naive_similarity(adjacencies) -> np.ndarray:
    """Pre-optimisation similarity: re-binarise + both directions per pair."""

    def binarise(matrix):
        out = matrix.copy()
        if out.nnz:
            out.data = np.ones_like(out.data)
        return out

    num_paths = len(adjacencies)
    scores = np.zeros((adjacencies[0].shape[0], num_paths))
    for i in range(num_paths):
        for j in range(num_paths):
            if i == j:
                continue
            a, b = binarise(adjacencies[i]), binarise(adjacencies[j])
            intersection = np.asarray(a.multiply(b).sum(axis=1)).ravel()
            union = (
                np.asarray(a.sum(axis=1)).ravel()
                + np.asarray(b.sum(axis=1)).ravel()
                - intersection
            )
            pair = np.ones(a.shape[0])
            nz = union > 0
            pair[nz] = intersection[nz] / union[nz]
            scores[:, i] += pair
    return scores / (num_paths - 1)


def bench_similarity(context: CondensationContext, errors: list[str]) -> list[dict]:
    groups: dict[str, list] = {}
    for path in context.metapaths():
        groups.setdefault(path.end, []).append(context.receptive_field(path))
    group = max(groups.values(), key=len)
    if len(group) < 2:
        return []
    ref_s, reference = _best_of(lambda: _naive_similarity(group))
    fast_s, fast = _best_of(lambda: metapath_similarity_scores(group))
    identical = bool(np.allclose(fast, reference, atol=1e-10))
    if not identical:
        errors.append("metapath_similarity_scores diverges from reference")
    return [
        {
            "kernel": "metapath_similarity_scores",
            "case": f"{len(group)} paths x {group[0].shape[0]} nodes",
            "pool": int(group[0].shape[0]),
            "budget": "",
            "reference_s": round(ref_s, 5),
            "vectorized_s": round(fast_s, 5),
            "speedup": round(ref_s / max(fast_s, 1e-9), 2),
            "identical": identical,
        }
    ]


def bench_pagerank(context: CondensationContext, errors: list[str]) -> list[dict]:
    graph = context.graph
    path = next(p for p in context.metapaths() if p.end == "author")
    adjacency = context.receptive_field(path)
    n_target, n_other = adjacency.shape
    bipartite = sp.bmat([[None, adjacency], [adjacency.T, None]], format="csr")
    restart = np.zeros(n_target + n_other)
    restart[graph.splits.train] = 1.0

    ppr_s, scores = _best_of(
        lambda: personalized_pagerank(bipartite, restart, alpha=0.15, iterations=30)
    )
    # "" = the dense-solve check did not run (too large); never report a
    # verification that was skipped as passed.
    identical: bool | str = ""
    if bipartite.shape[0] <= 2500:
        # Small graphs: gate power iteration against the closed form of
        # Eq. 11, alpha (I - (1-alpha) A_hat)^{-1} r.
        converged = personalized_pagerank(
            bipartite, restart, alpha=0.15, iterations=400, tolerance=0.0
        )
        normalized = symmetric_normalize(bipartite).toarray()
        system = np.eye(bipartite.shape[0]) - 0.85 * normalized
        direct = 0.15 * np.linalg.solve(system, restart / restart.sum())
        identical = bool(np.allclose(converged, direct, atol=1e-6))
        if not identical:
            errors.append("personalized_pagerank diverges from the direct solve")
    return [
        {
            "kernel": "personalized_pagerank",
            "case": f"bipartite {bipartite.shape[0]} nodes",
            "pool": int(bipartite.shape[0]),
            "budget": "",
            "reference_s": "",
            "vectorized_s": round(ppr_s, 5),
            "speedup": "",
            "identical": identical,
        }
    ]


def bench_tracing_overhead(
    graph, errors: list[str], trace_path: str | None
) -> dict:
    """End-to-end condense, untraced vs traced: byte-identity + overhead.

    Tracing must never change what the pipeline computes — the traced run's
    condensed graph is asserted byte-identical to the untraced one — and
    must stay cheap: at full scale the slowdown is gated at
    ``TRACE_OVERHEAD_PCT``.
    """
    condenser = FreeHGC(max_hops=2, max_paths=8)
    condense = lambda: condenser.condense(graph, ratio=0.05, seed=0)
    plain = condense()  # warm-up: page in the graph, settle the allocator
    # Interleave untraced/traced rounds so cache warmth and CPU frequency
    # drift hit both sides equally — measuring one side first biases the
    # comparison far more than the spans themselves cost.
    untraced_s = traced_s = float("inf")
    spans = 0
    traced = plain
    with obs.tracing("bench-hotpaths", path=trace_path) as tracer:
        obs.uninstall()
        try:
            for _ in range(REPEATS + 2):
                start = time.perf_counter()
                plain = condense()
                untraced_s = min(untraced_s, time.perf_counter() - start)
                obs.install(tracer)
                try:
                    start = time.perf_counter()
                    traced = condense()
                    traced_s = min(traced_s, time.perf_counter() - start)
                finally:
                    obs.uninstall()
        finally:
            obs.install(tracer)  # let obs.tracing() tear down normally
        spans = tracer.collector.stats["added"]  # counts spans even after drains
    try:
        assert_graphs_equal(plain, traced)
        identical = True
    except AssertionError as exc:
        identical = False
        errors.append(f"traced condense diverges from untraced: {exc}")
    overhead_pct = 100.0 * (traced_s - untraced_s) / max(untraced_s, 1e-9)
    if SCALE >= 1.0 and overhead_pct > TRACE_OVERHEAD_PCT:
        errors.append(
            f"tracing overhead gate: condense is {overhead_pct:.1f}% slower "
            f"with tracing enabled (budget {TRACE_OVERHEAD_PCT}%)"
        )
    return {
        "untraced_s": round(untraced_s, 5),
        "traced_s": round(traced_s, 5),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": TRACE_OVERHEAD_PCT,
        "gated": SCALE >= 1.0,
        "spans": int(spans),
        "identical": identical,
    }


# --------------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="hot-path micro-benchmarks")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="also write the traced condense run's span tree to PATH (JSONL)",
    )
    args = parser.parse_args(argv)

    graph = generate_hin(hotpath_config(), scale=SCALE, seed=0)
    context = CondensationContext(graph, max_hops=2, max_paths=8)
    errors: list[str] = []
    rows = (
        bench_coverage(context, errors)
        + bench_similarity(context, errors)
        + bench_pagerank(context, errors)
    )
    overhead = bench_tracing_overhead(graph, errors, args.trace)
    rows.append(
        {
            "kernel": "condense_end_to_end",
            "case": "tracing on vs off",
            "pool": int(graph.splits.train.size),
            "budget": "",
            "reference_s": overhead["untraced_s"],
            "vectorized_s": overhead["traced_s"],
            "speedup": f"+{overhead['overhead_pct']}%",
            "identical": overhead["identical"],
        }
    )
    if args.trace:
        print(f"trace written to {args.trace}")
    emit(
        f"Hot-path kernels vs reference (scale={SCALE})",
        rows,
        "perf_hotpaths.txt",
        paper_note=(
            "Vectorized packed-bitset / decremental kernels must match the "
            "scalar reference exactly; speedups feed the Fig. 8 efficiency "
            "headline."
        ),
    )
    emit_json(
        {
            "benchmark": "perf_hotpaths",
            "scale": SCALE,
            "speedup_gate": {
                "pool_threshold": SPEEDUP_POOL_THRESHOLD,
                "min_speedup": SPEEDUP_FACTOR,
            },
            "tracing_overhead": overhead,
            "rows": rows,
        },
        "BENCH_perf_hotpaths.json",
    )

    for row in rows:
        if (
            row["kernel"] == "greedy_max_coverage"
            and row["pool"] >= SPEEDUP_POOL_THRESHOLD
            and row["speedup"] < SPEEDUP_FACTOR
        ):
            errors.append(
                f"speedup gate: greedy_max_coverage on pool={row['pool']} is "
                f"{row['speedup']}x (need >= {SPEEDUP_FACTOR}x)"
            )
    if errors:
        for error in errors:
            print(f"GATE FAILURE: {error}", file=sys.stderr)
        return 1
    print("all hot-path gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
