"""Fig. 2 — the motivating observation: HGCond's low accuracy and efficiency.

(a) HGCond's accuracy on ACM stays flat (or degrades) as the condensation
    ratio grows and never reaches the whole-graph ("ideal") accuracy.
(b) The optimisation-based condensers (GCond, HGCond) take far longer to
    condense than they would need to simply select data.
"""

from __future__ import annotations

from benchmarks.common import EPOCHS, HIDDEN, SCALE, SEEDS, emit
from repro.datasets import load_dataset
from repro.evaluation import (
    evaluate_condenser,
    make_condenser,
    make_model_factory,
    whole_graph_reference,
)

RATIOS = (0.024, 0.048, 0.096)


def run_fig2a() -> list[dict]:
    graph = load_dataset("acm", scale=SCALE, seed=0)
    factory = make_model_factory("sehgnn", hidden_dim=HIDDEN, epochs=EPOCHS, max_hops=2)
    rows: list[dict] = []
    for ratio in RATIOS:
        evaluation = evaluate_condenser(
            graph, make_condenser("hgcond"), ratio, factory, seeds=SEEDS, dataset_name="acm"
        )
        rows.append(evaluation.as_row())
    ideal = whole_graph_reference(graph, factory, seeds=SEEDS, dataset_name="acm")
    rows.append(ideal.as_row())
    return rows


def run_fig2b() -> list[dict]:
    graph = load_dataset("freebase", scale=SCALE, seed=0)
    factory = make_model_factory("heterosgc", hidden_dim=HIDDEN, epochs=20, max_hops=2)
    rows: list[dict] = []
    for ratio in (0.024, 0.048):
        for method in ("gcond", "hgcond"):
            condenser = make_condenser(method, max_hops=2, fast_optimization=False)
            evaluation = evaluate_condenser(
                graph, condenser, ratio, factory, seeds=1, dataset_name="freebase"
            )
            rows.append(evaluation.as_row())
    return rows


def test_fig2a_low_accuracy(benchmark):
    rows = benchmark.pedantic(run_fig2a, rounds=1, iterations=1)
    emit(
        "Fig. 2(a) — HGCond accuracy vs ratio on ACM (ideal = whole graph)",
        rows,
        "fig2a_acm.txt",
        paper_note="HGCond's accuracy does not keep growing with the ratio and stays "
        "below the ideal whole-graph accuracy (Fig. 2a of the paper).",
    )
    assert rows


def test_fig2b_low_efficiency(benchmark):
    rows = benchmark.pedantic(run_fig2b, rounds=1, iterations=1)
    emit(
        "Fig. 2(b) — condensation time of GCond vs HGCond on Freebase",
        rows,
        "fig2b_freebase.txt",
        paper_note="HGCond takes consistently longer to condense than GCond "
        "(Fig. 2b of the paper).",
    )
    hgcond_time = sum(r["condense_s"] for r in rows if r["method"] == "HGCond")
    gcond_time = sum(r["condense_s"] for r in rows if r["method"] == "GCond")
    assert hgcond_time > 0 and gcond_time > 0
