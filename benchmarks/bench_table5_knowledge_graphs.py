"""Table V — node classification on the RDF knowledge graphs MUTAG and AM.

Compares Herding-HG, GCond, HGCond and FreeHGC at the paper's knowledge-graph
ratios.  The paper's shape: FreeHGC > HGCond > GCond > Herding-HG on both
graphs, with FreeHGC improving as the ratio grows.
"""

from __future__ import annotations

import pytest

from benchmarks.common import EPOCHS, HIDDEN, SCALE, SEEDS, emit
from repro.evaluation import ExperimentConfig, run_ratio_sweep

GRIDS = {
    "mutag": (0.02, 0.04, 0.08),
    "am": (0.02, 0.04, 0.08),
}
METHODS = ("herding-hg", "gcond", "hgcond", "freehgc")


def run_table5(dataset: str) -> list[dict]:
    config = ExperimentConfig(
        dataset=dataset,
        ratios=GRIDS[dataset],
        methods=METHODS,
        model="sehgnn",
        scale=SCALE,
        seeds=SEEDS,
        epochs=EPOCHS,
        hidden_dim=HIDDEN,
        max_hops=2,
    )
    return [evaluation.as_row() for evaluation in run_ratio_sweep(config)]


@pytest.mark.parametrize("dataset", sorted(GRIDS))
def test_table5_knowledge_graphs(benchmark, dataset):
    rows = benchmark.pedantic(run_table5, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Table V — knowledge graph {dataset.upper()}",
        rows,
        f"table5_{dataset}.txt",
        paper_note=(
            "FreeHGC outperforms Herding-HG, GCond and HGCond on MUTAG and AM at "
            "every ratio (Table V of the paper).  Ratios are scaled to keep "
            "per-class budgets meaningful on the scaled-down synthetic graphs."
        ),
    )
    assert rows


if __name__ == "__main__":  # pragma: no cover - manual run helper
    for name in GRIDS:
        emit(f"Table V — {name}", run_table5(name), f"table5_{name}.txt")
