"""Table IV — generalisation of condensed graphs across HGNN architectures.

Each method condenses the graph once per seed at r = 2.4%; the condensed data
is then used to train HGB, HGT, HAN and SeHGNN, all evaluated on the full
graph.  The paper's claim: FreeHGC's condensed graphs have the highest
average accuracy across architectures because the selection is model-agnostic.
"""

from __future__ import annotations

import pytest

from benchmarks.common import EPOCHS, HIDDEN, SCALE, SEEDS, WORKERS, emit
from repro.evaluation import run_generalization_study

DATASETS = ("acm",)
METHODS = ("herding-hg", "hgcond", "freehgc")
MODELS = ("hgb", "hgt", "han", "sehgnn")


def run_table4(dataset: str) -> list[dict]:
    return run_generalization_study(
        dataset,
        0.024,
        methods=METHODS,
        models=MODELS,
        scale=SCALE,
        seeds=SEEDS,
        epochs=EPOCHS,
        hidden_dim=HIDDEN,
        workers=WORKERS,
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_table4_generalization(benchmark, dataset):
    rows = benchmark.pedantic(run_table4, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Table IV — generalisation across HGNNs on {dataset.upper()} (r = 2.4%)",
        rows,
        f"table4_{dataset}.txt",
        paper_note=(
            "FreeHGC achieves the best condensed average across HGB/HGT/HAN/SeHGNN "
            "(Table IV of the paper)."
        ),
    )
    assert len(rows) == len(METHODS)
