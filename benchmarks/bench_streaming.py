"""Streaming condensation benchmark: byte-identical + ≥5× gates.

Replays a deterministic evolving-graph delta schedule through
:class:`repro.streaming.IncrementalCondenser` and, at **every** checkpoint,
re-condenses the identically mutated replica graph from scratch.  Two gates
run on every invocation:

* **correctness** — the incremental condensed graph must be byte-identical
  to the full re-condensation at every step (node counts, features, labels,
  splits, every relation's sparsity pattern).  Always enforced, including
  in the CI ``streaming-smoke`` job at ``REPRO_BENCH_SCALE=0.1``.
* **speedup** — at full scale (target pools ≥ ``SPEEDUP_POOL_THRESHOLD``)
  the *median* incremental step (delta application + re-condensation) must
  be at least ``SPEEDUP_FACTOR``× faster than the median full recondense,
  over a schedule whose deltas each touch well under 5% of the edges.  The
  gate is skipped at smaller scales, where timings are all noise.

Environment knobs: ``REPRO_BENCH_SCALE`` (graph size multiplier),
``REPRO_BENCH_STREAM_STEPS`` (schedule length, default 12),
``REPRO_BENCH_STREAM_CHURN`` (per-step churned edge fraction of the churned
relation, default 0.00025 — a handful of edges per tick, the granularity a
production stream condenses at) — the committed ``BENCH_streaming.json``
baseline was produced with these defaults at scale 1.0.

Run directly (``PYTHONPATH=src python benchmarks/bench_streaming.py``); it
is deliberately not named ``test_*`` so the tier-1 suite stays fast.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

import numpy as np

from benchmarks.common import SCALE, emit, emit_json
from repro.core import FreeHGC
from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_delta_schedule, generate_hin
from repro.streaming import DeltaApplier, IncrementalCondenser, assert_graphs_equal

#: target-pool size above which the ≥5× speedup gate applies (ISSUE 4 target)
SPEEDUP_POOL_THRESHOLD = 1500
SPEEDUP_FACTOR = 5.0
#: per-step churned fraction of the churned relation's edges (well under the
#: 5% delta bound of the gate)
CHURN = float(os.environ.get("REPRO_BENCH_STREAM_CHURN", "0.00025"))
STEPS = int(os.environ.get("REPRO_BENCH_STREAM_STEPS", "12"))
RATIO = 0.05
MAX_HOPS = 3
MAX_PATHS = 16
#: relation carrying the churn — the realistic streaming pattern: tag/term
#: links attach and detach continuously while the co-author structure of the
#: graph stays comparatively stable
CHURN_RELATIONS = ("paper-term",)


def streaming_config() -> SyntheticHINConfig:
    """ACM-shaped HIN sized so the target pool is ≥2k at scale 1."""
    return SyntheticHINConfig(
        name="acm-stream",
        target_type="paper",
        num_classes=3,
        node_types=(
            NodeTypeSpec("paper", count=2000, feature_dim=16),
            NodeTypeSpec("author", count=2600, feature_dim=16),
            NodeTypeSpec("subject", count=40, feature_dim=8),
            NodeTypeSpec("term", count=1100, feature_dim=8),
        ),
        relations=(
            RelationSpec("paper-cite-paper", "paper", "paper", avg_degree=4.0, affinity=0.8),
            RelationSpec("paper-author", "paper", "author", avg_degree=4.0, affinity=0.8),
            RelationSpec("paper-subject", "paper", "subject", avg_degree=1.5, affinity=0.9),
            RelationSpec("paper-term", "paper", "term", avg_degree=4.0, affinity=0.7),
        ),
        train_fraction=0.9,
        val_fraction=0.05,
    )


def main() -> int:
    graph = generate_hin(streaming_config(), scale=SCALE, seed=7)
    replica = graph.copy()
    n_target = graph.num_nodes[graph.schema.target_type]
    schedule = generate_delta_schedule(
        graph,
        steps=STEPS,
        seed=11,
        edge_churn=CHURN,
        relations=CHURN_RELATIONS,
    )
    condenser = FreeHGC(max_hops=MAX_HOPS, max_paths=MAX_PATHS)
    incremental = IncrementalCondenser(
        graph, condenser=condenser, ratio=RATIO, recondense_threshold=0.05, seed=0
    )

    start = time.perf_counter()
    incremental.condense()
    cold_seconds = time.perf_counter() - start

    # Pass 1 — the streaming run itself: apply + incremental re-condense per
    # tick, exactly as a production deployment would, with no full
    # recondensation interleaved (it would pollute the timings through cache
    # and allocator pressure).
    reports = []
    step_seconds: list[float] = []
    fractions: list[float] = []
    for delta in schedule:
        start = time.perf_counter()
        report = incremental.step(delta)
        step_seconds.append(time.perf_counter() - start)
        fractions.append(report.edge_fraction)
        reports.append(report)
        print(
            f"step {delta.step}: {report.mode} {step_seconds[-1]:.3f}s "
            f"drift={report.selection_drift}",
            flush=True,
        )

    # Pass 2 — verification: replay the same deltas on the replica and fully
    # re-condense at every checkpoint; byte-identical is a hard gate.
    applier = DeltaApplier()
    rows: list[dict] = []
    full_seconds: list[float] = []
    for delta, report, step_elapsed in zip(schedule, reports, step_seconds):
        applier.apply(replica, delta)
        start = time.perf_counter()
        full = FreeHGC(max_hops=MAX_HOPS, max_paths=MAX_PATHS).condense(
            replica, RATIO, seed=0
        )
        full_elapsed = time.perf_counter() - start
        assert_graphs_equal(report.condensed, full)
        full_seconds.append(full_elapsed)
        rows.append(
            {
                "step": delta.step,
                "mode": report.mode,
                "delta_pct": f"{100.0 * report.edge_fraction:.3f}",
                "incremental_s": f"{step_elapsed:.3f}",
                "full_s": f"{full_elapsed:.3f}",
                "speedup": f"{full_elapsed / step_elapsed:.1f}x",
                "drift": report.selection_drift,
                "identical": "yes",
            }
        )
        print(
            f"verify {delta.step}: full {full_elapsed:.3f}s vs incremental "
            f"{step_elapsed:.3f}s ({full_elapsed / step_elapsed:.1f}x) — identical",
            flush=True,
        )

    median_step = float(np.median(step_seconds))
    median_full = float(np.median(full_seconds))
    speedup = median_full / median_step if median_step else float("inf")
    max_fraction = max(fractions)

    emit(
        f"Streaming condensation — acm-stream scale {SCALE:g} "
        f"({n_target} target nodes, K={MAX_HOPS})",
        rows,
        "streaming.txt",
        paper_note=(
            "Production-motivated extension (ROADMAP): the paper condenses a "
            "static graph once; this harness replays graph deltas and gates "
            "that incremental condensation stays byte-identical to a full "
            "recondensation while being >=5x faster for small deltas."
        ),
    )
    emit_json(
        {
            "scale": SCALE,
            "steps": STEPS,
            "churn": CHURN,
            "target_nodes": n_target,
            "max_delta_edge_fraction": max_fraction,
            "cold_condense_seconds": cold_seconds,
            "median_incremental_step_seconds": median_step,
            "median_full_recondense_seconds": median_full,
            "speedup": speedup,
            "byte_identical_checkpoints": len(rows),
            "selection_memo": dict(incremental.selection_memo.stats),
            "stage_memo": dict(incremental.stage_memo.stats),
        },
        "BENCH_streaming.json",
    )

    print(
        f"\n{len(rows)} checkpoints byte-identical; median incremental "
        f"{median_step:.3f}s vs full {median_full:.3f}s ({speedup:.1f}x), "
        f"largest delta {100.0 * max_fraction:.3f}% of edges"
    )
    if max_fraction > 0.05:
        print("error: schedule deltas exceed the 5% bound the gate assumes")
        return 1
    if n_target >= SPEEDUP_POOL_THRESHOLD:
        if speedup < SPEEDUP_FACTOR:
            print(
                f"error: speedup gate failed — {speedup:.2f}x < "
                f"{SPEEDUP_FACTOR:.1f}x at {n_target} target nodes"
            )
            return 1
        print(f"speedup gate passed (>= {SPEEDUP_FACTOR:.1f}x)")
    else:
        print(
            f"speedup gate skipped ({n_target} target nodes < "
            f"{SPEEDUP_POOL_THRESHOLD}); correctness gate enforced"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
