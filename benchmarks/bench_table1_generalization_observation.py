"""Table I — the motivating observation: HGCond generalises poorly.

A graph condensed by HGCond (HeteroSGC relay) is used to train four different
HGNNs; the gap to each model's whole-graph accuracy widens as the evaluation
architecture departs from the relay.  FreeHGC (model-agnostic selection) is
included for contrast even though the paper's Table I only shows HGCond.
"""

from __future__ import annotations

import pytest

from benchmarks.common import EPOCHS, HIDDEN, SCALE, SEEDS, emit
from repro.evaluation import run_generalization_study

DATASETS = ("acm",)


def run_table1(dataset: str) -> list[dict]:
    return run_generalization_study(
        dataset,
        0.024,
        methods=("hgcond", "freehgc"),
        models=("heterosgc", "hgt", "hgb", "sehgnn"),
        scale=SCALE,
        seeds=SEEDS,
        epochs=EPOCHS,
        hidden_dim=HIDDEN,
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_table1_generalization_observation(benchmark, dataset):
    rows = benchmark.pedantic(run_table1, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Table I — HGCond generalisation gap on {dataset.upper()} (r = 2.4%)",
        rows,
        f"table1_{dataset}.txt",
        paper_note=(
            "The gap between the condensed-graph accuracy and each model's "
            "whole-graph accuracy grows when the evaluation HGNN differs from the "
            "HeteroSGC relay (Table I of the paper)."
        ),
    )
    assert rows
