"""Fig. 9 — interpretability of the data-selection criterion.

The paper visualises (t-SNE) the target nodes selected by FreeHGC vs Herding
together with every node captured within 3 hops.  This harness regenerates
the underlying quantities: how many nodes each selection activates (the R(S)
term) and how dispersed the captured nodes are in feature space (the
1 − J(S) term), plus the 2-D t-SNE coordinates written to the report file.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import SCALE, emit
from repro.analysis import coverage_report, tsne
from repro.baselines.embeddings import target_embeddings
from repro.baselines.herding import herding_select
from repro.core import FreeHGC
from repro.datasets import load_dataset

BUDGET = 10
SAMPLE = 80


def run_fig9() -> list[dict]:
    graph = load_dataset("acm", scale=SCALE, seed=0)
    ratio = BUDGET / graph.num_nodes[graph.schema.target_type]

    condenser = FreeHGC(max_hops=3, max_paths=12)
    condenser.condense(graph, ratio, seed=0)
    freehgc_selected = condenser.last_target_selection.selected[:BUDGET]

    embeddings = target_embeddings(graph, max_hops=2)
    pool = graph.splits.train
    herding_selected = pool[herding_select(embeddings[pool], BUDGET)]

    rows = []
    for name, selected in (("FreeHGC", freehgc_selected), ("Herding", herding_selected)):
        # 2-hop coverage: with 3 hops every selection saturates the whole
        # (small) graph and the comparison becomes meaningless.
        report = coverage_report(graph, selected, method=name, max_hops=2)
        rows.append(report.as_row())

    # t-SNE coordinates of a node sample for the scatter plot.
    rng = np.random.default_rng(0)
    sample = rng.choice(graph.num_nodes["paper"], size=min(SAMPLE, graph.num_nodes["paper"]),
                        replace=False)
    coordinates = tsne(graph.features["paper"][sample], 2, iterations=150, seed=0)
    rows.append(
        {
            "method": "t-SNE sample",
            "selected": len(sample),
            "captured": "-",
            "coverage_%": "-",
            "dispersion": round(float(np.abs(coordinates).mean()), 3),
        }
    )
    return rows


def test_fig9_interpretability(benchmark):
    rows = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    emit(
        "Fig. 9 — selection interpretability on ACM (coverage and dispersion)",
        rows,
        "fig9_acm.txt",
        paper_note=(
            "FreeHGC activates more nodes (larger receptive field) and spreads "
            "them across the dataset (higher dispersion) compared to Herding "
            "(Fig. 9 of the paper)."
        ),
    )
    by_method = {row["method"]: row for row in rows}
    assert by_method["FreeHGC"]["captured"] >= 0.9 * by_method["Herding"]["captured"]
