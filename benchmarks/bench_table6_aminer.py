"""Table VI — scalability on the large-scale AMiner collaboration network.

The paper condenses AMiner (4.9M nodes) to 0.05–0.8% and shows FreeHGC is the
only method that keeps improving with the ratio while GCond runs out of
memory.  The synthetic AMiner keeps the same 3-type schema at a CPU-friendly
size; the ratios are scaled so the per-class budgets match the paper's regime.
"""

from __future__ import annotations

import pytest

from benchmarks.common import EPOCHS, HIDDEN, SEEDS, emit
from repro.evaluation import ExperimentConfig, run_ratio_sweep

RATIOS = (0.01, 0.02, 0.05)
METHODS = ("herding-hg", "gcond", "hgcond", "freehgc")


def run_table6() -> list[dict]:
    config = ExperimentConfig(
        dataset="aminer",
        ratios=RATIOS,
        methods=METHODS,
        model="sehgnn",
        scale=1.0,
        seeds=SEEDS,
        epochs=EPOCHS,
        hidden_dim=HIDDEN,
        max_hops=2,
    )
    return [evaluation.as_row() for evaluation in run_ratio_sweep(config)]


def test_table6_aminer(benchmark):
    rows = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    emit(
        "Table VI — large-scale AMiner",
        rows,
        "table6_aminer.txt",
        paper_note=(
            "FreeHGC performs best at every ratio and its accuracy grows with the "
            "ratio, while HGCond stays flat (Table VI of the paper)."
        ),
    )
    freehgc_rows = [row for row in rows if row["method"] == "FreeHGC"]
    assert len(freehgc_rows) == len(RATIOS)
