"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
graphs are synthetic stand-ins for the public benchmarks (see DESIGN.md), so
the absolute numbers differ from the paper; the harness therefore prints the
regenerated rows/series next to the paper's values so the *shape* (method
ordering, trends across ratios, speed-ups) can be compared directly.

The knobs below keep a full ``pytest benchmarks/ --benchmark-only`` run in
the minutes range on a laptop CPU.  Increase ``SCALE``, ``SEEDS`` and
``EPOCHS`` for a higher-fidelity run.
"""

from __future__ import annotations

import datetime
import json
import os
from pathlib import Path

from repro.evaluation import format_table, write_report
from repro.utils.provenance import git_revision

#: node-count multiplier applied to every synthetic dataset
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
#: repeated condensation/training seeds per cell
SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "1"))
#: training epochs of the evaluation HGNNs
EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "60"))
#: hidden dimension of the evaluation HGNNs
HIDDEN = int(os.environ.get("REPRO_BENCH_HIDDEN", "32"))
#: worker processes for the runner-backed table benchmarks (1 = serial;
#: results are identical either way, see repro.runner.executor)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
#: where rendered reports are written
REPORT_DIR = Path(os.environ.get("REPRO_BENCH_REPORTS", "benchmarks/reports"))
#: where machine-readable BENCH_*.json trajectory files are written
#: (the repo root by default, so baselines can be committed and diffed)
JSON_DIR = Path(
    os.environ.get("REPRO_BENCH_JSON_DIR", Path(__file__).resolve().parent.parent)
)


def _git_revision() -> str:
    """Current commit hash, or ``"unknown"`` outside a git checkout."""
    return git_revision(str(Path(__file__).resolve().parent))


def emit_json(payload: dict, filename: str) -> Path:
    """Persist ``payload`` as a machine-readable ``BENCH_*.json`` file.

    These files are the perf-trajectory record: each benchmark writes one,
    the committed copy is the baseline, and CI uploads the regenerated file
    as an artifact so runs can be compared over time.  Every file is stamped
    with a ``provenance`` block (git revision + ISO-8601 UTC timestamp) so an
    artifact downloaded months later still says which commit produced it;
    provenance is the *only* run-dependent key, keeping baseline diffs
    readable.
    """
    path = JSON_DIR / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    stamped = dict(payload)
    stamped["provenance"] = {
        "git_revision": _git_revision(),
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    path.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path


def load_baseline(filename: str) -> dict:
    """Read a committed ``BENCH_*.json`` baseline from :data:`JSON_DIR`.

    Delegates to :func:`repro.runner.gates.read_baseline`, which returns
    ``{}`` for a missing/unreadable file and back-fills the ``provenance``
    block for baselines written before :func:`emit_json` stamped one
    (pre-provenance files would otherwise ``KeyError`` at comparison time).
    """
    from repro.runner.gates import read_baseline

    return read_baseline(JSON_DIR / filename)


def emit(title: str, rows: list[dict], filename: str, paper_note: str = "") -> str:
    """Render ``rows`` as a table, print it and persist it under REPORT_DIR."""
    text = format_table(rows, title=title)
    if paper_note:
        text = f"{text}\n\nPaper reference: {paper_note}"
    print("\n" + text)
    write_report(text, REPORT_DIR / filename)
    return text
