"""Table III — main node-classification results on the HGB datasets.

For each dataset and condensation ratio, every method condenses the graph,
SeHGNN is trained on the condensed data and evaluated on the full graph's
test split.  The paper reports ACM/DBLP/IMDB/Freebase at r ∈ {1.2, 2.4, 4.8,
9.6}% with FreeHGC winning at most ratios; this harness reproduces the same
grid (ratios kept, graph sizes scaled down — see DESIGN.md).
"""

from __future__ import annotations

import pytest

from benchmarks.common import EPOCHS, HIDDEN, SCALE, SEEDS, WORKERS, emit
from repro.evaluation import ExperimentConfig, run_ratio_sweep

DATASETS = ("acm", "dblp", "imdb", "freebase")
RATIOS = (0.024, 0.048, 0.096)
METHODS = ("random-hg", "herding-hg", "k-center-hg", "coarsening-hg", "hgcond", "freehgc")


def run_table3(dataset: str) -> list[dict]:
    config = ExperimentConfig(
        dataset=dataset,
        ratios=RATIOS,
        methods=METHODS,
        model="sehgnn",
        scale=SCALE,
        seeds=SEEDS,
        epochs=EPOCHS,
        hidden_dim=HIDDEN,
    )
    return [evaluation.as_row() for evaluation in run_ratio_sweep(config, workers=WORKERS)]


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_main_results(benchmark, dataset):
    rows = benchmark.pedantic(run_table3, args=(dataset,), rounds=1, iterations=1)
    emit(
        f"Table III — node classification on {dataset.upper()} (SeHGNN test model)",
        rows,
        f"table3_{dataset}.txt",
        paper_note=(
            "FreeHGC outperforms all baselines at most ratios and approaches the "
            "whole-graph accuracy as the ratio grows (Table III of the paper)."
        ),
    )
    assert any(row["method"] == "FreeHGC" for row in rows)
