"""Serving benchmark: byte-identity, ≥5× micro-batching and zero-drop hot-swap.

A load generator drives the full serving stack
(:mod:`repro.serving`) on a synthetic ACM-shaped HIN and enforces three
gates on every invocation:

* **byte-identity** — batched prediction through the engine must be
  byte-identical to one-at-a-time prediction *and* to the model's offline
  ``predict`` on the live graph.  Always enforced.
* **throughput** — with ≥ ``QUEUE_DEPTH`` (default 2048) queued requests,
  the micro-batched path must answer at least ``SPEEDUP_FACTOR``× (5×) the
  unbatched one-request-per-call throughput, both measured on cache-less
  sessions so the LRU cannot flatter either side.  Always enforced (the
  ratio is Python-dispatch overhead, not graph-size dependent).
* **hot-swap correctness** — the real asyncio HTTP server answers a
  sustained stream of concurrent predictions while a delta schedule is
  replayed through ``POST /delta`` (incremental condensation → optional
  retrain → atomic session swap).  Every response must carry a known
  session version and labels byte-equal to that version's offline forward;
  zero dropped or incorrect responses is a hard gate.

Latency of the served requests is reported as p50/p95/p99 through
:func:`repro.evaluation.timing.summarize_latencies` and persisted with the
throughput numbers to ``BENCH_serving.json`` (committed baseline; the CI
``serving-smoke`` job regenerates it at ``REPRO_BENCH_SCALE=0.1`` and
uploads it as an artifact).

Environment knobs: ``REPRO_BENCH_SCALE``, ``REPRO_BENCH_EPOCHS``,
``REPRO_BENCH_SERVE_STEPS`` (delta steps, default 5),
``REPRO_BENCH_SERVE_QUEUE`` (queued requests for the throughput gate,
default 2048).

Run directly (``PYTHONPATH=src python benchmarks/bench_serving.py``); it is
deliberately not named ``test_*`` so the tier-1 suite stays fast.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

import numpy as np

from benchmarks.common import EPOCHS, SCALE, emit, emit_json
from repro.core import FreeHGC
from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_delta_schedule, generate_hin
from repro.evaluation.pipeline import make_model_factory
from repro.evaluation.timing import summarize_latencies
from repro.serving import InferenceSession, ServingController, ServingServer

SPEEDUP_FACTOR = 5.0
QUEUE_DEPTH = int(os.environ.get("REPRO_BENCH_SERVE_QUEUE", "2048"))
STEPS = int(os.environ.get("REPRO_BENCH_SERVE_STEPS", "5"))
RATIO = 0.05
MAX_HOPS = 2
MICRO_BATCH = 256
#: concurrent client tasks hammering /predict during the hot-swap replay
CLIENTS = 8
#: node ids per /predict request in the hot-swap phase
IDS_PER_REQUEST = 16


def serving_config() -> SyntheticHINConfig:
    """ACM-shaped HIN sized so the target pool is ≥2k at scale 1."""
    return SyntheticHINConfig(
        name="acm-serve",
        target_type="paper",
        num_classes=3,
        node_types=(
            NodeTypeSpec("paper", count=2000, feature_dim=16),
            NodeTypeSpec("author", count=2600, feature_dim=16),
            NodeTypeSpec("subject", count=40, feature_dim=8),
            NodeTypeSpec("term", count=1100, feature_dim=8),
        ),
        relations=(
            RelationSpec("paper-cite-paper", "paper", "paper", avg_degree=4.0, affinity=0.8),
            RelationSpec("paper-author", "paper", "author", avg_degree=4.0, affinity=0.8),
            RelationSpec("paper-subject", "paper", "subject", avg_degree=1.5, affinity=0.9),
            RelationSpec("paper-term", "paper", "term", avg_degree=4.0, affinity=0.7),
        ),
        train_fraction=0.9,
        val_fraction=0.05,
    )


def identity_gate(controller: ServingController, ids: np.ndarray) -> None:
    """Batched == serial == offline forward, byte for byte (raises on fail)."""
    batched_session = InferenceSession(
        controller._model, controller.graph, version=100, cache_size=0
    )
    serial_session = InferenceSession(
        controller._model, controller.graph, version=101, cache_size=0
    )
    batched = batched_session.predict(ids)
    serial = np.array([serial_session.predict_one(int(i)) for i in ids], dtype=np.int64)
    if not np.array_equal(batched, serial):
        raise AssertionError("batched prediction differs from one-at-a-time")
    offline = controller._model.predict(controller.graph)
    if not np.array_equal(batched, offline[ids]):
        raise AssertionError("engine prediction differs from offline forward")
    cached = controller.session.predict(ids)
    if not np.array_equal(cached, batched):
        raise AssertionError("LRU-cached prediction differs from uncached")


def throughput_gate(controller: ServingController, num_targets: int, rng) -> dict:
    """Measure unbatched vs micro-batched throughput on cache-less sessions."""
    queue = rng.integers(0, num_targets, size=QUEUE_DEPTH).astype(np.int64)
    unbatched_session = InferenceSession(
        controller._model, controller.graph, version=102, cache_size=0
    )
    batched_session = InferenceSession(
        controller._model, controller.graph, version=103, cache_size=0
    )
    singles = [np.asarray([i]) for i in queue.tolist()]

    start = time.perf_counter()
    unbatched_out = [unbatched_session.predict(one) for one in singles]
    unbatched_seconds = time.perf_counter() - start

    chunks = [queue[i : i + MICRO_BATCH] for i in range(0, queue.size, MICRO_BATCH)]
    start = time.perf_counter()
    batched_out = [batched_session.predict(chunk) for chunk in chunks]
    batched_seconds = time.perf_counter() - start

    if not np.array_equal(np.concatenate(unbatched_out), np.concatenate(batched_out)):
        raise AssertionError("throughput phases disagree on labels")
    return {
        "queued_requests": int(queue.size),
        "unbatched_seconds": unbatched_seconds,
        "batched_seconds": batched_seconds,
        "unbatched_rps": queue.size / unbatched_seconds,
        "batched_rps": queue.size / batched_seconds,
        "speedup": unbatched_seconds / batched_seconds,
    }


async def hotswap_gate(controller: ServingController, seed: int) -> dict:
    """Concurrent load through the real server during a delta replay."""
    server = ServingServer(
        controller, port=0, max_batch=MICRO_BATCH, batch_window_seconds=0.002
    )
    host, port = await server.start()
    num_targets = controller.session.num_targets
    all_ids = np.arange(num_targets, dtype=np.int64)

    def snapshot() -> np.ndarray:
        # straight from the logits: also catches bad LRU carry-over
        return np.argmax(controller.session.logits(all_ids), axis=-1)

    expected: dict[int, np.ndarray] = {controller.version: snapshot()}
    schedule = generate_delta_schedule(
        controller.graph,
        steps=STEPS,
        seed=seed,
        edge_churn=0.0005,
        relations=("paper-term",),
    )
    failures = 0
    answered = 0
    latencies: list[float] = []
    stop = asyncio.Event()
    rng = np.random.default_rng(seed + 1)
    # pre-draw ids so client tasks do no RNG work in the hot loop
    id_pool = rng.integers(0, num_targets, size=(4096, IDS_PER_REQUEST)).astype(np.int64)

    async def request(method: str, path: str, payload: dict) -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        body = json.dumps(payload).encode()
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode() + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, response_body = raw.partition(b"\r\n\r\n")
        return int(head.split(b" ", 2)[1]), json.loads(response_body or b"{}")

    async def client(worker: int) -> None:
        nonlocal failures, answered
        cursor = worker
        while not stop.is_set():
            ids = id_pool[cursor % id_pool.shape[0]]
            cursor += CLIENTS
            start = time.perf_counter()
            try:
                status, payload = await request(
                    "POST", "/predict", {"nodes": ids.tolist()}
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                failures += 1
                continue
            latencies.append(time.perf_counter() - start)
            answered += 1
            if status != 200:
                failures += 1
                continue
            version = payload["version"]
            reference = expected.get(version)
            if reference is None and version == controller.version:
                reference = snapshot()
                expected[version] = reference
            if reference is None or not np.array_equal(
                np.asarray(payload["labels"]), reference[ids]
            ):
                failures += 1

    clients = [asyncio.create_task(client(i)) for i in range(CLIENTS)]
    swaps = []
    load_start = time.perf_counter()
    for delta in schedule:
        status, payload = await request("POST", "/delta", delta.to_payload())
        if status != 200:
            failures += 1
            continue
        expected.setdefault(payload["version"], snapshot())
        swaps.append(payload)
        print(
            f"swap {payload['step']}: version {payload['version']} "
            f"mode={payload['mode']} retrained={payload['retrained']} "
            f"dirty={payload['dirty_count']} carried={payload['cache_carried']} "
            f"swap {payload['swap_seconds']:.3f}s "
            f"({answered} requests answered so far)",
            flush=True,
        )
        # keep the load going a moment on the fresh session
        await asyncio.sleep(0.05)
    load_seconds = time.perf_counter() - load_start
    stop.set()
    await asyncio.gather(*clients, return_exceptions=True)
    _, stats = await request("GET", "/stats", {})
    await server.close()
    return {
        "requests": answered,
        "failures": failures,
        "swaps": swaps,
        "load_seconds": load_seconds,
        "served_rps": answered / load_seconds if load_seconds else 0.0,
        "latency": summarize_latencies(latencies),
        "batcher": stats.get("batcher", {}),
        "server_errors": stats.get("errors", 0),
    }


def main() -> int:
    graph = generate_hin(serving_config(), scale=SCALE, seed=7)
    num_targets = graph.num_nodes[graph.schema.target_type]
    factory = make_model_factory(
        "heterosgc", hidden_dim=32, epochs=EPOCHS, max_hops=MAX_HOPS, seed=0
    )
    controller = ServingController(
        graph,
        factory,
        model_name="heterosgc",
        ratio=RATIO,
        condenser=FreeHGC(max_hops=MAX_HOPS),
        recondense_threshold=0.05,
        seed=0,
        cache_size=4096,
    )
    start = time.perf_counter()
    controller.start()
    cold_seconds = time.perf_counter() - start
    print(
        f"cold start (condense + train) {cold_seconds:.2f}s, "
        f"{num_targets} target nodes",
        flush=True,
    )

    rng = np.random.default_rng(3)
    ids = rng.permutation(num_targets).astype(np.int64)
    identity_gate(controller, ids)
    print("byte-identity gate passed (batched == serial == offline forward)")

    throughput = throughput_gate(controller, num_targets, rng)
    print(
        f"throughput: unbatched {throughput['unbatched_rps']:.0f} rps, "
        f"micro-batched {throughput['batched_rps']:.0f} rps "
        f"({throughput['speedup']:.1f}x) over {throughput['queued_requests']} requests"
    )

    swap_outcome = asyncio.run(hotswap_gate(controller, seed=23))
    latency = swap_outcome["latency"]
    print(
        f"hot-swap: {swap_outcome['requests']} concurrent requests, "
        f"{swap_outcome['failures']} failures, "
        f"p50={latency['p50'] * 1e3:.2f}ms p95={latency['p95'] * 1e3:.2f}ms "
        f"p99={latency['p99'] * 1e3:.2f}ms"
    )

    rows = [
        {
            "phase": "unbatched",
            "requests": throughput["queued_requests"],
            "rps": f"{throughput['unbatched_rps']:.0f}",
            "note": "one engine call per request (cache off)",
        },
        {
            "phase": "micro-batched",
            "requests": throughput["queued_requests"],
            "rps": f"{throughput['batched_rps']:.0f}",
            "note": f"batches of {MICRO_BATCH} (cache off), {throughput['speedup']:.1f}x",
        },
        {
            "phase": "served (hot-swap)",
            "requests": swap_outcome["requests"],
            "rps": f"{swap_outcome['served_rps']:.0f}",
            "note": (
                f"p50 {latency['p50'] * 1e3:.2f}ms / p95 {latency['p95'] * 1e3:.2f}ms "
                f"/ p99 {latency['p99'] * 1e3:.2f}ms, {swap_outcome['failures']} failures"
            ),
        },
    ]
    emit(
        f"Online serving — acm-serve scale {SCALE:g} ({num_targets} target nodes)",
        rows,
        "serving.txt",
        paper_note=(
            "Production-motivated extension (ROADMAP): the paper trains on the "
            "condensed graph; this harness persists that model, serves it over "
            "HTTP with micro-batching, and hot-swaps it as streaming deltas "
            "re-condense the graph — with zero dropped or incorrect responses."
        ),
    )
    emit_json(
        {
            "scale": SCALE,
            "target_nodes": num_targets,
            "cold_start_seconds": cold_seconds,
            "byte_identical": True,
            "throughput": {
                key: value for key, value in throughput.items()
            },
            "hotswap": {
                "steps": STEPS,
                "requests": swap_outcome["requests"],
                "failures": swap_outcome["failures"],
                "served_rps": swap_outcome["served_rps"],
                "retrains": sum(1 for s in swap_outcome["swaps"] if s["retrained"]),
                "latency_ms": {
                    key: value * 1e3 if key != "count" else value
                    for key, value in latency.items()
                },
                "batcher": swap_outcome["batcher"],
            },
        },
        "BENCH_serving.json",
    )

    if throughput["speedup"] < SPEEDUP_FACTOR:
        print(
            f"error: throughput gate failed — {throughput['speedup']:.2f}x < "
            f"{SPEEDUP_FACTOR:.1f}x at {throughput['queued_requests']} queued requests"
        )
        return 1
    print(f"throughput gate passed (>= {SPEEDUP_FACTOR:.1f}x)")
    if swap_outcome["failures"] or swap_outcome["requests"] == 0:
        print(
            f"error: hot-swap gate failed — {swap_outcome['failures']} "
            f"failed/incorrect responses over {swap_outcome['requests']} requests"
        )
        return 1
    print("hot-swap gate passed (zero dropped/incorrect responses)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
