"""Serving benchmark: byte-identity, ≥5× micro-batching and zero-drop hot-swap.

Run with ``--replicated`` to benchmark the multi-process tier instead
(:mod:`repro.serving.replicated`): aggregate throughput of an
``SO_REUSEPORT`` worker pool vs a single process, zero dropped / zero
stale-versioned responses across a worker ``SIGKILL`` mid delta-replay,
and byte-identical WAL recovery after ``kill -9`` of the coordinator.

A load generator drives the full serving stack
(:mod:`repro.serving`) on a synthetic ACM-shaped HIN and enforces three
gates on every invocation:

* **byte-identity** — batched prediction through the engine must be
  byte-identical to one-at-a-time prediction *and* to the model's offline
  ``predict`` on the live graph.  Always enforced.
* **throughput** — with ≥ ``QUEUE_DEPTH`` (default 2048) queued requests,
  the micro-batched path must answer at least ``SPEEDUP_FACTOR``× (5×) the
  unbatched one-request-per-call throughput, both measured on cache-less
  sessions so the LRU cannot flatter either side.  Always enforced (the
  ratio is Python-dispatch overhead, not graph-size dependent).
* **hot-swap correctness** — the real asyncio HTTP server answers a
  sustained stream of concurrent predictions while a delta schedule is
  replayed through ``POST /delta`` (incremental condensation → optional
  retrain → atomic session swap).  Every response must carry a known
  session version and labels byte-equal to that version's offline forward;
  zero dropped or incorrect responses is a hard gate.

Latency of the served requests is reported as p50/p95/p99 through
:func:`repro.evaluation.timing.summarize_latencies` and persisted with the
throughput numbers to ``BENCH_serving.json`` (committed baseline; the CI
``serving-smoke`` job regenerates it at ``REPRO_BENCH_SCALE=0.1`` and
uploads it as an artifact).

Environment knobs: ``REPRO_BENCH_SCALE``, ``REPRO_BENCH_EPOCHS``,
``REPRO_BENCH_SERVE_STEPS`` (delta steps, default 5),
``REPRO_BENCH_SERVE_QUEUE`` (queued requests for the throughput gate,
default 2048).

Run directly (``PYTHONPATH=src python benchmarks/bench_serving.py``); it is
deliberately not named ``test_*`` so the tier-1 suite stays fast.

Replicated-mode knobs: ``--workers N`` (default 4), ``--phases
throughput,kill,recovery`` (default all three; add ``chaos`` with
``--inject-faults`` for the self-healing drill: canary rollback, poison
quarantine, publish repair, crash-loop backoff, bit-rot fallback, and a
converged byte-identical recovery, all gated),
``REPRO_BENCH_MIN_AGG_SPEEDUP`` (default 2.5; the throughput gate is
reported but not enforced on hosts with fewer than 6 CPUs, where a
multi-process speedup is physically unavailable).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

import numpy as np

from benchmarks.common import EPOCHS, SCALE, emit, emit_json
from repro.core import FreeHGC
from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_delta_schedule, generate_hin
from repro.evaluation.pipeline import make_model_factory
from repro.evaluation.timing import summarize_latencies
from repro.serving import InferenceSession, ServingController, ServingServer

SPEEDUP_FACTOR = 5.0
QUEUE_DEPTH = int(os.environ.get("REPRO_BENCH_SERVE_QUEUE", "2048"))
STEPS = int(os.environ.get("REPRO_BENCH_SERVE_STEPS", "5"))
RATIO = 0.05
MAX_HOPS = 2
MICRO_BATCH = 256
#: concurrent client tasks hammering /predict during the hot-swap replay
CLIENTS = 8
#: node ids per /predict request in the hot-swap phase
IDS_PER_REQUEST = 16


def serving_config() -> SyntheticHINConfig:
    """ACM-shaped HIN sized so the target pool is ≥2k at scale 1."""
    return SyntheticHINConfig(
        name="acm-serve",
        target_type="paper",
        num_classes=3,
        node_types=(
            NodeTypeSpec("paper", count=2000, feature_dim=16),
            NodeTypeSpec("author", count=2600, feature_dim=16),
            NodeTypeSpec("subject", count=40, feature_dim=8),
            NodeTypeSpec("term", count=1100, feature_dim=8),
        ),
        relations=(
            RelationSpec("paper-cite-paper", "paper", "paper", avg_degree=4.0, affinity=0.8),
            RelationSpec("paper-author", "paper", "author", avg_degree=4.0, affinity=0.8),
            RelationSpec("paper-subject", "paper", "subject", avg_degree=1.5, affinity=0.9),
            RelationSpec("paper-term", "paper", "term", avg_degree=4.0, affinity=0.7),
        ),
        train_fraction=0.9,
        val_fraction=0.05,
    )


def identity_gate(controller: ServingController, ids: np.ndarray) -> None:
    """Batched == serial == offline forward, byte for byte (raises on fail)."""
    batched_session = InferenceSession(
        controller._model, controller.graph, version=100, cache_size=0
    )
    serial_session = InferenceSession(
        controller._model, controller.graph, version=101, cache_size=0
    )
    batched = batched_session.predict(ids)
    serial = np.array([serial_session.predict_one(int(i)) for i in ids], dtype=np.int64)
    if not np.array_equal(batched, serial):
        raise AssertionError("batched prediction differs from one-at-a-time")
    offline = controller._model.predict(controller.graph)
    if not np.array_equal(batched, offline[ids]):
        raise AssertionError("engine prediction differs from offline forward")
    cached = controller.session.predict(ids)
    if not np.array_equal(cached, batched):
        raise AssertionError("LRU-cached prediction differs from uncached")


def throughput_gate(controller: ServingController, num_targets: int, rng) -> dict:
    """Measure unbatched vs micro-batched throughput on cache-less sessions."""
    queue = rng.integers(0, num_targets, size=QUEUE_DEPTH).astype(np.int64)
    unbatched_session = InferenceSession(
        controller._model, controller.graph, version=102, cache_size=0
    )
    batched_session = InferenceSession(
        controller._model, controller.graph, version=103, cache_size=0
    )
    singles = [np.asarray([i]) for i in queue.tolist()]

    start = time.perf_counter()
    unbatched_out = [unbatched_session.predict(one) for one in singles]
    unbatched_seconds = time.perf_counter() - start

    chunks = [queue[i : i + MICRO_BATCH] for i in range(0, queue.size, MICRO_BATCH)]
    start = time.perf_counter()
    batched_out = [batched_session.predict(chunk) for chunk in chunks]
    batched_seconds = time.perf_counter() - start

    if not np.array_equal(np.concatenate(unbatched_out), np.concatenate(batched_out)):
        raise AssertionError("throughput phases disagree on labels")
    return {
        "queued_requests": int(queue.size),
        "unbatched_seconds": unbatched_seconds,
        "batched_seconds": batched_seconds,
        "unbatched_rps": queue.size / unbatched_seconds,
        "batched_rps": queue.size / batched_seconds,
        "speedup": unbatched_seconds / batched_seconds,
    }


async def hotswap_gate(controller: ServingController, seed: int) -> dict:
    """Concurrent load through the real server during a delta replay."""
    server = ServingServer(
        controller, port=0, max_batch=MICRO_BATCH, batch_window_seconds=0.002
    )
    host, port = await server.start()
    num_targets = controller.session.num_targets
    all_ids = np.arange(num_targets, dtype=np.int64)

    def snapshot() -> np.ndarray:
        # straight from the logits: also catches bad LRU carry-over
        return np.argmax(controller.session.logits(all_ids), axis=-1)

    expected: dict[int, np.ndarray] = {controller.version: snapshot()}
    schedule = generate_delta_schedule(
        controller.graph,
        steps=STEPS,
        seed=seed,
        edge_churn=0.0005,
        relations=("paper-term",),
    )
    failures = 0
    answered = 0
    latencies: list[float] = []
    stop = asyncio.Event()
    rng = np.random.default_rng(seed + 1)
    # pre-draw ids so client tasks do no RNG work in the hot loop
    id_pool = rng.integers(0, num_targets, size=(4096, IDS_PER_REQUEST)).astype(np.int64)

    async def request(method: str, path: str, payload: dict) -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        body = json.dumps(payload).encode()
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode() + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, response_body = raw.partition(b"\r\n\r\n")
        return int(head.split(b" ", 2)[1]), json.loads(response_body or b"{}")

    async def client(worker: int) -> None:
        nonlocal failures, answered
        cursor = worker
        while not stop.is_set():
            ids = id_pool[cursor % id_pool.shape[0]]
            cursor += CLIENTS
            start = time.perf_counter()
            try:
                status, payload = await request(
                    "POST", "/predict", {"nodes": ids.tolist()}
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                failures += 1
                continue
            latencies.append(time.perf_counter() - start)
            answered += 1
            if status != 200:
                failures += 1
                continue
            version = payload["version"]
            reference = expected.get(version)
            if reference is None and version == controller.version:
                reference = snapshot()
                expected[version] = reference
            if reference is None or not np.array_equal(
                np.asarray(payload["labels"]), reference[ids]
            ):
                failures += 1

    clients = [asyncio.create_task(client(i)) for i in range(CLIENTS)]
    swaps = []
    load_start = time.perf_counter()
    for delta in schedule:
        status, payload = await request("POST", "/delta", delta.to_payload())
        if status != 200:
            failures += 1
            continue
        expected.setdefault(payload["version"], snapshot())
        swaps.append(payload)
        print(
            f"swap {payload['step']}: version {payload['version']} "
            f"mode={payload['mode']} retrained={payload['retrained']} "
            f"dirty={payload['dirty_count']} carried={payload['cache_carried']} "
            f"swap {payload['swap_seconds']:.3f}s "
            f"({answered} requests answered so far)",
            flush=True,
        )
        # keep the load going a moment on the fresh session
        await asyncio.sleep(0.05)
    load_seconds = time.perf_counter() - load_start
    stop.set()
    await asyncio.gather(*clients, return_exceptions=True)
    _, stats = await request("GET", "/stats", {})
    await server.close()
    return {
        "requests": answered,
        "failures": failures,
        "swaps": swaps,
        "load_seconds": load_seconds,
        "served_rps": answered / load_seconds if load_seconds else 0.0,
        "latency": summarize_latencies(latencies),
        "batcher": stats.get("batcher", {}),
        "server_errors": stats.get("errors", 0),
    }


# --------------------------------------------------------------------- #
# Replicated tier (--replicated)
# --------------------------------------------------------------------- #
MIN_AGG_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_AGG_SPEEDUP", "2.5"))
#: below this many CPUs a multi-process speedup is physically unavailable,
#: so the throughput gate is reported but not enforced
SPEEDUP_GATE_MIN_CPUS = 6
LOAD_PROCS = int(os.environ.get("REPRO_BENCH_LOAD_PROCS", "4"))
LOAD_SECONDS = float(os.environ.get("REPRO_BENCH_LOAD_SECONDS", "2.0"))
GENESIS = {"benchmark": "bench_serving", "shape": "acm-serve", "seed": 7}


def _make_bench_controller(graph=None, canary=None) -> ServingController:
    """The deterministic controller recipe shared by every tier process."""
    if graph is None:
        graph = generate_hin(serving_config(), scale=SCALE, seed=7)
    return ServingController(
        graph,
        make_model_factory(
            "heterosgc", hidden_dim=32, epochs=EPOCHS, max_hops=MAX_HOPS, seed=0
        ),
        model_name="heterosgc",
        ratio=RATIO,
        condenser=FreeHGC(max_hops=MAX_HOPS),
        recondense_threshold=0.05,
        seed=0,
        cache_size=4096,
        canary=canary,
    )


def _chaos_controller(graph=None) -> ServingController:
    """The chaos drill's controller: the bench recipe plus a canary gate.

    ``min_consistency=0.0`` keeps the gate in blow-up-detection mode (the
    finite check) — the drill *forces* a rejection through the
    ``canary.force_reject`` site rather than degrading a real model, and a
    consistency floor would make legitimate retrains flaky.
    """
    from repro.serving import CanaryConfig

    return _make_bench_controller(
        graph, canary=CanaryConfig(size=32, min_consistency=0.0, seed=7)
    )


def _tier_main(root: str, workers: int, port_file: str, snapshot_every: int) -> None:
    """Child-process entry: serve a tier (or one plain server) until killed."""
    import asyncio

    from repro.serving.replicated import ReplicatedConfig, ReplicatedServer

    async def run() -> None:
        if workers == 0:
            controller = _make_bench_controller()
            controller.start()
            server = ServingServer(
                controller, port=0, max_batch=MICRO_BATCH,
                batch_window_seconds=0.001,
            )
        else:
            server = ReplicatedServer(
                _make_bench_controller,
                config=ReplicatedConfig(
                    root=root, port=0, workers=workers,
                    snapshot_every=snapshot_every,
                    batch_window_seconds=0.001,
                ),
                genesis=GENESIS,
            )
        host, port = await server.start()
        Path(port_file).write_text(
            json.dumps({"host": host, "port": port, "pid": os.getpid()})
        )
        await server.serve_forever()

    asyncio.run(run())


def _load_main(host: str, port: int, duration: float, counter_queue) -> None:
    """Load-client entry: hammer /predict over keep-alive until the deadline."""
    import http.client

    deadline = time.monotonic() + duration
    answered = 0
    body = json.dumps({"nodes": list(range(8))})
    headers = {"Content-Type": "application/json"}
    while time.monotonic() < deadline:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=5)
            # reconnect every 200 requests so the kernel re-balances the
            # connection across the SO_REUSEPORT acceptors
            for _ in range(200):
                if time.monotonic() >= deadline:
                    break
                conn.request("POST", "/predict", body=body, headers=headers)
                response = conn.getresponse()
                response.read()
                if response.status == 200:
                    answered += 1
            conn.close()
        except OSError:
            time.sleep(0.01)
    counter_queue.put(answered)


def _spawn_tier(ctx, root: Path, workers: int, *, snapshot_every: int = 0):
    """Start a tier subprocess; return ``(process, host, port, tier_pid)``."""
    root.mkdir(parents=True, exist_ok=True)
    port_file = root / f"port-{workers}.json"
    port_file.unlink(missing_ok=True)
    proc = ctx.Process(
        target=_tier_main,
        args=(str(root), workers, str(port_file), snapshot_every),
        daemon=False,  # the tier has children of its own
    )
    proc.start()
    deadline = time.monotonic() + 180
    while not port_file.exists() or not port_file.read_text().strip():
        if time.monotonic() > deadline or not proc.is_alive():
            raise RuntimeError("tier subprocess failed to start")
        time.sleep(0.1)
    info = json.loads(port_file.read_text())
    return proc, info["host"], info["port"], info["pid"]


def _measure_aggregate_rps(ctx, host: str, port: int) -> float:
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_load_main, args=(host, port, LOAD_SECONDS, queue))
        for _ in range(LOAD_PROCS)
    ]
    start = time.monotonic()
    for proc in procs:
        proc.start()
    total = sum(queue.get(timeout=LOAD_SECONDS * 10 + 60) for _ in procs)
    for proc in procs:
        proc.join()
    return total / max(time.monotonic() - start, 1e-9)


def _stop_tier(proc) -> None:
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=10)
    if proc.is_alive():
        proc.kill()
        proc.join()


def replicated_throughput_phase(ctx, root: Path, workers: int) -> dict:
    """Aggregate /predict throughput: single process vs a worker pool."""
    proc, host, port, _ = _spawn_tier(ctx, root / "baseline", 0)
    try:
        baseline_rps = _measure_aggregate_rps(ctx, host, port)
    finally:
        _stop_tier(proc)
    print(f"single-process baseline: {baseline_rps:.0f} rps "
          f"({LOAD_PROCS} client processes, {LOAD_SECONDS:g}s)")

    proc, host, port, _ = _spawn_tier(ctx, root / "pool", workers)
    try:
        replicated_rps = _measure_aggregate_rps(ctx, host, port)
    finally:
        _stop_tier(proc)
    speedup = replicated_rps / max(baseline_rps, 1e-9)
    print(f"replicated tier ({workers} workers + coordinator): "
          f"{replicated_rps:.0f} rps ({speedup:.2f}x aggregate)")
    return {
        "workers": workers,
        "load_processes": LOAD_PROCS,
        "load_seconds": LOAD_SECONDS,
        "baseline_rps": baseline_rps,
        "replicated_rps": replicated_rps,
        "aggregate_speedup": speedup,
        "cpus": os.cpu_count(),
        "gate_enforced": (os.cpu_count() or 1) >= SPEEDUP_GATE_MIN_CPUS,
    }


async def replicated_kill_phase(workers: int) -> dict:
    """Worker SIGKILL mid delta-replay: zero dropped, zero stale responses.

    The tier runs in-process (the benchmark is the coordinator) so the
    authoritative session is at hand for expected labels and worker pids
    are known for the kill.  Clients retry on connection resets — a killed
    worker's in-flight sockets die — and a logical request only counts as
    *dropped* when its retries are exhausted.  *Stale* means a response
    carries a version older than one whose ``/delta`` had already been
    acknowledged when the request was sent.
    """
    import signal as _signal
    import tempfile

    from repro.serving.replicated import ReplicatedConfig, ReplicatedServer

    tmp = tempfile.mkdtemp(prefix="bench-repl-kill-")
    server = ReplicatedServer(
        _make_bench_controller,
        config=ReplicatedConfig(
            root=tmp, port=0, workers=workers, batch_window_seconds=0.001
        ),
        genesis=GENESIS,
    )
    host, port = await server.start()
    deadline = time.monotonic() + 60
    while len(server._links) < workers:
        if time.monotonic() > deadline:
            raise RuntimeError("workers failed to register")
        await asyncio.sleep(0.05)

    controller = server.controller
    num_targets = controller.session.num_targets
    all_ids = np.arange(num_targets, dtype=np.int64)

    def snapshot() -> np.ndarray:
        return np.argmax(controller.session.logits(all_ids), axis=-1)

    expected: dict[int, np.ndarray] = {controller.version: snapshot()}
    acked_floor = controller.version
    schedule = generate_delta_schedule(
        controller.graph, steps=4, seed=29,
        edge_churn=0.0005, relations=("paper-term",),
    )
    answered = 0
    dropped = 0
    stale = 0
    incorrect = 0
    retries = 0
    stop = asyncio.Event()
    rng = np.random.default_rng(31)
    id_pool = rng.integers(0, num_targets, size=(1024, IDS_PER_REQUEST)).astype(np.int64)

    async def request(method: str, path: str, payload: dict) -> tuple[int, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        body = json.dumps(payload).encode()
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        if not raw:
            raise ConnectionResetError("empty response")
        head, _, response_body = raw.partition(b"\r\n\r\n")
        return int(head.split(b" ", 2)[1]), json.loads(response_body or b"{}")

    async def client(worker: int) -> None:
        nonlocal answered, dropped, stale, incorrect, retries
        cursor = worker
        while not stop.is_set():
            ids = id_pool[cursor % id_pool.shape[0]]
            cursor += CLIENTS
            floor = acked_floor  # committed before this request started
            for attempt in range(30):
                try:
                    status, payload = await request(
                        "POST", "/predict", {"nodes": ids.tolist()}
                    )
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    retries += 1
                    await asyncio.sleep(0.02)
                    continue
                if status != 200:
                    retries += 1
                    await asyncio.sleep(0.02)
                    continue
                answered += 1
                version = payload["version"]
                if version < floor:
                    stale += 1
                reference = expected.get(version)
                if reference is not None and not np.array_equal(
                    np.asarray(payload["labels"]), reference[ids]
                ):
                    incorrect += 1
                break
            else:
                dropped += 1

    clients = [asyncio.create_task(client(i)) for i in range(CLIENTS)]
    killed_pid = None
    try:
        for index, delta in enumerate(schedule):
            if index == 2:
                # mid-replay: SIGKILL one worker while load is in flight
                victim = server.pool._processes[1]
                killed_pid = victim.pid
                os.kill(victim.pid, _signal.SIGKILL)
            status, payload = await request("POST", "/delta", delta.to_payload())
            if status != 200:
                raise RuntimeError(f"delta {index} failed: {payload}")
            expected[payload["version"]] = snapshot()
            acked_floor = payload["version"]
            print(f"delta {index}: version {payload['version']} "
                  f"acked_workers={payload['acked_workers']}"
                  + (" (worker killed)" if index == 2 else ""))
            await asyncio.sleep(0.2)
        deadline = time.monotonic() + 60
        while server.pool.respawns < 1 or len(server._links) < workers:
            if time.monotonic() > deadline:
                raise RuntimeError("killed worker was not respawned")
            await asyncio.sleep(0.05)
        respawns = server.pool.respawns
    finally:
        stop.set()
        await asyncio.gather(*clients, return_exceptions=True)
        await server.close()
    return {
        "workers": workers,
        "deltas": len(schedule),
        "killed_pid": killed_pid,
        "answered": answered,
        "retries": retries,
        "dropped": dropped,
        "stale": stale,
        "incorrect": incorrect,
        "respawns": respawns,
    }


def replicated_recovery_phase(ctx, root: Path, workers: int) -> dict:
    """``kill -9`` the coordinator; WAL replay must restore byte-identical
    model state and identical predictions for the full query set."""
    from repro.serving.artifacts import load_bundle
    from repro.serving.replicated.pool import current_version
    from repro.streaming.incremental import graphs_equal

    # The mirror: same recipe, same deltas — what the tier *must* recover to.
    mirror = _make_bench_controller()
    mirror.start()
    schedule = generate_delta_schedule(
        mirror.graph, steps=4, seed=43, edge_churn=0.0005, relations=("paper-term",),
    )

    tier_root = root / "recovery"
    proc, host, port, tier_pid = _spawn_tier(ctx, tier_root, workers, snapshot_every=2)
    try:
        import http.client

        conn = http.client.HTTPConnection(host, port, timeout=120)
        for delta in schedule:
            mirror.apply_delta(delta)
            conn.request(
                "POST", "/delta", body=json.dumps(delta.to_payload()),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            if response.status != 200:
                raise RuntimeError(f"delta failed: {payload}")
        conn.close()
        assert payload["version"] == mirror.version, "tier/mirror diverged pre-kill"
    finally:
        print(f"kill -9 coordinator (pid {tier_pid}) after {len(schedule)} deltas")
        os.kill(tier_pid, 9)
        proc.join(timeout=30)

    restart_start = time.monotonic()
    proc, host, port, _ = _spawn_tier(ctx, tier_root, workers, snapshot_every=2)
    recovery_seconds = time.monotonic() - restart_start
    try:
        import http.client

        all_ids = np.arange(mirror.session.num_targets, dtype=np.int64)
        expected_labels = mirror.session.predict(all_ids)
        conn = http.client.HTTPConnection(host, port, timeout=120)
        conn.request(
            "POST", "/predict",
            body=json.dumps({"nodes": all_ids.tolist()}),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        if response.status != 200:
            raise RuntimeError(f"post-recovery predict failed: {payload}")
        predictions_identical = payload["labels"] == expected_labels.tolist()
        version_identical = payload["version"] == mirror.version

        # byte-identity of the recovered, re-published bundle
        version, vdir = current_version(tier_root)
        recovered = load_bundle(vdir / "bundle")
        reference = mirror.export_bundle()
        weights_identical = set(recovered.weights) == set(reference.weights) and all(
            np.asarray(recovered.weights[name]).tobytes()
            == np.asarray(reference.weights[name]).tobytes()
            for name in reference.weights
        )
        state_identical = json.dumps(
            recovered.state, sort_keys=True, default=str
        ) == json.dumps(reference.state, sort_keys=True, default=str)
        condensed_identical = graphs_equal(recovered.condensed, reference.condensed)
    finally:
        _stop_tier(proc)
    return {
        "workers": workers,
        "deltas": len(schedule),
        "recovery_seconds": recovery_seconds,
        "recovered_version": version,
        "expected_version": mirror.version,
        "version_identical": version_identical,
        "predictions_identical": predictions_identical,
        "weights_byte_identical": weights_identical,
        "state_identical": state_identical,
        "condensed_identical": condensed_identical,
    }


async def replicated_chaos_phase(workers: int) -> dict:
    """Adversarial chaos drill: every self-healing path fires, under load.

    Five failures strike a live tier while concurrent clients hammer
    ``/predict``: a canary-rejected swap, a poison-delta commit, a publish
    corrupted between manifest and meta, a crash-looping worker slot, and
    post-publish bit rot on the ``CURRENT`` version directory.  Gates:

    * **zero dropped** — every logical request is answered within its retry
      budget;
    * **zero garbage** — every answer carries a *published* version and
      labels byte-equal to that version's snapshot (a degraded worker
      serving last-good is fine; an unknown version or wrong labels is not);
    * **converged recovery** — a fresh boot from the surviving WAL replays
      with ``quarantined_now == 0`` (poisoned records skip without work)
      and restores state byte-identical to a mirror controller that applied
      only the surviving deltas.

    All fault fires, quarantines and fallbacks must land on the shared
    metrics board so the coordinator's ``/metrics`` page tells the story.
    """
    import signal as _signal
    import tempfile

    from repro.serving.replicated import (
        ReplicatedConfig,
        ReplicatedServer,
        read_deadletter,
        recover_from_wal,
    )
    from repro.serving.replicated.pool import current_version
    from repro.utils import faults
    from repro.utils.faults import FaultInjector

    tmp = Path(tempfile.mkdtemp(prefix="bench-repl-chaos-"))
    injector = FaultInjector(seed=11)
    faults.install(injector)
    server = ReplicatedServer(
        _chaos_controller,
        config=ReplicatedConfig(
            root=tmp, port=0, workers=workers, batch_window_seconds=0.001
        ),
        genesis=GENESIS,
    )
    host, port = await server.start()
    deadline = time.monotonic() + 60
    while len(server._links) < workers:
        if time.monotonic() > deadline:
            raise RuntimeError("workers failed to register")
        await asyncio.sleep(0.05)

    def snapshot() -> np.ndarray:
        session = server.controller.session
        ids = np.arange(session.num_targets, dtype=np.int64)
        return np.argmax(session.logits(ids), axis=-1)

    num_targets = server.controller.session.num_targets
    expected: dict[int, np.ndarray] = {server.controller.version: snapshot()}
    schedule = generate_delta_schedule(
        server.controller.graph, steps=4, seed=53,
        edge_churn=0.0005, relations=("paper-term",),
    )
    answered = 0
    dropped = 0
    garbage = 0
    retries = 0
    stop = asyncio.Event()
    rng = np.random.default_rng(59)
    id_pool = rng.integers(0, num_targets, size=(1024, IDS_PER_REQUEST)).astype(np.int64)

    async def raw_request(method: str, path: str, body: bytes) -> tuple[int, bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        if not raw:
            raise ConnectionResetError("empty response")
        head, _, payload = raw.partition(b"\r\n\r\n")
        return int(head.split(b" ", 2)[1]), payload

    async def request(method: str, path: str, payload: dict) -> tuple[int, dict]:
        status, body = await raw_request(method, path, json.dumps(payload).encode())
        return status, json.loads(body or b"{}")

    async def client(worker: int) -> None:
        nonlocal answered, dropped, garbage, retries
        cursor = worker
        while not stop.is_set():
            ids = id_pool[cursor % id_pool.shape[0]]
            cursor += CLIENTS
            for _ in range(50):
                try:
                    status, payload = await request(
                        "POST", "/predict", {"nodes": ids.tolist()}
                    )
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    retries += 1
                    await asyncio.sleep(0.02)
                    continue
                if status != 200:
                    retries += 1
                    await asyncio.sleep(0.02)
                    continue
                answered += 1
                # Zero-garbage contract: a degraded (last-good) version is
                # acceptable, but the labels must byte-match the snapshot of
                # whichever version the response claims.  A version not yet
                # in `expected` is a swap racing the /delta ack — resolve it
                # against the live controller, like the hotswap gate does.
                version = payload["version"]
                reference = expected.get(version)
                if reference is None and version == server.controller.version:
                    reference = expected[version] = snapshot()
                if reference is not None and not np.array_equal(
                    np.asarray(payload["labels"]), reference[ids]
                ):
                    garbage += 1
                break
            else:
                dropped += 1

    async def commit(delta) -> dict:
        status, payload = await request("POST", "/delta", delta.to_payload())
        if status != 200:
            raise RuntimeError(f"clean delta failed: {payload}")
        expected[payload["version"]] = snapshot()
        return payload

    clients = [asyncio.create_task(client(i)) for i in range(CLIENTS)]
    try:
        # -- clean prefix: two deltas the recovered state must preserve ---- #
        await commit(schedule[0])
        await commit(schedule[1])

        # -- segment 1: canary-rejected swap rolls back ------------------- #
        # A standalone delta (not part of the surviving chain): the rebuild
        # rolls its effects back entirely, so schedule[2] still validates.
        reject_delta = generate_delta_schedule(
            server.controller.graph, steps=1, seed=77,
            edge_churn=0.0005, relations=("paper-term",),
        )[0]
        injector.plan("canary.force_reject", every=1, limit=1)
        status, payload = await request("POST", "/delta", reject_delta.to_payload())
        if status != 422 or not payload.get("rolled_back"):
            raise RuntimeError(f"canary rejection not surfaced: {status} {payload}")
        print(
            f"rollback: canary rejected the candidate "
            f"({'; '.join(payload['canary'].get('reasons', []))}); "
            f"version {payload['version']} kept serving",
            flush=True,
        )

        # -- segment 2: poison delta quarantined to the dead letter ------- #
        poison_delta = generate_delta_schedule(
            server.controller.graph, steps=1, seed=79,
            edge_churn=0.0005, relations=("paper-term",),
        )[0]
        injector.plan("hotswap.poison_commit", every=1, limit=1)
        status, payload = await request("POST", "/delta", poison_delta.to_payload())
        if status != 422 or not payload.get("quarantined"):
            raise RuntimeError(f"poison delta not quarantined: {status} {payload}")
        print(
            f"quarantine: poison delta dead-lettered "
            f"(fingerprint={payload['fingerprint']}); "
            f"rolled back to version {payload['version']}",
            flush=True,
        )

        # -- segment 3: corrupt publish is caught and repaired in place --- #
        injector.plan("publish.corrupt_file", every=1, limit=1)
        await commit(schedule[2])
        if server.publish_repairs != 1:
            raise RuntimeError(
                f"corrupt publish not repaired (repairs={server.publish_repairs})"
            )
        print(
            "repair: publish failed its own manifest check and was "
            "republished in place",
            flush=True,
        )

        # -- segment 4: crash-looping worker slot, bounded respawns ------- #
        injector.plan("pool.crash_loop", every=1, limit=2)
        victim = min(
            slot for slot, proc in server.pool._processes.items() if proc.is_alive()
        )
        os.kill(server.pool._processes[victim].pid, _signal.SIGKILL)
        deadline = time.monotonic() + 60
        while (
            injector.fires.get("pool.crash_loop", 0) < 2
            or len(server._links) < workers
        ):
            if time.monotonic() > deadline:
                raise RuntimeError("crash-looping slot did not recover")
            await asyncio.sleep(0.05)
        print(
            f"crash loop: slot {victim} burned "
            f"{injector.fires['pool.crash_loop']} instant-crash spawns under "
            f"backoff, then recovered",
            flush=True,
        )

        # -- segment 5: bit rot on CURRENT; respawned worker serves last-good
        await commit(schedule[3])
        fallbacks_before = int(
            server.board.column("integrity_fallbacks_total").sum()
        )
        version, vdir = current_version(tmp)
        with open(vdir / "logits.npy", "r+b") as handle:
            handle.seek(128)
            byte = handle.read(1)
            handle.seek(128)
            handle.write(bytes([byte[0] ^ 0xFF]) if byte else b"\xff")
        victim = min(
            slot for slot, proc in server.pool._processes.items() if proc.is_alive()
        )
        os.kill(server.pool._processes[victim].pid, _signal.SIGKILL)
        deadline = time.monotonic() + 60
        while (
            int(server.board.column("integrity_fallbacks_total").sum())
            <= fallbacks_before
            or len(server._links) < workers
        ):
            if time.monotonic() > deadline:
                raise RuntimeError("bit-rotted publish did not trigger a fallback")
            await asyncio.sleep(0.05)
        worker_fallbacks = (
            int(server.board.column("integrity_fallbacks_total").sum())
            - fallbacks_before
        )
        print(
            f"integrity: version {version} bit-rotted on disk; respawned "
            f"worker verified, fell back to last-good ({worker_fallbacks} "
            f"fallback(s))",
            flush=True,
        )
        await asyncio.sleep(0.5)  # let clients exercise the degraded worker
    finally:
        stop.set()
        await asyncio.gather(*clients, return_exceptions=True)

    # -- the /metrics page must tell the whole story ----------------------- #
    status, metrics_body = await raw_request("GET", "/metrics", b"")
    metrics_page = metrics_body.decode("utf-8", "replace")
    for needle in (
        "repro_quarantined_deltas_total 2",
        "repro_canary_rejections_total 1",
        'repro_fault_fires_total{site="canary.force_reject"} 1',
        'repro_fault_fires_total{site="hotswap.poison_commit"} 1',
        'repro_fault_fires_total{site="publish.corrupt_file"} 1',
        'repro_fault_fires_total{site="pool.crash_loop"} 2',
    ):
        if needle not in metrics_page:
            raise RuntimeError(f"/metrics is missing {needle!r}")
    metrics_ok = status == 200

    wal_path = server.config.wal_path
    deadletter = read_deadletter(wal_path)
    stats = dict(server.stats)
    respawns = int(stats["respawns"])
    await server.close()
    faults.uninstall()

    # -- converged recovery: boot two is quarantine-free and byte-identical #
    mirror = _chaos_controller()
    mirror.start()
    for delta in schedule:
        mirror.apply_delta(delta)
    controller, wal, recovery = recover_from_wal(
        wal_path, root=tmp, make_controller=_chaos_controller,
        genesis_config=GENESIS,
    )
    try:
        all_ids = np.arange(mirror.session.num_targets, dtype=np.int64)
        predictions_identical = bool(
            np.array_equal(
                controller.session.predict(all_ids), mirror.session.predict(all_ids)
            )
        )
        recovered = controller.export_bundle()
        reference = mirror.export_bundle()
        weights_identical = set(recovered.weights) == set(reference.weights) and all(
            np.asarray(recovered.weights[name]).tobytes()
            == np.asarray(reference.weights[name]).tobytes()
            for name in reference.weights
        )
        version_identical = controller.version == mirror.version
    finally:
        wal.close()
    print(
        f"recovery: mode={recovery['mode']} "
        f"deltas_replayed={recovery['deltas_replayed']} "
        f"quarantined={recovery['quarantined']} "
        f"quarantined_now={recovery['quarantined_now']} "
        f"weights byte-identical={weights_identical}",
        flush=True,
    )
    return {
        "workers": workers,
        "deltas_committed": len(schedule),
        "answered": answered,
        "retries": retries,
        "dropped": dropped,
        "garbage": garbage,
        "respawns": respawns,
        "quarantined": int(stats["quarantined"]),
        "canary_rejections": int(stats["canary_rejections"]),
        "publish_repairs": int(stats["publish_repairs"]),
        "worker_integrity_fallbacks": worker_fallbacks,
        "deadletter_entries": len(deadletter),
        "deadletter_reasons": sorted({str(e.get("reason")) for e in deadletter}),
        "fault_fires": dict(injector.fires),
        "metrics_page_ok": metrics_ok,
        "recovery": {
            "mode": recovery["mode"],
            "deltas_replayed": recovery["deltas_replayed"],
            "quarantined": recovery["quarantined"],
            "quarantined_now": recovery["quarantined_now"],
            "version_identical": version_identical,
            "predictions_identical": predictions_identical,
            "weights_byte_identical": weights_identical,
        },
    }


def _read_baseline() -> dict:
    """The current BENCH_serving.json, minus provenance (emit_json re-stamps).

    Both entry points rewrite the whole file but own disjoint sections —
    the plain run keeps an existing ``replicated`` section and vice versa —
    so either benchmark can be re-run alone without losing the other's
    committed baseline."""
    from benchmarks.common import load_baseline

    payload = load_baseline("BENCH_serving.json")
    payload.pop("provenance", None)
    return payload


def replicated_main(workers: int, phases: set[str], inject_faults: bool = False) -> int:
    import multiprocessing
    import tempfile

    ctx = multiprocessing.get_context("spawn")
    root = Path(tempfile.mkdtemp(prefix="bench-replicated-"))
    result: dict = {"workers": workers, "scale": SCALE, "phases": sorted(phases)}
    failures: list[str] = []

    if "throughput" in phases:
        throughput = replicated_throughput_phase(ctx, root, workers)
        result["throughput"] = throughput
        if throughput["aggregate_speedup"] < MIN_AGG_SPEEDUP:
            if throughput["gate_enforced"]:
                failures.append(
                    f"aggregate throughput {throughput['aggregate_speedup']:.2f}x "
                    f"< {MIN_AGG_SPEEDUP:g}x at {workers} workers"
                )
            else:
                print(
                    f"note: {throughput['aggregate_speedup']:.2f}x < "
                    f"{MIN_AGG_SPEEDUP:g}x but only {throughput['cpus']} CPUs "
                    f"(gate needs >= {SPEEDUP_GATE_MIN_CPUS}): reported, not enforced"
                )

    if "kill" in phases:
        kill = asyncio.run(replicated_kill_phase(workers))
        result["worker_kill"] = kill
        print(
            f"worker-kill: {kill['answered']} answered, {kill['retries']} retried, "
            f"{kill['dropped']} dropped, {kill['stale']} stale, "
            f"{kill['incorrect']} incorrect, {kill['respawns']} respawns"
        )
        if kill["dropped"] or kill["stale"] or kill["incorrect"]:
            failures.append(
                f"worker-kill gate: dropped={kill['dropped']} "
                f"stale={kill['stale']} incorrect={kill['incorrect']}"
            )
        if kill["answered"] == 0:
            failures.append("worker-kill gate: no responses answered")

    if "recovery" in phases:
        recovery = replicated_recovery_phase(ctx, root, min(workers, 2))
        result["coordinator_recovery"] = recovery
        print(
            f"recovery: version {recovery['recovered_version']} restored in "
            f"{recovery['recovery_seconds']:.2f}s, "
            f"weights byte-identical={recovery['weights_byte_identical']}, "
            f"predictions identical={recovery['predictions_identical']}"
        )
        for key in (
            "version_identical", "predictions_identical",
            "weights_byte_identical", "state_identical", "condensed_identical",
        ):
            if not recovery[key]:
                failures.append(f"recovery gate: {key} is False")

    if "chaos" in phases:
        if not inject_faults:
            raise SystemExit("the chaos phase requires --inject-faults")
        chaos = asyncio.run(replicated_chaos_phase(min(workers, 2)))
        result["chaos"] = chaos
        print(
            f"chaos: {chaos['answered']} answered, {chaos['retries']} retried, "
            f"{chaos['dropped']} dropped, {chaos['garbage']} garbage, "
            f"{chaos['quarantined']} quarantined, "
            f"{chaos['canary_rejections']} canary rejections, "
            f"{chaos['publish_repairs']} publish repairs, "
            f"{chaos['respawns']} respawns"
        )
        if chaos["dropped"] or chaos["garbage"]:
            failures.append(
                f"chaos gate: dropped={chaos['dropped']} garbage={chaos['garbage']}"
            )
        if chaos["answered"] == 0:
            failures.append("chaos gate: no responses answered")
        if chaos["quarantined"] != 2 or chaos["deadletter_entries"] != 2:
            failures.append(
                f"chaos gate: quarantined={chaos['quarantined']} "
                f"deadletter={chaos['deadletter_entries']} (expected 2/2)"
            )
        if chaos["canary_rejections"] != 1:
            failures.append(
                f"chaos gate: canary_rejections={chaos['canary_rejections']} != 1"
            )
        recovery = chaos["recovery"]
        if recovery["quarantined_now"] != 0:
            failures.append(
                "chaos gate: recovery re-quarantined "
                f"{recovery['quarantined_now']} record(s) on the second boot"
            )
        for key in (
            "version_identical", "predictions_identical", "weights_byte_identical",
        ):
            if not recovery[key]:
                failures.append(f"chaos gate: recovery {key} is False")

    payload = _read_baseline()
    # Merge by phase: a partial run (--phases chaos) refreshes only its own
    # phase keys and leaves the committed numbers of the others in place.
    merged = payload.get("replicated")
    merged = dict(merged) if isinstance(merged, dict) else {}
    merged.update(result)
    merged["phases"] = sorted(set(merged.get("phases", ())) | phases)
    payload["replicated"] = merged
    if "chaos" in result:
        # Gate baseline: runner.gates derives the matrix's canary-rejections
        # threshold from the top-level "chaos" section.
        payload["chaos"] = dict(result["chaos"])
    emit_json(payload, "BENCH_serving.json")
    if failures:
        for failure in failures:
            print(f"error: {failure}")
        return 1
    print("replicated gates passed")
    return 0


def main() -> int:
    graph = generate_hin(serving_config(), scale=SCALE, seed=7)
    num_targets = graph.num_nodes[graph.schema.target_type]
    factory = make_model_factory(
        "heterosgc", hidden_dim=32, epochs=EPOCHS, max_hops=MAX_HOPS, seed=0
    )
    controller = ServingController(
        graph,
        factory,
        model_name="heterosgc",
        ratio=RATIO,
        condenser=FreeHGC(max_hops=MAX_HOPS),
        recondense_threshold=0.05,
        seed=0,
        cache_size=4096,
    )
    start = time.perf_counter()
    controller.start()
    cold_seconds = time.perf_counter() - start
    print(
        f"cold start (condense + train) {cold_seconds:.2f}s, "
        f"{num_targets} target nodes",
        flush=True,
    )

    rng = np.random.default_rng(3)
    ids = rng.permutation(num_targets).astype(np.int64)
    identity_gate(controller, ids)
    print("byte-identity gate passed (batched == serial == offline forward)")

    throughput = throughput_gate(controller, num_targets, rng)
    print(
        f"throughput: unbatched {throughput['unbatched_rps']:.0f} rps, "
        f"micro-batched {throughput['batched_rps']:.0f} rps "
        f"({throughput['speedup']:.1f}x) over {throughput['queued_requests']} requests"
    )

    swap_outcome = asyncio.run(hotswap_gate(controller, seed=23))
    latency = swap_outcome["latency"]
    print(
        f"hot-swap: {swap_outcome['requests']} concurrent requests, "
        f"{swap_outcome['failures']} failures, "
        f"p50={latency['p50'] * 1e3:.2f}ms p95={latency['p95'] * 1e3:.2f}ms "
        f"p99={latency['p99'] * 1e3:.2f}ms"
    )

    rows = [
        {
            "phase": "unbatched",
            "requests": throughput["queued_requests"],
            "rps": f"{throughput['unbatched_rps']:.0f}",
            "note": "one engine call per request (cache off)",
        },
        {
            "phase": "micro-batched",
            "requests": throughput["queued_requests"],
            "rps": f"{throughput['batched_rps']:.0f}",
            "note": f"batches of {MICRO_BATCH} (cache off), {throughput['speedup']:.1f}x",
        },
        {
            "phase": "served (hot-swap)",
            "requests": swap_outcome["requests"],
            "rps": f"{swap_outcome['served_rps']:.0f}",
            "note": (
                f"p50 {latency['p50'] * 1e3:.2f}ms / p95 {latency['p95'] * 1e3:.2f}ms "
                f"/ p99 {latency['p99'] * 1e3:.2f}ms, {swap_outcome['failures']} failures"
            ),
        },
    ]
    emit(
        f"Online serving — acm-serve scale {SCALE:g} ({num_targets} target nodes)",
        rows,
        "serving.txt",
        paper_note=(
            "Production-motivated extension (ROADMAP): the paper trains on the "
            "condensed graph; this harness persists that model, serves it over "
            "HTTP with micro-batching, and hot-swaps it as streaming deltas "
            "re-condense the graph — with zero dropped or incorrect responses."
        ),
    )
    single_process = {
            "scale": SCALE,
            "target_nodes": num_targets,
            "cold_start_seconds": cold_seconds,
            "byte_identical": True,
            "throughput": {
                key: value for key, value in throughput.items()
            },
            "hotswap": {
                "steps": STEPS,
                "requests": swap_outcome["requests"],
                "failures": swap_outcome["failures"],
                "served_rps": swap_outcome["served_rps"],
                "retrains": sum(1 for s in swap_outcome["swaps"] if s["retrained"]),
                "latency_ms": {
                    key: value * 1e3 if key != "count" else value
                    for key, value in latency.items()
                },
                "batcher": swap_outcome["batcher"],
            },
    }
    existing = _read_baseline()  # keep any --replicated sections already there
    for key in ("replicated", "chaos"):
        if key in existing:
            single_process[key] = existing[key]
    emit_json(single_process, "BENCH_serving.json")

    if throughput["speedup"] < SPEEDUP_FACTOR:
        print(
            f"error: throughput gate failed — {throughput['speedup']:.2f}x < "
            f"{SPEEDUP_FACTOR:.1f}x at {throughput['queued_requests']} queued requests"
        )
        return 1
    print(f"throughput gate passed (>= {SPEEDUP_FACTOR:.1f}x)")
    if swap_outcome["failures"] or swap_outcome["requests"] == 0:
        print(
            f"error: hot-swap gate failed — {swap_outcome['failures']} "
            f"failed/incorrect responses over {swap_outcome['requests']} requests"
        )
        return 1
    print("hot-swap gate passed (zero dropped/incorrect responses)")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicated", action="store_true",
                        help="benchmark the multi-process replicated tier "
                             "instead of the single-process server")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for --replicated (default: 4)")
    parser.add_argument("--phases", default="throughput,kill,recovery",
                        help="comma-separated subset of replicated phases "
                             "(throughput,kill,recovery,chaos; default runs "
                             "the first three)")
    parser.add_argument("--inject-faults", action="store_true",
                        help="allow the chaos phase to install deterministic "
                             "fault plans (required for --phases chaos)")
    cli_args = parser.parse_args()
    if cli_args.replicated:
        wanted = {p.strip() for p in cli_args.phases.split(",") if p.strip()}
        unknown = wanted - {"throughput", "kill", "recovery", "chaos"}
        if unknown:
            parser.error(f"unknown phases: {', '.join(sorted(unknown))}")
        if "chaos" in wanted and not cli_args.inject_faults:
            parser.error("--phases chaos requires --inject-faults")
        sys.exit(replicated_main(cli_args.workers, wanted, cli_args.inject_faults))
    sys.exit(main())
