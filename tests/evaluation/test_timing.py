"""Percentile math and latency summaries in evaluation.timing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.timing import percentile, summarize_latencies


class TestPercentile:
    def test_matches_numpy_linear_method(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(scale=0.01, size=257).tolist()
        for q in (0, 1, 25, 50, 75, 90, 95, 99, 99.9, 100):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q)), abs=1e-15
            )

    def test_single_sample(self):
        assert percentile([3.5], 0) == 3.5
        assert percentile([3.5], 50) == 3.5
        assert percentile([3.5], 100) == 3.5

    def test_two_samples_interpolates(self):
        assert percentile([1.0, 3.0], 50) == 2.0
        assert percentile([1.0, 3.0], 25) == 1.5

    def test_order_independent(self):
        assert percentile([5.0, 1.0, 3.0], 50) == percentile([1.0, 3.0, 5.0], 50) == 3.0

    def test_extremes_are_min_and_max(self):
        samples = [0.4, 0.1, 0.9, 0.2]
        assert percentile(samples, 0) == 0.1
        assert percentile(samples, 100) == 0.9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)

    def test_accepts_any_sequence_of_floats(self):
        assert percentile(np.array([1.0, 2.0]), 50) == 1.5
        assert percentile((2, 4), 50) == 3.0


class TestSummarizeLatencies:
    def test_summary_fields(self):
        summary = summarize_latencies([0.010, 0.020, 0.030, 0.040])
        assert summary["count"] == 4.0
        assert summary["mean"] == pytest.approx(0.025)
        assert summary["min"] == 0.010 and summary["max"] == 0.040
        assert summary["p50"] == pytest.approx(0.025)
        assert summary["p95"] == pytest.approx(float(np.percentile([0.01, 0.02, 0.03, 0.04], 95)))

    def test_p99_ge_p95_ge_p50(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(scale=0.005, size=1000).tolist()
        summary = summarize_latencies(samples)
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]

    def test_empty_is_all_zero(self):
        summary = summarize_latencies([])
        assert summary == {
            "count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
