"""Tests for the evaluation protocol, pipeline, reporting, storage, timing."""

import numpy as np
import pytest

from repro.baselines import RandomHG
from repro.core import FreeHGC
from repro.evaluation import (
    ExperimentConfig,
    Stopwatch,
    evaluate_condenser,
    format_markdown_table,
    format_series,
    format_table,
    make_condenser,
    make_model_factory,
    run_generalization_study,
    run_ratio_sweep,
    storage_bytes,
    storage_megabytes,
    storage_reduction_percent,
    timed,
    train_on_condensed,
    whole_graph_reference,
    write_report,
)
from repro.baselines.base import CondensedFeatureSet

FAST_MODEL = dict(hidden_dim=16, epochs=30, max_hops=2)


class TestProtocol:
    def test_evaluate_condenser_fields(self, toy_graph):
        factory = make_model_factory("heterosgc", **FAST_MODEL)
        evaluation = evaluate_condenser(
            toy_graph, RandomHG(), 0.25, factory, seeds=2, dataset_name="toy"
        )
        assert evaluation.dataset == "toy"
        assert evaluation.method == "Random-HG"
        assert len(evaluation.accuracies) == 2
        assert 0.0 <= evaluation.mean_accuracy <= 1.0
        assert evaluation.std_accuracy >= 0.0
        assert evaluation.condense_seconds >= 0.0
        assert evaluation.storage > 0
        assert evaluation.condensed_nodes > 0

    def test_as_row_keys(self, toy_graph):
        factory = make_model_factory("heterosgc", **FAST_MODEL)
        row = evaluate_condenser(toy_graph, RandomHG(), 0.25, factory, seeds=1).as_row()
        assert {"dataset", "method", "ratio", "accuracy_mean", "condense_s"} <= set(row)

    def test_whole_graph_reference(self, toy_graph):
        factory = make_model_factory("heterosgc", **FAST_MODEL)
        reference = whole_graph_reference(toy_graph, factory, seeds=1)
        assert reference.method == "Whole Dataset"
        assert reference.ratio == 1.0
        assert reference.mean_accuracy > 0.5

    def test_train_on_condensed_graph(self, toy_graph):
        condensed = RandomHG().condense(toy_graph, 0.3, seed=0)
        factory = make_model_factory("heterosgc", **FAST_MODEL)
        model, seconds = train_on_condensed(condensed, factory, toy_graph)
        assert seconds > 0
        assert model.evaluate(toy_graph) >= 0.0

    def test_train_on_feature_set(self, toy_graph):
        features = {"self": toy_graph.features["paper"]}
        feature_set = CondensedFeatureSet(
            features=features, labels=toy_graph.labels, num_classes=2
        )
        factory = make_model_factory("heterosgc", **FAST_MODEL)
        model, _ = train_on_condensed(feature_set, factory, toy_graph)
        assert model.evaluate(toy_graph) >= 0.0


class TestPipeline:
    def test_make_condenser_names(self):
        for name in ("random-hg", "herding-hg", "k-center-hg", "coarsening-hg",
                     "gcond", "hgcond", "freehgc"):
            condenser = make_condenser(name, max_hops=2)
            assert condenser is not None

    def test_make_condenser_freehgc_type(self):
        assert isinstance(make_condenser("freehgc", max_hops=3), FreeHGC)

    def test_make_condenser_unknown(self):
        with pytest.raises(KeyError):
            make_condenser("magic")

    def test_make_model_factory_unknown(self):
        with pytest.raises(KeyError):
            make_model_factory("magic")

    def test_make_model_factory_honors_max_hops(self):
        # Regression: max_hops used to be silently clamped to 2.
        model = make_model_factory("heterosgc", max_hops=3)()
        assert model.config.max_hops == 3

    @pytest.mark.parametrize("bad_hops", [0, -1, 6])
    def test_make_model_factory_rejects_out_of_range_hops(self, bad_hops):
        with pytest.raises(ValueError, match="max_hops"):
            make_model_factory("heterosgc", max_hops=bad_hops)

    def test_experiment_config_default_hops(self):
        config = ExperimentConfig(dataset="acm", ratios=(0.05,))
        assert config.resolved_max_hops() == 3
        explicit = ExperimentConfig(dataset="acm", ratios=(0.05,), max_hops=1)
        assert explicit.resolved_max_hops() == 1

    def test_run_ratio_sweep(self, toy_graph):
        config = ExperimentConfig(
            dataset="acm",
            ratios=(0.2,),
            methods=("random-hg", "freehgc"),
            model="heterosgc",
            seeds=1,
            epochs=25,
            hidden_dim=16,
            max_hops=2,
        )
        results = run_ratio_sweep(config, graph=toy_graph)
        methods = {r.method for r in results}
        assert {"Random-HG", "FreeHGC", "Whole Dataset"} <= methods

    def test_run_generalization_study(self, toy_graph):
        rows = run_generalization_study(
            "acm",
            0.2,
            methods=("random-hg", "freehgc"),
            models=("heterosgc", "sehgnn"),
            seeds=1,
            epochs=25,
            hidden_dim=16,
            graph=toy_graph,
        )
        assert len(rows) == 2
        assert {"HETEROSGC", "SEHGNN", "Condensed Avg.", "Whole Avg."} <= set(rows[0])


class TestReporting:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.1}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "a" in text and "10" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_markdown_table(self):
        text = format_markdown_table([{"x": 1}])
        assert text.startswith("| x |")

    def test_format_series(self):
        text = format_series("ratio", [0.1, 0.2], {"acc": [1.0, 2.0]})
        assert "ratio" in text and "acc" in text

    def test_write_report(self, tmp_path):
        path = write_report("hello", tmp_path / "sub" / "report.txt")
        assert path.read_text().strip() == "hello"


class TestStorageAndTiming:
    def test_storage_bytes_graph(self, toy_graph):
        assert storage_bytes(toy_graph) == toy_graph.storage_bytes()

    def test_storage_megabytes(self, toy_graph):
        assert storage_megabytes(toy_graph) == pytest.approx(
            toy_graph.storage_bytes() / 1e6
        )

    def test_storage_reduction(self, toy_graph):
        condensed = RandomHG().condense(toy_graph, 0.2, seed=0)
        assert storage_reduction_percent(toy_graph, condensed) > 0

    def test_storage_bad_type(self):
        with pytest.raises(TypeError):
            storage_bytes("not a graph")

    def test_stopwatch(self):
        watch = Stopwatch()
        with watch.measure("step"):
            sum(range(1000))
        assert watch.get("step") > 0
        assert watch.get("missing") == 0.0

    def test_timed(self):
        with timed() as holder:
            sum(range(1000))
        assert holder[0] > 0
