"""Tests for the graph builder, (de)serialisation and statistics helpers."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.hetero import (
    HeteroGraphBuilder,
    compression_summary,
    degree_statistics,
    graph_stats,
    load_graph,
    save_graph,
    saved_size_bytes,
)
from tests.conftest import build_toy_schema


class TestBuilder:
    def test_minimal_build(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        builder.add_nodes("paper", 5)
        builder.add_nodes("author", 3)
        builder.add_nodes("venue", 2)
        builder.add_nodes("term", 2)
        graph = builder.build()
        assert graph.num_nodes["paper"] == 5
        # default features are generated for every type
        assert graph.features["author"].shape[0] == 3

    def test_unknown_node_type_rejected(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        with pytest.raises(GraphConstructionError):
            builder.add_nodes("alien", 3)

    def test_negative_count_rejected(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        with pytest.raises(GraphConstructionError):
            builder.add_nodes("paper", -1)

    def test_feature_row_mismatch_rejected(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        with pytest.raises(GraphConstructionError):
            builder.add_nodes("paper", 5, features=np.zeros((4, 3)))

    def test_set_features_requires_nodes(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        with pytest.raises(GraphConstructionError):
            builder.set_features("paper", np.zeros((5, 3)))

    def test_edge_out_of_range_rejected(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        builder.add_nodes("paper", 2)
        builder.add_nodes("author", 2)
        builder.add_nodes("venue", 1)
        builder.add_nodes("term", 1)
        builder.add_edges("writes", np.array([0]), np.array([99]))
        with pytest.raises(GraphConstructionError):
            builder.build()

    def test_unknown_relation_rejected(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        builder.add_nodes("paper", 2)
        with pytest.raises(Exception):
            builder.add_edges("nope", np.array([0]), np.array([0]))

    def test_incremental_edges_accumulate(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        builder.add_nodes("paper", 3)
        builder.add_nodes("author", 3)
        builder.add_nodes("venue", 1)
        builder.add_nodes("term", 1)
        builder.add_edges("writes", np.array([0]), np.array([0]))
        builder.add_edges("writes", np.array([1]), np.array([1]))
        graph = builder.build()
        assert graph.adjacency["writes"].nnz == 2

    def test_metadata_kept(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        builder.add_nodes("paper", 2)
        builder.add_nodes("author", 1)
        builder.add_nodes("venue", 1)
        builder.add_nodes("term", 1)
        builder.set_metadata(name="custom", scale=0.5)
        graph = builder.build()
        assert graph.metadata["name"] == "custom"

    def test_labels_default_to_unlabeled(self):
        builder = HeteroGraphBuilder(build_toy_schema())
        builder.add_nodes("paper", 4)
        builder.add_nodes("author", 1)
        builder.add_nodes("venue", 1)
        builder.add_nodes("term", 1)
        graph = builder.build()
        assert np.all(graph.labels == -1)


class TestIO:
    def test_roundtrip(self, toy_graph, tmp_path):
        path = tmp_path / "toy.npz"
        save_graph(toy_graph, path)
        loaded = load_graph(path)
        assert loaded.total_nodes == toy_graph.total_nodes
        assert loaded.total_edges == toy_graph.total_edges
        assert np.array_equal(loaded.labels, toy_graph.labels)
        assert loaded.schema.target_type == toy_graph.schema.target_type

    def test_roundtrip_features(self, toy_graph, tmp_path):
        loaded = load_graph(save_graph(toy_graph, tmp_path / "g.npz"))
        assert np.allclose(loaded.features["paper"], toy_graph.features["paper"])

    def test_roundtrip_splits(self, toy_graph, tmp_path):
        loaded = load_graph(save_graph(toy_graph, tmp_path / "g.npz"))
        assert np.array_equal(loaded.splits.train, toy_graph.splits.train)

    def test_saved_size_positive(self, toy_graph, tmp_path):
        assert saved_size_bytes(toy_graph, tmp_path / "g.npz") > 0

    def test_condensed_file_smaller(self, toy_graph, tmp_path):
        sub = toy_graph.induced_subgraph({"paper": np.arange(5), "author": np.arange(3)})
        full_size = saved_size_bytes(toy_graph, tmp_path / "full.npz")
        small_size = saved_size_bytes(sub, tmp_path / "small.npz")
        assert small_size < full_size


class TestStatistics:
    def test_graph_stats_fields(self, toy_graph):
        stats = graph_stats(toy_graph)
        assert stats.total_nodes == toy_graph.total_nodes
        assert stats.num_node_types == 4
        assert stats.target_type == "paper"

    def test_graph_stats_row(self, toy_graph):
        row = graph_stats(toy_graph).as_row()
        assert row["#Nodes"] == toy_graph.total_nodes
        assert row["Target"] == "paper"

    def test_degree_statistics(self, toy_graph):
        stats = degree_statistics(toy_graph, "paper")
        assert stats["max"] >= stats["mean"] >= stats["min"] >= 0

    def test_compression_summary(self, toy_graph):
        sub = toy_graph.induced_subgraph({"paper": np.arange(5)})
        summary = compression_summary(toy_graph, sub)
        assert 0 < summary["node_ratio"] < 1
        assert summary["storage_reduction_pct"] > 0
