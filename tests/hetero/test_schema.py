"""Tests for repro.hetero.schema."""

import pytest

from repro.errors import SchemaError
from repro.hetero.schema import HeteroSchema, Relation


def make_schema() -> HeteroSchema:
    return HeteroSchema(
        node_types=("paper", "author", "venue"),
        relations=(
            Relation("writes", "author", "paper"),
            Relation("published", "paper", "venue"),
            Relation("cites", "paper", "paper"),
        ),
        target_type="paper",
        num_classes=3,
    )


class TestRelation:
    def test_reversed(self):
        rel = Relation("writes", "author", "paper")
        rev = rel.reversed()
        assert rev.src == "paper" and rev.dst == "author"
        assert rev.name == "writes__rev"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", "a", "b")

    def test_missing_endpoint_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", "", "b")


class TestHeteroSchema:
    def test_valid_schema(self):
        schema = make_schema()
        assert schema.target_type == "paper"
        assert len(schema.relations) == 3

    def test_duplicate_node_types_rejected(self):
        with pytest.raises(SchemaError):
            HeteroSchema(("a", "a"), (), "a", 2)

    def test_unknown_target_rejected(self):
        with pytest.raises(SchemaError):
            HeteroSchema(("a",), (), "b", 2)

    def test_too_few_classes_rejected(self):
        with pytest.raises(SchemaError):
            HeteroSchema(("a",), (), "a", 1)

    def test_duplicate_relation_names_rejected(self):
        with pytest.raises(SchemaError):
            HeteroSchema(
                ("a", "b"),
                (Relation("r", "a", "b"), Relation("r", "b", "a")),
                "a",
                2,
            )

    def test_relation_with_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            HeteroSchema(("a",), (Relation("r", "a", "zzz"),), "a", 2)

    def test_relation_lookup(self):
        schema = make_schema()
        assert schema.relation("writes").src == "author"

    def test_unknown_relation_lookup(self):
        with pytest.raises(SchemaError):
            make_schema().relation("nope")

    def test_relations_from(self):
        schema = make_schema()
        names = {r.name for r in schema.relations_from("paper")}
        assert names == {"published", "cites"}

    def test_relations_between(self):
        schema = make_schema()
        assert [r.name for r in schema.relations_between("author", "paper")] == ["writes"]

    def test_neighbor_types_undirected(self):
        schema = make_schema()
        assert set(schema.neighbor_types("paper")) == {"author", "venue"}

    def test_neighbor_types_excludes_self(self):
        schema = make_schema()
        assert "paper" not in schema.neighbor_types("paper")

    def test_other_types(self):
        schema = make_schema()
        assert set(schema.other_types()) == {"author", "venue"}

    def test_is_homogeneous_false(self):
        assert not make_schema().is_homogeneous()

    def test_is_homogeneous_true(self):
        schema = HeteroSchema(("n",), (Relation("e", "n", "n"),), "n", 2)
        assert schema.is_homogeneous()

    def test_with_reverse_relations_adds_reverses(self):
        schema = make_schema().with_reverse_relations()
        names = {r.name for r in schema.relations}
        assert "writes__rev" in names and "published__rev" in names

    def test_with_reverse_relations_preserves_target(self):
        schema = make_schema().with_reverse_relations()
        assert schema.target_type == "paper"
