"""save_graph/load_graph round-trip fidelity for post-streaming graphs.

Regression for the serving-bundle requirement: a graph mutated by a
:class:`~repro.streaming.apply.DeltaApplier` — tombstoned nodes, grown id
spaces, emptied relations, shrunken splits — must round-trip through the
``.npz`` codec byte-exactly, including the ``metadata`` dict that was
previously dropped on load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_acm
from repro.datasets.generators import generate_delta_schedule
from repro.hetero.io import graph_from_arrays, graph_to_arrays, load_graph, save_graph
from repro.streaming import DeltaApplier, GraphDelta
from repro.streaming.incremental import assert_graphs_equal


def roundtrip(graph, tmp_path):
    return load_graph(save_graph(graph, tmp_path / "g.npz"))


class TestPostStreamingRoundTrip:
    def test_tombstones_and_arrivals_survive_exactly(self, tmp_path):
        graph = load_acm(scale=0.2, seed=0)
        applier = DeltaApplier()
        applier.apply(
            graph,
            GraphDelta(
                remove_nodes={"paper": np.array([0, 3, 5]), "author": np.array([1])},
                step=1,
            ),
        )
        dim = graph.features["paper"].shape[1]
        new_feats = np.random.default_rng(0).normal(size=(2, dim))
        base = graph.num_nodes["paper"]
        applier.apply(
            graph,
            GraphDelta(
                add_nodes={"paper": new_feats},
                add_labels=np.array([1, 2]),
                add_split="test",
                add_edges={
                    "paper-author": (np.array([base, base + 1]), np.array([2, 4]))
                },
                step=2,
            ),
        )
        loaded = roundtrip(graph, tmp_path)
        assert_graphs_equal(graph, loaded)
        # tombstoned ids are recoverable: label -1, zeroed features, no split
        assert loaded.labels[0] == -1 and loaded.labels[3] == -1
        assert not loaded.features["paper"][0].any()
        for split in (loaded.splits.train, loaded.splits.val, loaded.splits.test):
            assert not np.isin([0, 3, 5], split).any()

    def test_full_schedule_roundtrip(self, tmp_path):
        graph = load_acm(scale=0.15, seed=0)
        schedule = generate_delta_schedule(
            graph,
            steps=6,
            seed=1,
            edge_churn=0.01,
            node_arrival_every=2,
            arrival_count=3,
            removal_every=3,
            removal_count=2,
        )
        applier = DeltaApplier()
        for delta in schedule:
            applier.apply(graph, delta)
        loaded = roundtrip(graph, tmp_path)
        assert_graphs_equal(graph, loaded)

    def test_metadata_round_trips(self, tmp_path):
        graph = load_acm(scale=0.1, seed=0)
        assert graph.metadata  # the loader stamps provenance
        graph.metadata["stream_step"] = 42
        loaded = roundtrip(graph, tmp_path)
        assert loaded.metadata == graph.metadata

    def test_metadata_numpy_values_survive_as_plain_types(self, tmp_path):
        graph = load_acm(scale=0.1, seed=0)
        graph.metadata["np_scalar"] = np.float64(1.5)
        loaded = roundtrip(graph, tmp_path)
        assert loaded.metadata["np_scalar"] == 1.5

    def test_emptied_relation_and_empty_split_survive(self, tmp_path):
        graph = load_acm(scale=0.1, seed=0)
        applier = DeltaApplier()
        coo = graph.adjacency["paper-subject"].tocoo()
        applier.apply(
            graph, GraphDelta(remove_edges={"paper-subject": (coo.row, coo.col)})
        )
        applier.apply(graph, GraphDelta(remove_nodes={"paper": graph.splits.val.copy()}))
        assert graph.adjacency["paper-subject"].nnz == 0
        assert graph.splits.val.size == 0
        loaded = roundtrip(graph, tmp_path)
        assert_graphs_equal(graph, loaded)
        assert loaded.adjacency["paper-subject"].shape == graph.adjacency["paper-subject"].shape

    def test_prefixed_arrays_embed_in_larger_archive(self, tmp_path):
        graph = load_acm(scale=0.1, seed=0)
        arrays = graph_to_arrays(graph, prefix="graph__")
        arrays["something_else"] = np.arange(5)
        path = tmp_path / "combo.npz"
        np.savez_compressed(path, **arrays)
        with np.load(path, allow_pickle=False) as data:
            rebuilt = graph_from_arrays(data, prefix="graph__")
        assert_graphs_equal(graph, rebuilt)
        assert rebuilt.metadata == graph.metadata

    def test_legacy_archive_without_metadata_loads(self, tmp_path):
        graph = load_acm(scale=0.1, seed=0)
        arrays = graph_to_arrays(graph)
        del arrays["metadata_json"]  # pre-serving archives had no metadata
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **arrays)
        loaded = load_graph(path)
        assert_graphs_equal(graph, loaded)
        assert loaded.metadata == {}
