"""Tests for repro.hetero.sparse."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hetero.sparse import (
    boolean_csr,
    compose_path,
    coo_from_edges,
    degree_vector,
    row_normalize,
    sparse_storage_bytes,
    symmetric_normalize,
    to_csr,
)


class TestToCsr:
    def test_from_dense(self):
        result = to_csr(np.eye(3))
        assert sp.issparse(result) and result.shape == (3, 3)

    def test_from_sparse(self):
        result = to_csr(sp.coo_matrix(np.eye(2)))
        assert isinstance(result, sp.csr_matrix)

    def test_dtype_float(self):
        assert to_csr(np.eye(2, dtype=int)).dtype == np.float64


class TestCooFromEdges:
    def test_basic(self):
        matrix = coo_from_edges(np.array([0, 1]), np.array([1, 0]), (2, 2))
        assert matrix.nnz == 2

    def test_duplicates_binarised(self):
        matrix = coo_from_edges(np.array([0, 0]), np.array([1, 1]), (2, 2))
        assert matrix[0, 1] == 1.0

    def test_weights_kept(self):
        matrix = coo_from_edges(
            np.array([0]), np.array([1]), (2, 2), weights=np.array([2.5])
        )
        assert matrix[0, 1] == 2.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coo_from_edges(np.array([0, 1]), np.array([1]), (2, 2))

    def test_empty(self):
        matrix = coo_from_edges(np.empty(0, int), np.empty(0, int), (3, 4))
        assert matrix.shape == (3, 4) and matrix.nnz == 0


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        matrix = row_normalize(np.array([[1.0, 1.0], [2.0, 0.0]]))
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, [1.0, 1.0])

    def test_empty_rows_stay_zero(self):
        matrix = row_normalize(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert np.asarray(matrix.sum(axis=1)).ravel()[0] == 0.0

    def test_rectangular(self):
        matrix = row_normalize(np.ones((2, 5)))
        assert np.allclose(np.asarray(matrix.sum(axis=1)).ravel(), 1.0)


class TestSymmetricNormalize:
    def test_symmetric_square(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = symmetric_normalize(adjacency).toarray()
        assert np.allclose(result, adjacency)  # degree-1 nodes keep weight 1

    def test_rectangular_supported(self):
        result = symmetric_normalize(np.ones((2, 3)))
        assert result.shape == (2, 3)
        assert np.all(result.toarray() > 0)

    def test_zero_rows_handled(self):
        result = symmetric_normalize(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert np.isfinite(result.toarray()).all()


class TestBooleanCsr:
    def test_binarises(self):
        result = boolean_csr(np.array([[0.0, 5.0], [0.3, 0.0]]))
        assert set(np.unique(result.toarray())) <= {0.0, 1.0}

    def test_preserves_pattern(self):
        original = np.array([[0.0, 2.0], [0.0, 0.0]])
        assert boolean_csr(original).nnz == 1


class TestCacheStaleness:
    """The fingerprint guard must invalidate caches on in-place mutation."""

    def _weighted(self):
        matrix = sp.csr_matrix(np.array([[0.0, 2.0, 3.0], [4.0, 0.0, 0.0]]))
        matrix.sum_duplicates()
        return matrix

    def test_cache_hit_without_mutation(self):
        matrix = self._weighted()
        first = boolean_csr(matrix)
        assert boolean_csr(matrix) is first

    def test_setdiag_invalidates(self):
        matrix = sp.csr_matrix(2.0 * np.eye(3))
        stale = boolean_csr(matrix)
        assert stale.nnz == 3 and stale is not matrix
        matrix.setdiag(0.0)
        matrix.eliminate_zeros()
        fresh = boolean_csr(matrix)
        assert fresh.nnz == 0
        assert fresh is not stale

    def test_data_rebind_invalidates(self):
        matrix = self._weighted()
        boolean_csr(matrix)
        matrix.data = np.zeros_like(matrix.data)
        matrix.eliminate_zeros()
        assert boolean_csr(matrix).nnz == 0

    def test_structural_add_invalidates(self):
        matrix = self._weighted()
        stale = boolean_csr(matrix)
        grown = matrix + sp.csr_matrix(
            (np.ones(1), (np.array([1]), np.array([2]))), shape=matrix.shape
        )
        # a new object never sees the old cache; mutating in place does
        matrix.indptr, matrix.indices, matrix.data = (
            grown.indptr, grown.indices, grown.data,
        )
        fresh = boolean_csr(matrix)
        assert fresh.nnz == stale.nnz + 1

    def test_fingerprint_components(self):
        from repro.hetero.sparse import matrix_fingerprint

        matrix = self._weighted()
        token = matrix_fingerprint(matrix)
        assert token == matrix_fingerprint(matrix)
        other = matrix.copy()
        assert token != matrix_fingerprint(other)  # distinct buffers


class TestComposePath:
    def test_single_matrix(self):
        result = compose_path([np.eye(3)])
        assert np.allclose(result.toarray(), np.eye(3))

    def test_two_hops_normalized(self):
        a = np.array([[1.0, 1.0], [0.0, 1.0]])
        b = np.array([[1.0], [1.0]])
        result = compose_path([a, b]).toarray()
        assert np.allclose(result, [[1.0], [1.0]])

    def test_boolean_mode(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([[1.0], [1.0]])
        result = compose_path([a, b], normalize=False).toarray()
        assert result[0, 0] >= 1.0

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            compose_path([])

    def test_shape_chain(self):
        result = compose_path([np.ones((2, 3)), np.ones((3, 4)), np.ones((4, 5))])
        assert result.shape == (2, 5)


class TestDegreeAndStorage:
    def test_degree_rows(self):
        degrees = degree_vector(np.array([[1.0, 1.0], [0.0, 0.0]]), axis=1)
        assert np.allclose(degrees, [2.0, 0.0])

    def test_degree_cols(self):
        degrees = degree_vector(np.array([[1.0, 1.0], [0.0, 1.0]]), axis=0)
        assert np.allclose(degrees, [1.0, 2.0])

    def test_storage_positive(self):
        assert sparse_storage_bytes(sp.eye(10, format="csr")) > 0

    def test_storage_grows_with_nnz(self):
        small = sparse_storage_bytes(sp.eye(10, format="csr"))
        large = sparse_storage_bytes(sp.csr_matrix(np.ones((10, 10))))
        assert large > small
