"""Featureless node types get the same features in every process.

Regression test for a real bug reprolint's REP-D103 rule surfaced: the
builder seeded featureless-type features with ``hash(node_type)``, which
varies with ``PYTHONHASHSEED`` — two workers of the same deployment could
disagree on the feature bytes of the same graph.  The fix hashes the type
name with sha256 instead.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.hetero import HeteroGraphBuilder, HeteroSchema, Relation

_SNIPPET = """
import hashlib, json
import numpy as np
from repro.hetero import HeteroGraphBuilder, HeteroSchema, Relation

schema = HeteroSchema(
    node_types=("paper", "venue"),
    relations=(Relation("published", "paper", "venue"),),
    target_type="paper", num_classes=2,
)
builder = HeteroGraphBuilder(schema)
builder.add_nodes("paper", 4, np.eye(4))
builder.add_nodes("venue", 3)  # featureless: builder derives features
builder.add_edges("published", [0, 1, 2, 3], [0, 1, 2, 0])
graph = builder.build(default_feature_dim=6)
digest = hashlib.sha256(np.ascontiguousarray(graph.features["venue"]).tobytes())
print(json.dumps({"venue_features": digest.hexdigest()}))
"""


def _run_with_hashseed(seed: str) -> str:
    src = Path(__file__).resolve().parents[2] / "src"
    result = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src), "PYTHONHASHSEED": seed},
        check=True,
    )
    return json.loads(result.stdout)["venue_features"]


def test_featureless_features_stable_across_hash_seeds():
    digests = {_run_with_hashseed(seed) for seed in ("0", "1", "31337")}
    assert len(digests) == 1, "featureless features depend on PYTHONHASHSEED"


def test_featureless_features_deterministic_in_process():
    schema = HeteroSchema(
        node_types=("paper", "venue"),
        relations=(Relation("published", "paper", "venue"),),
        target_type="paper",
        num_classes=2,
    )

    def build():
        builder = HeteroGraphBuilder(schema)
        builder.add_nodes("paper", 4, np.eye(4))
        builder.add_nodes("venue", 3)
        builder.add_edges("published", [0, 1, 2, 3], [0, 1, 2, 0])
        return builder.build(default_feature_dim=6)

    first, second = build(), build()
    np.testing.assert_array_equal(first.features["venue"], second.features["venue"])
    assert first.features["venue"].shape == (3, 6)
