"""Tests for repro.hetero.graph (HeteroGraph container)."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.hetero.graph import HeteroGraph, NodeSplits


class TestNodeSplits:
    def test_sizes(self):
        splits = NodeSplits(np.array([0, 1]), np.array([2]), np.array([3, 4, 5]))
        assert splits.sizes == (2, 1, 3)

    def test_overlap_rejected(self):
        with pytest.raises(GraphConstructionError):
            NodeSplits(np.array([0, 1]), np.array([1]), np.array([2]))

    def test_empty_ok(self):
        splits = NodeSplits(np.empty(0, int), np.empty(0, int), np.empty(0, int))
        assert splits.sizes == (0, 0, 0)


class TestHeteroGraphValidation:
    def test_toy_graph_valid(self, toy_graph):
        toy_graph.validate()

    def test_counts_and_edges(self, toy_graph):
        assert toy_graph.total_nodes == sum(toy_graph.num_nodes.values())
        assert toy_graph.total_edges == sum(m.nnz for m in toy_graph.adjacency.values())

    def test_bad_feature_rows_rejected(self, toy_graph):
        broken = toy_graph.copy()
        broken.features["paper"] = broken.features["paper"][:-1]
        with pytest.raises(GraphConstructionError):
            broken.validate()

    def test_bad_label_length_rejected(self, toy_graph):
        broken = toy_graph.copy()
        broken.labels = broken.labels[:-1]
        with pytest.raises(GraphConstructionError):
            broken.validate()

    def test_label_out_of_range_rejected(self, toy_graph):
        broken = toy_graph.copy()
        broken.labels = broken.labels.copy()
        broken.labels[0] = 99
        with pytest.raises(GraphConstructionError):
            broken.validate()


class TestAccessors:
    def test_target_type(self, toy_graph):
        assert toy_graph.target_type == "paper"

    def test_relation_matrix_shape(self, toy_graph):
        matrix = toy_graph.relation_matrix("writes")
        assert matrix.shape == (toy_graph.num_nodes["author"], toy_graph.num_nodes["paper"])

    def test_typed_adjacency_includes_reverse(self, toy_graph):
        forward = toy_graph.typed_adjacency("author", "paper")
        backward = toy_graph.typed_adjacency("paper", "author")
        assert forward.nnz == backward.nnz

    def test_typed_adjacency_boolean(self, toy_graph):
        matrix = toy_graph.typed_adjacency("paper", "term")
        assert set(np.unique(matrix.data)) <= {1.0}

    def test_connected_type_pairs_symmetric(self, toy_graph):
        pairs = set(toy_graph.connected_type_pairs())
        assert ("paper", "author") in pairs and ("author", "paper") in pairs

    def test_class_distribution_total(self, toy_graph):
        dist = toy_graph.class_distribution()
        assert dist.sum() == toy_graph.num_nodes["paper"]
        assert dist.shape == (toy_graph.num_classes,)

    def test_class_distribution_subset(self, toy_graph):
        dist = toy_graph.class_distribution(toy_graph.splits.train)
        assert dist.sum() == len(toy_graph.splits.train)

    def test_summary_mentions_name(self, toy_graph):
        assert "toy" in toy_graph.summary()

    def test_storage_positive(self, toy_graph):
        assert toy_graph.storage_bytes() > 0

    def test_copy_is_deep(self, toy_graph):
        clone = toy_graph.copy()
        clone.features["paper"][0, 0] = 1e9
        assert toy_graph.features["paper"][0, 0] != 1e9


class TestInducedSubgraph:
    def test_counts_reduced(self, toy_graph):
        kept = {"paper": np.arange(10), "author": np.arange(5)}
        sub = toy_graph.induced_subgraph(kept)
        assert sub.num_nodes["paper"] == 10
        assert sub.num_nodes["author"] == 5
        # types not mentioned keep everything
        assert sub.num_nodes["venue"] == toy_graph.num_nodes["venue"]

    def test_labels_follow_selection(self, toy_graph):
        kept_papers = np.array([3, 7, 11])
        sub = toy_graph.induced_subgraph({"paper": kept_papers})
        assert np.array_equal(sub.labels, toy_graph.labels[kept_papers])

    def test_edges_subset(self, toy_graph):
        sub = toy_graph.induced_subgraph({"paper": np.arange(10)})
        assert sub.total_edges <= toy_graph.total_edges

    def test_splits_remapped_within_range(self, toy_graph):
        sub = toy_graph.induced_subgraph({"paper": np.arange(15)})
        for split in (sub.splits.train, sub.splits.val, sub.splits.test):
            if split.size:
                assert split.max() < 15

    def test_out_of_range_rejected(self, toy_graph):
        with pytest.raises(GraphConstructionError):
            toy_graph.induced_subgraph({"paper": np.array([10**6])})

    def test_full_selection_is_identity(self, toy_graph):
        kept = {t: np.arange(toy_graph.num_nodes[t]) for t in toy_graph.schema.node_types}
        sub = toy_graph.induced_subgraph(kept)
        assert sub.total_nodes == toy_graph.total_nodes
        assert sub.total_edges == toy_graph.total_edges


class TestToHomogeneous:
    def test_shapes(self, toy_graph):
        adjacency, features, labels = toy_graph.to_homogeneous()
        total = toy_graph.total_nodes
        assert adjacency.shape == (total, total)
        assert features.shape[0] == total
        assert labels.shape == (total,)

    def test_labels_only_on_target(self, toy_graph):
        _, _, labels = toy_graph.to_homogeneous()
        labeled = (labels >= 0).sum()
        assert labeled == toy_graph.num_nodes["paper"]

    def test_adjacency_symmetric(self, toy_graph):
        adjacency, _, _ = toy_graph.to_homogeneous()
        assert (adjacency != adjacency.T).nnz == 0

    def test_feature_padding(self, toy_graph):
        _, features, _ = toy_graph.to_homogeneous()
        max_dim = max(f.shape[1] for f in toy_graph.features.values())
        assert features.shape[1] == max_dim


def test_graph_repr_is_string(toy_graph):
    assert isinstance(repr(toy_graph), str)
