"""Logger namespace helpers and the trace-stamped JSON formatter."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.utils.logging import JsonFormatter, enable_verbose_logging, get_logger


@pytest.fixture(autouse=True)
def reset_logging_state():
    yield
    obs.uninstall()
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)


def make_record(message="hello"):
    return logging.LogRecord(
        name="repro.test", level=logging.INFO, pathname=__file__, lineno=1,
        msg=message, args=(), exc_info=None,
    )


class TestGetLogger:
    def test_names_are_namespaced(self):
        assert get_logger().name == "repro"
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.core").name == "repro.core"


class TestJsonFormatter:
    def test_plain_record_has_no_trace_fields(self):
        obj = json.loads(JsonFormatter().format(make_record()))
        assert obj == {"level": "INFO", "logger": "repro.test", "message": "hello"}

    def test_record_inside_a_span_is_stamped(self):
        obs.install(obs.Tracer("t-log"))
        try:
            with obs.span("op"):
                obj = json.loads(JsonFormatter().format(make_record()))
        finally:
            obs.uninstall()
        assert obj["trace_id"] == "t-log"
        assert obj["span_id"] == "main:1"

    def test_exception_info_included(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            record = logging.LogRecord(
                name="repro.test", level=logging.ERROR, pathname=__file__,
                lineno=1, msg="failed", args=(), exc_info=sys.exc_info(),
            )
        obj = json.loads(JsonFormatter().format(record))
        assert "RuntimeError: boom" in obj["exc_info"]


class TestEnableVerboseLogging:
    def test_idempotent_single_handler(self):
        logger = enable_verbose_logging()
        enable_verbose_logging()
        assert len(logger.handlers) == 1

    def test_json_flag_swaps_formatter_in_place(self):
        logger = enable_verbose_logging()
        assert not isinstance(logger.handlers[0].formatter, JsonFormatter)
        enable_verbose_logging(json=True)
        assert len(logger.handlers) == 1
        assert isinstance(logger.handlers[0].formatter, JsonFormatter)
        enable_verbose_logging(json=False)
        assert not isinstance(logger.handlers[0].formatter, JsonFormatter)
