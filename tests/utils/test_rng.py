"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(3)
        assert ensure_rng(rng) is rng

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_deterministic(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(5, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(5, 3)]
        assert first == second

    def test_children_independent(self):
        values = [g.integers(0, 10**9) for g in spawn_rngs(5, 3)]
        assert len(set(values)) == 3
