"""Tests for repro.utils.validation and repro.utils.logging."""

import numpy as np
import pytest

from repro.utils.logging import enable_verbose_logging, get_logger
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_matrix,
)


class TestCheckFraction:
    def test_valid(self):
        assert check_fraction(0.5, "x") == 0.5

    def test_one_is_valid(self):
        assert check_fraction(1.0, "x") == 1.0

    def test_zero_rejected_by_default(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x")

    def test_zero_allowed_when_inclusive(self):
        assert check_fraction(0.0, "x", inclusive_low=True) == 0.0

    def test_above_one_rejected(self):
        with pytest.raises(ValueError, match="x"):
            check_fraction(1.5, "x")


class TestCheckPositive:
    def test_valid(self):
        assert check_positive(3, "n") == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            check_positive(0, "n")


class TestCheckNonNegative:
    def test_zero_valid(self):
        assert check_non_negative(0, "n") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_non_negative(-1, "n")


class TestCheckProbabilityMatrix:
    def test_valid(self):
        matrix = np.array([[0.0, 0.5], [1.0, 0.25]])
        assert check_probability_matrix(matrix, "p").shape == (2, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[-0.1]]), "p")

    def test_above_one_rejected(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[1.1]]), "p")

    def test_empty_ok(self):
        assert check_probability_matrix(np.empty((0, 2)), "p").size == 0


class TestLogging:
    def test_get_logger_namespaced(self):
        assert get_logger("core").name == "repro.core"

    def test_get_logger_root(self):
        assert get_logger().name == "repro"

    def test_get_logger_already_namespaced(self):
        assert get_logger("repro.core").name == "repro.core"

    def test_enable_verbose_idempotent(self):
        first = enable_verbose_logging()
        count = len(first.handlers)
        second = enable_verbose_logging()
        assert len(second.handlers) == count
