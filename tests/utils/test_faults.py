"""Tests for the deterministic fault-injection layer (repro.utils.faults)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ReproError
from repro.utils import faults
from repro.utils.faults import FaultInjector, InjectedFault


@pytest.fixture(autouse=True)
def _clean_injector():
    """Never leak a process-global injector between tests."""
    faults.uninstall()
    yield
    faults.uninstall()


class TestFaultRuleSelection:
    def test_at_fires_on_exact_invocations(self):
        injector = FaultInjector(seed=0)
        injector.plan("s", at=(2, 4), note="x")
        hits = [injector.fire("s") for _ in range(5)]
        assert [h is not None for h in hits] == [False, True, False, True, False]
        assert hits[1] == {"note": "x"}

    def test_every_fires_periodically(self):
        injector = FaultInjector(seed=0)
        injector.plan("s", every=3)
        hits = [injector.fire("s") is not None for _ in range(7)]
        assert hits == [False, False, True, False, False, True, False]

    def test_unconditional_fires_every_time(self):
        injector = FaultInjector(seed=0)
        injector.plan("s", note="always")
        assert all(injector.fire("s") == {"note": "always"} for _ in range(4))

    def test_limit_caps_total_fires(self):
        injector = FaultInjector(seed=0)
        injector.plan("s", every=1, limit=2)
        hits = [injector.fire("s") is not None for _ in range(5)]
        assert hits == [True, True, False, False, False]
        assert injector.fires["s"] == 2
        assert injector.invocations["s"] == 5

    def test_probability_is_deterministic_under_seed(self):
        def run(seed):
            injector = FaultInjector(seed=seed)
            injector.plan("s", probability=0.4)
            return [injector.fire("s") is not None for _ in range(64)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide
        assert 5 < sum(run(7)) < 60  # a coin flip, not a constant

    def test_probability_streams_independent_per_site(self):
        injector = FaultInjector(seed=3)
        injector.plan("a", probability=0.5)
        injector.plan("b", probability=0.5)
        a = [injector.fire("a") is not None for _ in range(64)]
        b = [injector.fire("b") is not None for _ in range(64)]
        assert a != b

    def test_plan_rejects_multiple_selectors(self):
        injector = FaultInjector(seed=0)
        with pytest.raises(ValueError):
            injector.plan("s", at=(1,), every=2)
        with pytest.raises(ValueError):
            injector.plan("s", every=2, probability=0.5)

    def test_plan_rejects_bad_probability(self):
        injector = FaultInjector(seed=0)
        with pytest.raises(ValueError):
            injector.plan("s", probability=1.5)


class TestInstallation:
    def test_fire_without_injector_is_noop(self):
        assert faults.fire("anything") is None
        assert faults.active() is None

    def test_injected_context_installs_and_uninstalls(self):
        injector = FaultInjector(seed=1)
        injector.plan("s", at=(1,), hit=True)
        with faults.injected(injector):
            assert faults.active() is injector
            assert faults.fire("s") == {"hit": True}
        assert faults.active() is None
        assert faults.fire("s") is None

    def test_injected_uninstalls_on_exception(self):
        injector = FaultInjector(seed=1)
        with pytest.raises(RuntimeError):
            with faults.injected(injector):
                raise RuntimeError("boom")
        assert faults.active() is None

    def test_install_replaces_previous(self):
        first, second = FaultInjector(seed=1), FaultInjector(seed=2)
        faults.install(first)
        faults.install(second)
        assert faults.active() is second

    def test_injected_fault_is_a_repro_error(self):
        assert issubclass(InjectedFault, ReproError)
        assert issubclass(InjectedFault, RuntimeError)


class TestConcurrency:
    def test_counters_exact_under_concurrent_fire(self):
        injector = FaultInjector(seed=0)
        injector.plan("s", every=5)
        threads_n, per_thread = 8, 250
        barrier = threading.Barrier(threads_n)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                injector.fire("s")

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = threads_n * per_thread
        assert injector.invocations["s"] == total
        assert injector.fires["s"] == total // 5
        stats = injector.stats
        assert stats["invocations"]["s"] == total
        assert stats["fires"]["s"] == total // 5

    def test_stats_json_safe(self):
        import json

        injector = FaultInjector(seed=0)
        injector.plan("s", at=(1,))
        injector.fire("s")
        json.dumps(injector.stats)  # must not raise
