"""Ring buffer, durable JSONL sink, and trace analysis/reporting."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import SpanCollector, TraceSink
from repro.obs.report import (
    REPORT_SCHEMA,
    aggregate,
    build_tree,
    collapsed_stacks,
    render_report,
    report_obj,
)
from repro.obs.spans import (
    TRACE_SCHEMA_VERSION,
    Span,
    TraceDecodeError,
    read_trace,
    read_trace_tree,
)


def make_span(span_id, name, parent=None, duration=0.0, scope="main", status="ok"):
    return Span(
        span_id=span_id,
        name=name,
        trace_id="t",
        parent_id=parent,
        duration_s=duration,
        scope=scope,
        status=status,
    )


class TestSpanCollector:
    def test_ring_buffer_evicts_oldest_and_counts_drops(self):
        collector = SpanCollector(capacity=2)
        for i in range(4):
            collector.add(make_span(f"main:{i}", "s"))
        assert len(collector) == 2
        assert collector.stats == {
            "buffered": 2,
            "added": 4,
            "dropped": 2,
            "capacity": 2,
        }
        assert [s.span_id for s in collector.drain()] == ["main:2", "main:3"]
        assert len(collector) == 0

    def test_snapshot_does_not_consume(self):
        collector = SpanCollector()
        collector.add(make_span("main:1", "s"))
        assert len(collector.snapshot()) == 1
        assert len(collector) == 1


class TestTraceSink:
    def test_every_physical_file_is_independently_decodable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(path, "t-rotate", max_bytes=400)
        spans = [make_span(f"main:{i}", "x" * 30) for i in range(10)]
        for _ in range(4):
            sink.write(spans)
        sink.close()
        assert sink.rotations >= 1
        rotated = sorted(tmp_path.glob("trace.jsonl.*"))
        assert rotated
        total = 0
        for file in [path, *rotated]:
            header, decoded = read_trace(file)
            assert header["trace_id"] == "t-rotate"
            assert header["schema"] == TRACE_SCHEMA_VERSION
            total += len(decoded)
        assert total == sink.spans_written == 40

    def test_write_after_close_is_a_noop(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl", "t")
        sink.close()
        assert sink.write([make_span("main:1", "s")]) == 0


class TestTraceDecode:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(make_span("main:1", "s").encode_line() + "\n")
        with pytest.raises(TraceDecodeError, match="missing trace header"):
            read_trace(path)

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"kind": "header", "schema": 99, "trace_id": "t"}) + "\n")
        with pytest.raises(TraceDecodeError, match="unsupported trace schema"):
            read_trace(path)

    def test_read_trace_tree_merges_sidecars(self, tmp_path):
        main = TraceSink(tmp_path / "t.jsonl", "t", scope="main")
        main.write([make_span("main:1", "root")])
        main.close()
        side = TraceSink(tmp_path / "t.jsonl.worker-0", "t", scope="worker-0")
        side.write([make_span("worker-0:1", "child", parent="main:1", scope="worker-0")])
        side.close()
        header, spans = read_trace_tree(
            [tmp_path / "t.jsonl", tmp_path / "t.jsonl.worker-0"]
        )
        assert header["scope"] == "main"
        assert sorted(s.scope for s in spans) == ["main", "worker-0"]


class TestAnalysis:
    def spans(self):
        # root(1.0s) -> a(0.6) -> b(0.2); a second root-level a(0.1)
        return [
            make_span("main:1", "root", duration=1.0),
            make_span("main:2", "a", parent="main:1", duration=0.6),
            make_span("main:3", "b", parent="main:2", duration=0.2),
            make_span("main:4", "a", parent="main:1", duration=0.1, status="error"),
        ]

    def test_aggregate_self_times_and_errors(self):
        stats = {s.name: s for s in aggregate(self.spans())}
        assert stats["root"].self_s == pytest.approx(0.3)  # 1.0 - 0.6 - 0.1
        assert stats["a"].count == 2
        assert stats["a"].self_s == pytest.approx(0.5)  # (0.6 - 0.2) + 0.1
        assert stats["a"].errors == 1
        assert stats["b"].self_s == pytest.approx(0.2)

    def test_build_tree_merges_by_name_path(self):
        tree = build_tree(self.spans())
        root = tree.children["root"]
        assert root.count == 1
        assert root.children["a"].count == 2
        assert root.children["a"].children["b"].count == 1

    def test_orphan_parents_attach_to_root(self):
        orphan = [make_span("worker-9:1", "lost", parent="gone:42", duration=0.1)]
        tree = build_tree(orphan)
        assert "lost" in tree.children

    def test_collapsed_stacks_are_sorted_and_weighted(self):
        lines = collapsed_stacks(self.spans())
        assert lines == sorted(lines)
        by_stack = dict(line.rsplit(" ", 1) for line in lines)
        assert int(by_stack["root;a"]) == 500000  # 0.5s self in µs
        assert int(by_stack["root;a;b"]) == 200000

    def test_report_obj_schema(self):
        obj = report_obj({"trace_id": "t"}, self.spans())
        assert obj["schema"] == REPORT_SCHEMA
        assert obj["trace_id"] == "t"
        assert obj["spans"] == 4
        assert obj["scopes"] == ["main"]
        assert obj["tree"]["children"][0]["name"] == "root"
        json.dumps(obj)  # must be JSON-serialisable as-is

    def test_render_report_mentions_every_name(self):
        text = render_report({"trace_id": "t"}, self.spans())
        for name in ("root", "a", "b"):
            assert name in text
        assert "4 spans" in text

    def test_deterministic_across_span_order(self):
        spans = self.spans()
        forward = report_obj({"trace_id": "t"}, spans)
        backward = report_obj({"trace_id": "t"}, list(reversed(spans)))
        assert forward["names"] == backward["names"]
        assert collapsed_stacks(spans) == collapsed_stacks(list(reversed(spans)))
