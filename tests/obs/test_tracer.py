"""Tracer core: no-op-by-default, deterministic ids, span-tree structure."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs.spans import read_trace
from repro.obs.tracer import _NOOP, ENV_TRACE_FILE, ENV_TRACE_ID


class TestDisabled:
    def test_span_is_the_shared_noop_singleton(self):
        assert obs.active() is None
        assert obs.span("anything", key="value") is _NOOP
        assert obs.span("other") is _NOOP  # no per-call allocation

    def test_noop_span_usable_as_context_manager(self):
        with obs.span("untraced") as handle:
            assert handle is None

    def test_event_is_a_noop(self):
        obs.event("nothing.listens", detail=1)  # must not raise

    def test_traced_function_runs_untouched(self):
        @obs.traced("unit.fn")
        def double(x):
            return 2 * x

        assert double(21) == 42


class TestInstalled:
    def test_span_ids_are_deterministic_and_sequential(self):
        tracer = obs.install(obs.Tracer("t-ids"))
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        spans = tracer.drain_spans()
        assert [s.span_id for s in spans] == ["main:1", "main:2"]
        assert all(s.trace_id == "t-ids" for s in spans)

    def test_nesting_sets_parent_ids(self):
        tracer = obs.install(obs.Tracer("t-nest"))
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = tracer.drain_spans()  # finish order: inner first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_explicit_parent_overrides_the_stack(self):
        tracer = obs.install(obs.Tracer("t-remote"))
        with obs.span("local"):
            with obs.span("handler", _parent="remote:7"):
                pass
        handler = tracer.drain_spans()[0]
        assert handler.parent_id == "remote:7"

    def test_root_parent_adopted_by_root_spans(self):
        tracer = obs.Tracer("t-continued")
        tracer.root_parent = "main:3"
        obs.install(tracer)
        with obs.span("worker.root"):
            pass
        assert tracer.drain_spans()[0].parent_id == "main:3"

    def test_exception_marks_span_status_error(self):
        tracer = obs.install(obs.Tracer("t-err"))
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("nope")
        span = tracer.drain_spans()[0]
        assert span.status == "error"
        assert span.duration_s >= 0.0

    def test_events_attach_to_innermost_open_span(self):
        tracer = obs.install(obs.Tracer("t-events"))
        with obs.span("outer"):
            with obs.span("inner"):
                obs.event("memo.hit", key="k")
        inner = next(s for s in tracer.drain_spans() if s.name == "inner")
        assert [e.name for e in inner.events] == ["memo.hit"]
        assert inner.events[0].attrs == {"key": "k"}

    def test_traced_decorator_records_and_defaults_label(self):
        tracer = obs.install(obs.Tracer("t-deco"))

        @obs.traced()
        def helper():
            return 1

        assert helper() == 1
        span = tracer.drain_spans()[0]
        assert span.name.endswith("helper")

    def test_on_finish_hooks_fire_and_failures_are_swallowed(self):
        tracer = obs.install(obs.Tracer("t-hooks"))
        seen = []
        tracer.on_finish.append(lambda s: seen.append(s.name))
        tracer.on_finish.append(lambda s: 1 / 0)  # must never propagate
        with obs.span("observed"):
            pass
        assert seen == ["observed"]

    def test_span_attrs_round_trip(self):
        tracer = obs.install(obs.Tracer("t-attrs"))
        with obs.span("op", requests=3) as handle:
            handle.attrs["status"] = 200
        span = tracer.drain_spans()[0]
        assert span.attrs == {"requests": 3, "status": 200}


class TestTracingContextManager:
    def test_writes_decodable_file_and_uninstalls(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.tracing("t-file", path=path):
            with obs.span("only"):
                pass
        assert obs.active() is None
        header, spans = read_trace(path)
        assert header["trace_id"] == "t-file"
        assert [s.name for s in spans] == ["only"]

    def test_export_env_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.tracing("t-env", path=path, export_env=True):
            assert os.environ[ENV_TRACE_FILE] == str(path)
            assert os.environ[ENV_TRACE_ID] == "t-env"
        assert ENV_TRACE_FILE not in os.environ
        assert ENV_TRACE_ID not in os.environ

    def test_bootstrap_from_env_writes_scope_sidecar(self, tmp_path):
        path = tmp_path / "run.jsonl"
        os.environ[ENV_TRACE_FILE] = str(path)
        os.environ[ENV_TRACE_ID] = "t-boot"
        tracer = obs.bootstrap_from_env("worker-1")
        assert tracer is not None and obs.active() is tracer
        with obs.span("worker.op"):
            pass
        obs.uninstall()
        tracer.close()
        header, spans = read_trace(f"{path}.worker-1")
        assert header["scope"] == "worker-1"
        assert spans[0].span_id == "worker-1:1"

    def test_bootstrap_without_env_is_none(self):
        assert obs.bootstrap_from_env("worker-1") is None
        assert obs.active() is None
