"""Trace-context carriers round-trip across every process boundary.

Each carrier has two contracts: ``extract(inject(ctx)) == ctx``, and the
*untraced* path leaves its payload byte-identical to a build without any
tracing code — the serialized GraphDelta, the WAL frame, and the HTTP
request bytes must not change unless a tracer is installed.
"""

from __future__ import annotations

import json

import numpy as np

from repro import obs
from repro.obs.propagate import (
    METADATA_KEY,
    TRACE_HEADER,
    TraceContext,
    continue_trace,
    current_context,
    extract_delta,
    extract_headers,
    extract_payload,
    inject_headers,
    inject_payload,
    stamp_delta,
)
from repro.serving.replicated.wal import DeltaWAL, read_wal
from repro.streaming import GraphDelta


def make_delta(step=1):
    return GraphDelta(
        add_edges={"paper-author": (np.array([0, 1]), np.array([2, 3]))},
        step=step,
    )


class TestHeaderCarrier:
    def test_round_trip(self):
        ctx = TraceContext(trace_id="t-1", parent_id="main:4")
        assert TraceContext.from_header(ctx.to_header()) == ctx

    def test_round_trip_without_parent(self):
        ctx = TraceContext(trace_id="t-1")
        assert TraceContext.from_header(ctx.to_header()) == ctx

    def test_malformed_headers_decode_to_none(self):
        assert TraceContext.from_header("") is None
        assert TraceContext.from_header("no-semicolon") is None
        assert TraceContext.from_header(";orphan-parent") is None

    def test_inject_extract_through_header_dict(self):
        obs.install(obs.Tracer("t-http"))
        with obs.span("client.call"):
            headers = inject_headers({"content-type": "application/json"})
            assert TRACE_HEADER in headers
            ctx = extract_headers(headers)
        assert ctx.trace_id == "t-http"
        assert ctx.parent_id == "main:1"

    def test_inject_is_identity_when_untraced(self):
        assert inject_headers() == {}
        headers = {"host": "x"}
        assert inject_headers(headers) is headers
        assert headers == {"host": "x"}
        assert extract_headers({"host": "x"}) is None


class TestDeltaCarrier:
    def test_stamp_and_extract(self):
        obs.install(obs.Tracer("t-delta"))
        with obs.span("commit"):
            stamped = stamp_delta(make_delta())
        ctx = extract_delta(stamped)
        assert ctx == TraceContext(trace_id="t-delta", parent_id="main:1")

    def test_survives_payload_round_trip(self):
        stamped = stamp_delta(make_delta(), TraceContext("t-x", "main:9"))
        revived = GraphDelta.from_payload(
            json.loads(json.dumps(stamped.to_payload()))
        )
        assert extract_delta(revived) == TraceContext("t-x", "main:9")

    def test_untraced_stamp_is_identity(self):
        delta = make_delta()
        assert stamp_delta(delta) is delta
        assert METADATA_KEY not in delta.metadata

    def test_untraced_payload_bytes_unchanged(self):
        payload = make_delta().to_payload()
        assert "metadata" not in payload  # empty metadata is not serialized
        encoded = json.dumps(payload, sort_keys=True)
        assert "trace" not in encoded


class TestWALCarrier:
    def test_replayed_delta_carries_the_commit_context(self, tmp_path):
        path = tmp_path / "deltas.wal"
        stamped = stamp_delta(make_delta(step=3), TraceContext("t-wal", "main:2"))
        with DeltaWAL(path) as wal:
            wal.append_delta(stamped)
        record = next(r for r in read_wal(path) if r.kind == "delta")
        assert extract_delta(record.delta()) == TraceContext("t-wal", "main:2")

    def test_untraced_wal_bytes_identical(self, tmp_path):
        first, second = tmp_path / "a.wal", tmp_path / "b.wal"
        with DeltaWAL(first) as wal:
            wal.append_delta(make_delta(step=3))
        with DeltaWAL(second) as wal:
            wal.append_delta(stamp_delta(make_delta(step=3)))  # no tracer
        assert first.read_bytes() == second.read_bytes()


class TestPayloadCarrier:
    def test_round_trip_and_untraced_identity(self):
        payload = {"cell": "x"}
        assert extract_payload(inject_payload(dict(payload))) is None  # untraced
        obs.install(obs.Tracer("t-pool"))
        with obs.span("submit"):
            stamped = inject_payload(dict(payload))
        ctx = extract_payload(stamped)
        assert ctx == TraceContext(trace_id="t-pool", parent_id="main:1")
        assert stamped["cell"] == "x"


class TestContinueTrace:
    def test_worker_spans_parent_to_the_remote_span(self):
        ctx = TraceContext(trace_id="t-cont", parent_id="main:5")
        tracer = obs.install(continue_trace(ctx, scope="cell-2"))
        with obs.span("runner.cell"):
            pass
        span = tracer.drain_spans()[0]
        assert span.trace_id == "t-cont"
        assert span.parent_id == "main:5"
        assert span.span_id == "cell-2:1"
        assert span.scope == "cell-2"

    def test_current_context_tracks_innermost_span(self):
        assert current_context() is None
        tracer = obs.install(obs.Tracer("t-cur"))
        assert current_context() == TraceContext("t-cur", None)
        with obs.span("outer"):
            with obs.span("inner"):
                assert current_context().parent_id == "main:2"
        tracer.drain_spans()
