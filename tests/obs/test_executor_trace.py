"""Process-pool trace propagation: parallel span trees match serial ones.

The runner ships the trace context into every ProcessPoolExecutor
submission and merges the workers' spans back into the parent collector —
so the *name-path structure* of a traced parallel sweep must be identical
to the same sweep run serially (only scopes and timings differ).
"""

from __future__ import annotations

from repro import obs
from repro.evaluation.pipeline import ExperimentConfig
from repro.obs.report import TreeNode, build_tree
from repro.runner import execute_plan, plan_ratio_sweep

TINY = dict(
    dataset="acm",
    ratios=(0.2,),
    methods=("random-hg", "freehgc"),
    model="heterosgc",
    scale=0.1,
    seeds=1,
    epochs=5,
    hidden_dim=8,
    max_hops=2,
)


def name_tree(node: TreeNode):
    """Recursive (name, count, children) shape, order-insensitive."""
    return (
        node.name,
        node.count,
        tuple(sorted(name_tree(c) for c in node.children.values())),
    )


def traced_run(trace_id, **kwargs):
    plan = plan_ratio_sweep(ExperimentConfig(**TINY))
    with obs.tracing(trace_id) as tracer:
        with obs.span("plan"):
            outcomes = execute_plan(plan, **kwargs)
        spans = tracer.drain_spans()
    return outcomes, spans


def test_parallel_span_tree_matches_serial():
    # force=True bypasses the per-process condensed-artifact memo: forked
    # workers inherit the parent's memo, which would hide their condense
    # spans and make the trees trivially different.
    serial_outcomes, serial_spans = traced_run("t-serial", force=True)
    parallel_outcomes, parallel_spans = traced_run("t-parallel", workers=2, force=True)

    for a, b in zip(serial_outcomes, parallel_outcomes):
        assert a.evaluation.accuracies == b.evaluation.accuracies

    # Every worker span must have merged back into the parent collector and
    # parent into the same name-paths the serial run produces.
    assert name_tree(build_tree(serial_spans)) == name_tree(build_tree(parallel_spans))
    assert any(s.scope.startswith("cell-") for s in parallel_spans)
    assert all(s.scope == "main" for s in serial_spans)
    # one runner.cell span per plan cell (methods + the whole-graph baseline)
    cells = [s for s in parallel_spans if s.name == "runner.cell"]
    assert len(cells) == len(serial_outcomes) == 3
