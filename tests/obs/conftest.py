"""Shared hygiene for the observability tests.

Tracing is process-global state (one installed tracer, two env carriers);
every test leaves with a clean slate so ordering never matters.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs.tracer import ENV_TRACE_FILE, ENV_TRACE_ID


@pytest.fixture(autouse=True)
def clean_tracing_state():
    yield
    obs.uninstall()
    os.environ.pop(ENV_TRACE_FILE, None)
    os.environ.pop(ENV_TRACE_ID, None)
