"""Tests for meta-path feature propagation and normalisation."""

import numpy as np

from repro.models.propagation import (
    SELF_FEATURE_KEY,
    propagate_metapath_features,
    row_normalize_features,
    standardize_features,
)


class TestPropagation:
    def test_contains_self_block(self, toy_graph):
        features = propagate_metapath_features(toy_graph, max_hops=2)
        assert SELF_FEATURE_KEY in features
        np.testing.assert_allclose(
            features[SELF_FEATURE_KEY], toy_graph.features["paper"]
        )

    def test_rows_match_target_count(self, toy_graph):
        features = propagate_metapath_features(toy_graph, max_hops=2)
        for block in features.values():
            assert block.shape[0] == toy_graph.num_nodes["paper"]

    def test_columns_match_source_type_dim(self, toy_graph):
        features = propagate_metapath_features(toy_graph, max_hops=1)
        assert features["paper-author"].shape[1] == toy_graph.features["author"].shape[1]
        assert features["paper-venue"].shape[1] == toy_graph.features["venue"].shape[1]

    def test_more_hops_more_blocks(self, toy_graph):
        one = propagate_metapath_features(toy_graph, max_hops=1)
        two = propagate_metapath_features(toy_graph, max_hops=2, max_paths=64)
        assert len(two) > len(one)

    def test_keys_depend_only_on_schema(self, toy_graph):
        sub = toy_graph.induced_subgraph({"paper": np.arange(10)})
        full_keys = set(propagate_metapath_features(toy_graph, max_hops=2))
        sub_keys = set(propagate_metapath_features(sub, max_hops=2))
        assert full_keys == sub_keys

    def test_exclude_self(self, toy_graph):
        features = propagate_metapath_features(toy_graph, max_hops=1, include_self=False)
        assert SELF_FEATURE_KEY not in features

    def test_aggregation_is_convex_combination(self, toy_graph):
        """Row-normalised 1-hop aggregation stays within the source value range."""
        features = propagate_metapath_features(toy_graph, max_hops=1)
        block = features["paper-venue"]
        source = toy_graph.features["venue"]
        assert block.max() <= source.max() + 1e-9
        assert block.min() >= source.min() - 1e-9


class TestNormalization:
    def test_standardize_zero_mean(self, toy_graph):
        features = standardize_features(propagate_metapath_features(toy_graph, max_hops=1))
        for block in features.values():
            np.testing.assert_allclose(block.mean(axis=0), 0.0, atol=1e-8)

    def test_standardize_handles_constant_columns(self):
        features = {"x": np.ones((5, 3))}
        result = standardize_features(features)
        assert np.isfinite(result["x"]).all()

    def test_row_normalize_unit_norm(self, toy_graph):
        features = row_normalize_features(propagate_metapath_features(toy_graph, max_hops=1))
        for block in features.values():
            norms = np.linalg.norm(block, axis=1)
            nonzero = norms > 1e-9
            np.testing.assert_allclose(norms[nonzero], 1.0)

    def test_row_normalize_keeps_zero_rows(self):
        result = row_normalize_features({"x": np.zeros((3, 4))})
        np.testing.assert_allclose(result["x"], 0.0)

    def test_row_normalize_mixed_zero_rows_no_nan(self):
        """Isolated nodes (e.g. after a streaming delta removal) have all-zero
        propagated features: those rows must stay exactly zero — never NaN —
        while the other rows are normalised to unit norm."""
        block = np.array([[3.0, 4.0], [0.0, 0.0], [0.0, 5.0]])
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = row_normalize_features({"x": block})["x"]
        assert np.isfinite(result).all()
        np.testing.assert_allclose(result[1], 0.0)
        np.testing.assert_allclose(np.linalg.norm(result[[0, 2]], axis=1), 1.0)

    def test_row_normalize_after_streaming_isolation(self, toy_graph):
        """Tombstoning every edge of a node yields zero propagated rows; the
        normalised features must stay finite end to end."""
        from repro.streaming import DeltaApplier, GraphDelta

        graph = toy_graph.copy()
        target = graph.schema.target_type
        victim = int(graph.splits.train[0])
        DeltaApplier().apply(
            graph, GraphDelta(remove_nodes={target: np.array([victim])})
        )
        features = row_normalize_features(
            propagate_metapath_features(graph, max_hops=1)
        )
        for block in features.values():
            assert np.isfinite(block).all()
            np.testing.assert_allclose(block[victim], 0.0)

    def test_row_normalize_graph_size_invariant(self, toy_graph):
        """The same node gets the same normalised self-features regardless of
        which other nodes are present — the key transferability property."""
        sub = toy_graph.induced_subgraph(
            {t: np.arange(toy_graph.num_nodes[t]) for t in toy_graph.schema.node_types}
        )
        full = row_normalize_features(propagate_metapath_features(toy_graph, max_hops=1))
        again = row_normalize_features(propagate_metapath_features(sub, max_hops=1))
        np.testing.assert_allclose(full[SELF_FEATURE_KEY], again[SELF_FEATURE_KEY])
