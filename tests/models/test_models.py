"""Tests for the HGNN classifiers (shared API + every architecture)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    HAN,
    HGB,
    HGT,
    MODEL_REGISTRY,
    RGCN,
    HeteroSGC,
    SeHGNN,
    get_model,
)
from repro.models.base import HGNNConfig
from repro.models.propagation import propagate_metapath_features, row_normalize_features

FAST = dict(hidden_dim=16, epochs=40, patience=10, max_hops=2, max_paths=8)


class TestRegistry:
    def test_all_models_registered(self):
        assert set(MODEL_REGISTRY) == {"heterosgc", "sehgnn", "han", "hgt", "hgb", "rgcn"}

    def test_get_model_case_insensitive(self):
        assert isinstance(get_model("SeHGNN"), SeHGNN)

    def test_get_model_unknown(self):
        with pytest.raises(KeyError):
            get_model("gpt")

    def test_config_overrides(self):
        model = SeHGNN(hidden_dim=7)
        assert model.config.hidden_dim == 7

    def test_config_object(self):
        model = SeHGNN(HGNNConfig(hidden_dim=5), epochs=3)
        assert model.config.hidden_dim == 5 and model.config.epochs == 3


@pytest.mark.parametrize("model_cls", [HeteroSGC, SeHGNN, HAN, HGT, HGB, RGCN])
class TestEveryArchitecture:
    def test_fit_predict_evaluate(self, toy_graph, model_cls):
        model = model_cls(**FAST)
        result = model.fit(toy_graph)
        assert result.epochs_run >= 1
        predictions = model.predict(toy_graph)
        assert predictions.shape == (toy_graph.num_nodes["paper"],)
        accuracy = model.evaluate(toy_graph)
        assert 0.0 <= accuracy <= 1.0

    def test_learns_better_than_chance(self, toy_graph, model_cls):
        model = model_cls(**{**FAST, "epochs": 100, "patience": 30})
        model.fit(toy_graph)
        # toy graph has 2 balanced classes and strong signal
        assert model.evaluate(toy_graph) > 0.6

    def test_has_parameters_after_fit(self, toy_graph, model_cls):
        model = model_cls(**FAST)
        assert model.num_parameters == 0
        model.fit(toy_graph)
        assert model.num_parameters > 0

    def test_predict_before_fit_raises(self, toy_graph, model_cls):
        with pytest.raises(ModelError):
            model_cls(**FAST).predict(toy_graph)


class TestCrossGraphProtocol:
    def test_train_on_subgraph_evaluate_on_full(self, toy_graph):
        sub = toy_graph.induced_subgraph(
            {"paper": toy_graph.splits.train, "author": np.arange(15)}
        )
        model = SeHGNN(**FAST)
        model.fit(sub)
        accuracy = model.evaluate(toy_graph)
        assert accuracy > 0.5

    def test_evaluate_metrics_keys(self, toy_graph):
        model = HeteroSGC(**FAST)
        model.fit(toy_graph)
        metrics = model.evaluate_metrics(toy_graph)
        assert {"accuracy", "micro_f1", "macro_f1"} <= set(metrics)
        assert metrics["micro_f1"] == pytest.approx(metrics["accuracy"])

    def test_evaluate_custom_indices(self, toy_graph):
        model = HeteroSGC(**FAST)
        model.fit(toy_graph)
        accuracy = model.evaluate(toy_graph, indices=toy_graph.splits.train)
        assert accuracy > 0.5

    def test_empty_evaluation_split_rejected(self, toy_graph):
        model = HeteroSGC(**FAST)
        model.fit(toy_graph)
        with pytest.raises(ModelError):
            model.evaluate(toy_graph, indices=np.array([], dtype=int))

    def test_empty_train_split_rejected(self, toy_graph):
        broken = toy_graph.induced_subgraph({"paper": toy_graph.splits.test[:5]})
        # all kept papers are test nodes, so the train split is empty
        model = HeteroSGC(**FAST)
        with pytest.raises(ModelError):
            model.fit(broken)


class TestFitFromFeatures:
    def _features(self, toy_graph):
        return row_normalize_features(
            propagate_metapath_features(toy_graph, max_hops=2, max_paths=8)
        )

    def test_roundtrip(self, toy_graph):
        features = self._features(toy_graph)
        labels = toy_graph.labels
        model = SeHGNN(**FAST)
        model.fit_from_features(features, labels, 2, train_idx=toy_graph.splits.train)
        accuracy = model.evaluate(toy_graph)
        assert accuracy > 0.6

    def test_empty_features_rejected(self, toy_graph):
        with pytest.raises(ModelError):
            SeHGNN(**FAST).fit_from_features({}, np.zeros(3, int), 2)

    def test_dimension_mismatch_at_predict(self, toy_graph):
        features = self._features(toy_graph)
        bad = {key: block[:, :2] for key, block in features.items()}
        model = SeHGNN(**FAST)
        model.fit_from_features(bad, toy_graph.labels, 2)
        with pytest.raises(ModelError):
            model.predict(toy_graph)


class TestArchitectureDifferences:
    def test_hgb_uses_only_short_paths(self, toy_graph):
        model = HGB(**FAST)
        model.fit(toy_graph)
        assert all(key.count("-") <= 1 for key in model._feature_keys)

    def test_sehgnn_uses_long_paths(self, toy_graph):
        model = SeHGNN(**FAST)
        model.fit(toy_graph)
        assert any(key.count("-") > 1 for key in model._feature_keys)

    def test_models_give_different_predictions(self, toy_graph):
        simple = HeteroSGC(**FAST)
        strong = SeHGNN(**FAST)
        simple.fit(toy_graph)
        strong.fit(toy_graph)
        assert simple.num_parameters != strong.num_parameters
