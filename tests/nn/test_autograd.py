"""Gradient-correctness tests for the autograd engine.

Every operation is checked against a central-difference numerical gradient.
"""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, concat, is_grad_enabled, no_grad, stack


def numerical_gradient(func, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``func`` at ``value``."""
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(value)
        flat[i] = original - eps
        minus = func(value)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-4):
    rng = np.random.default_rng(seed)
    value = rng.standard_normal(shape)
    tensor = Tensor(value.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad

    def scalar(v):
        return build_loss(Tensor(v)).item()

    numeric = numerical_gradient(scalar, value.copy())
    assert analytic is not None
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-3)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 3.0).sum(), (3, 4))

    def test_mul(self):
        other = np.arange(12).reshape(3, 4) * 0.1
        check_gradient(lambda t: (t * other).sum(), (3, 4))

    def test_sub_and_neg(self):
        check_gradient(lambda t: (5.0 - t).sum(), (2, 3))

    def test_div(self):
        other = np.arange(1, 7).reshape(2, 3).astype(float)
        check_gradient(lambda t: (t / other).sum(), (2, 3))

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), (2, 2))

    def test_relu(self):
        check_gradient(lambda t: t.relu().sum(), (4, 4), seed=3)

    def test_leaky_relu(self):
        check_gradient(lambda t: t.leaky_relu(0.1).sum(), (4, 4), seed=3)

    def test_tanh(self):
        check_gradient(lambda t: (t.tanh() * t.tanh()).sum(), (3, 3))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (3, 3))

    def test_exp(self):
        check_gradient(lambda t: t.exp().sum(), (2, 3))

    def test_log(self):
        rng = np.random.default_rng(0)
        value = rng.random((3, 3)) + 0.5
        tensor = Tensor(value.copy(), requires_grad=True)
        tensor_loss = tensor.log().sum()
        tensor_loss.backward()
        np.testing.assert_allclose(tensor.grad, 1.0 / value, atol=1e-8)


class TestMatmulAndReductions:
    def test_matmul_left(self):
        other = np.random.default_rng(1).standard_normal((4, 2))
        check_gradient(lambda t: (t @ other).sum(), (3, 4))

    def test_matmul_right(self):
        other = np.random.default_rng(1).standard_normal((5, 3))
        check_gradient(lambda t: (Tensor(other) @ t).sum(), (3, 2))

    def test_matmul_sparse(self):
        import scipy.sparse as sp

        matrix = sp.random(4, 3, density=0.5, random_state=0, format="csr")
        check_gradient(lambda t: t.matmul_sparse(matrix).sum(), (3, 2))

    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), (3, 4))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose(self):
        other = np.random.default_rng(2).standard_normal((2, 3))
        check_gradient(lambda t: (t.T * other).sum(), (3, 2))

    def test_take_rows(self):
        indices = np.array([0, 2, 2, 1])
        check_gradient(lambda t: (t.take_rows(indices) ** 2).sum(), (3, 4))


class TestSoftmaxFamily:
    def test_softmax_gradient(self):
        weights = np.random.default_rng(0).standard_normal((3, 4))
        check_gradient(lambda t: (t.softmax(axis=-1) * weights).sum(), (3, 4))

    def test_log_softmax_gradient(self):
        weights = np.random.default_rng(0).standard_normal((3, 4))
        check_gradient(lambda t: (t.log_softmax(axis=-1) * weights).sum(), (3, 4))

    def test_softmax_rows_sum_to_one(self):
        probs = Tensor(np.random.default_rng(0).standard_normal((5, 3))).softmax()
        np.testing.assert_allclose(probs.numpy().sum(axis=1), 1.0)


class TestStructuralOps:
    def test_concat_gradient(self):
        rng = np.random.default_rng(0)
        a_val, b_val = rng.standard_normal((3, 2)), rng.standard_normal((3, 4))
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        loss = (concat([a, b], axis=-1) ** 2).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * a_val, atol=1e-8)
        np.testing.assert_allclose(b.grad, 2 * b_val, atol=1e-8)

    def test_stack_gradient(self):
        rng = np.random.default_rng(0)
        a_val, b_val = rng.standard_normal((3, 2)), rng.standard_normal((3, 2))
        a = Tensor(a_val.copy(), requires_grad=True)
        b = Tensor(b_val.copy(), requires_grad=True)
        loss = stack([a, b], axis=0).mean(axis=0).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 0.5 * np.ones_like(a_val))
        np.testing.assert_allclose(b.grad, 0.5 * np.ones_like(b_val))

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            concat([])

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            stack([])


class TestDropout:
    def test_eval_mode_is_identity(self):
        tensor = Tensor(np.ones((4, 4)))
        out = tensor.dropout(0.5, np.random.default_rng(0), training=False)
        np.testing.assert_allclose(out.numpy(), 1.0)

    def test_training_scales_surviving_entries(self):
        tensor = Tensor(np.ones((100, 100)))
        out = tensor.dropout(0.5, np.random.default_rng(0), training=True).numpy()
        assert set(np.unique(out)) <= {0.0, 2.0}

    def test_rate_one_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)).dropout(1.0, np.random.default_rng(0))


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (tensor * 2).backward()

    def test_gradient_accumulates_over_reuse(self):
        tensor = Tensor(np.array([2.0]), requires_grad=True)
        loss = (tensor * 3.0 + tensor * 4.0).sum()
        loss.backward()
        np.testing.assert_allclose(tensor.grad, [7.0])

    def test_detach_stops_gradient(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        loss = (tensor.detach() * 5.0).sum()
        assert not loss.requires_grad

    def test_no_grad_context(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            result = (tensor * 2).sum()
        assert is_grad_enabled()
        assert not result.requires_grad

    def test_zero_grad(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        (tensor * 2).sum().backward()
        tensor.zero_grad()
        assert tensor.grad is None

    def test_broadcast_bias_gradient(self):
        bias = Tensor(np.zeros(4), requires_grad=True)
        data = Tensor(np.ones((5, 4)))
        loss = (data + bias).sum()
        loss.backward()
        np.testing.assert_allclose(bias.grad, 5.0 * np.ones(4))

    def test_item_and_shape(self):
        tensor = Tensor(np.ones((2, 3)))
        assert tensor.shape == (2, 3)
        assert Tensor(np.array(2.5)).item() == 2.5

    def test_deep_chain_backward(self):
        tensor = Tensor(np.ones((2, 2)) * 0.01, requires_grad=True)
        out = tensor
        for _ in range(200):
            out = out + tensor * 0.001
        out.sum().backward()
        assert tensor.grad is not None and np.isfinite(tensor.grad).all()
