"""Tests for the full-batch trainer."""

import numpy as np
import pytest

from repro.nn import MLP, Tensor, TrainConfig, Trainer
from repro.nn.module import Module
from repro.nn.layers import Linear


class DictInputModel(Module):
    """Minimal model consuming a dict of tensors (like the HGNN modules)."""

    def __init__(self, dim: int, classes: int) -> None:
        super().__init__()
        self.linear = Linear(dim, classes, rng=0)

    def forward(self, inputs):
        return self.linear(inputs["x"])


def make_problem(n=60, dim=5, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=n)
    centers = rng.standard_normal((classes, dim)) * 3
    features = centers[labels] + 0.3 * rng.standard_normal((n, dim))
    return features, labels


class TestTrainer:
    def test_learns_separable_problem(self):
        features, labels = make_problem()
        model = DictInputModel(5, 3)
        trainer = Trainer(model, TrainConfig(epochs=100, patience=20, lr=0.05))
        idx = np.arange(len(labels))
        result = trainer.fit({"x": Tensor(features)}, labels, idx[:40], idx[40:])
        assert result.best_val_accuracy > 0.8

    def test_early_stopping_bounded_epochs(self):
        features, labels = make_problem()
        model = DictInputModel(5, 3)
        trainer = Trainer(model, TrainConfig(epochs=500, patience=5, lr=0.05))
        idx = np.arange(len(labels))
        result = trainer.fit({"x": Tensor(features)}, labels, idx[:40], idx[40:])
        assert result.epochs_run <= 500
        assert result.best_epoch <= result.epochs_run

    def test_no_validation_split_keeps_training(self):
        """Without a validation split the monitor is the loss, so the best
        model is not the epoch-1 snapshot (regression test)."""
        features, labels = make_problem()
        model = DictInputModel(5, 3)
        trainer = Trainer(model, TrainConfig(epochs=60, patience=15, lr=0.05))
        idx = np.arange(len(labels))
        result = trainer.fit({"x": Tensor(features)}, labels, idx, None)
        assert result.best_epoch > 1

    def test_empty_train_split_rejected(self):
        model = DictInputModel(5, 3)
        trainer = Trainer(model)
        with pytest.raises(ValueError):
            trainer.fit({"x": Tensor(np.zeros((3, 5)))}, np.zeros(3, int), np.array([]), None)

    def test_predict_shape(self):
        features, labels = make_problem()
        model = DictInputModel(5, 3)
        trainer = Trainer(model, TrainConfig(epochs=30))
        trainer.fit({"x": Tensor(features)}, labels, np.arange(40), None)
        predictions = trainer.predict({"x": Tensor(features)})
        assert predictions.shape == (60,)
        assert predictions.min() >= 0 and predictions.max() < 3

    def test_history_recorded(self):
        features, labels = make_problem()
        model = DictInputModel(5, 3)
        trainer = Trainer(model, TrainConfig(epochs=10, patience=10))
        result = trainer.fit({"x": Tensor(features)}, labels, np.arange(40), np.arange(40, 60))
        assert len(result.history) == result.epochs_run
        assert {"epoch", "loss", "val_accuracy"} <= set(result.history[0])

    def test_train_seconds_positive(self):
        features, labels = make_problem()
        model = DictInputModel(5, 3)
        result = Trainer(model, TrainConfig(epochs=5)).fit(
            {"x": Tensor(features)}, labels, np.arange(40), None
        )
        assert result.train_seconds > 0

    def test_works_with_mlp_on_plain_tensor(self):
        features, labels = make_problem()

        class PlainModel(Module):
            def __init__(self):
                super().__init__()
                self.mlp = MLP(5, 16, 3, dropout=0.1, rng=0)

            def forward(self, inputs):
                return self.mlp(inputs)

        trainer = Trainer(PlainModel(), TrainConfig(epochs=80, lr=0.05))
        result = trainer.fit(Tensor(features), labels, np.arange(40), np.arange(40, 60))
        assert result.best_val_accuracy > 0.7
