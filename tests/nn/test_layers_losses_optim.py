"""Tests for layers, losses, optimisers, metrics and the Module container."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    Adam,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tensor,
    accuracy,
    confusion_matrix,
    cross_entropy,
    gradient_matching_distance,
    macro_f1,
    micro_f1,
    mse_loss,
)
from repro.nn.init import kaiming_uniform, xavier_normal, xavier_uniform, zeros


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_parameters_registered(self):
        layer = Linear(4, 3, rng=0)
        assert len(layer.parameters()) == 2

    def test_gradient_flow(self):
        layer = Linear(4, 2, rng=0)
        out = layer(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestOtherLayers:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([[-1.0, 2.0]])))
        np.testing.assert_allclose(out.numpy(), [[0.0, 2.0]])

    def test_dropout_eval_identity(self):
        drop = Dropout(0.9, rng=0)
        drop.eval()
        data = np.ones((10, 10))
        np.testing.assert_allclose(drop(Tensor(data)).numpy(), data)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_layernorm_normalises(self):
        norm = LayerNorm(8)
        out = norm(Tensor(np.random.default_rng(0).standard_normal((4, 8)) * 10))
        values = out.numpy()
        np.testing.assert_allclose(values.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(values.std(axis=-1), 1.0, atol=1e-2)

    def test_mlp_shape(self):
        mlp = MLP(6, 8, 3, num_layers=2, dropout=0.0, rng=0)
        assert mlp(Tensor(np.ones((5, 6)))).shape == (5, 3)

    def test_mlp_single_layer(self):
        mlp = MLP(6, 8, 3, num_layers=1, dropout=0.0, rng=0)
        assert mlp(Tensor(np.ones((2, 6)))).shape == (2, 3)

    def test_mlp_invalid_layers(self):
        with pytest.raises(ValueError):
            MLP(4, 4, 2, num_layers=0)

    def test_sequential(self):
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        assert model(Tensor(np.ones((3, 4)))).shape == (3, 2)
        assert len(model) == 3


class TestModuleContainer:
    def test_named_parameters_recursive(self):
        model = Sequential(Linear(2, 2, rng=0), Linear(2, 2, rng=1))
        names = [name for name, _ in model.named_parameters()]
        assert any("layer_0" in n for n in names)
        assert any("layer_1" in n for n in names)

    def test_num_parameters(self):
        layer = Linear(3, 4, rng=0)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self):
        layer = Linear(3, 4, rng=0)
        state = layer.state_dict()
        layer.weight.data[:] = 0.0
        layer.load_state_dict(state)
        assert not np.allclose(layer.weight.data, 0.0)

    def test_load_state_dict_missing_key(self):
        layer = Linear(3, 4, rng=0)
        with pytest.raises(KeyError):
            layer.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self):
        layer = Linear(3, 4, rng=0)
        state = {name: np.zeros((1, 1)) for name, _ in layer.named_parameters()}
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_strict_errors_are_statedicterror(self):
        from repro.errors import ReproError, StateDictError

        layer = Linear(3, 4, rng=0)
        with pytest.raises(StateDictError):
            layer.load_state_dict({})
        bad_shape = {name: np.zeros((1, 1)) for name, _ in layer.named_parameters()}
        with pytest.raises(StateDictError):
            layer.load_state_dict(bad_shape)
        assert issubclass(StateDictError, ReproError)
        assert issubclass(StateDictError, KeyError)
        assert issubclass(StateDictError, ValueError)

    def test_unexpected_key_rejected_when_strict(self):
        from repro.errors import StateDictError

        layer = Linear(3, 4, rng=0)
        state = layer.state_dict()
        state["phantom"] = np.zeros(3)
        with pytest.raises(StateDictError, match="phantom"):
            layer.load_state_dict(state)
        # non-strict loading ignores the extra key
        layer.load_state_dict(state, strict=False)

    def test_error_names_every_missing_key(self):
        from repro.errors import StateDictError

        layer = Linear(3, 4, rng=0)
        with pytest.raises(StateDictError) as excinfo:
            layer.load_state_dict({})
        message = str(excinfo.value)
        assert "weight" in message and "bias" in message

    def test_failed_load_leaves_parameters_untouched(self):
        from repro.errors import StateDictError

        layer = Linear(3, 4, rng=0)
        before = layer.state_dict()
        bad = layer.state_dict()
        bad["bias"] = np.zeros((7,))  # wrong shape on the *second* key
        bad["weight"] = np.zeros((3, 4))
        with pytest.raises(StateDictError):
            layer.load_state_dict(bad)
        # all-or-nothing: weight must not have been overwritten
        for name, value in before.items():
            assert np.array_equal(layer.state_dict()[name], value)

    def test_loaded_values_are_copies(self):
        layer = Linear(3, 4, rng=0)
        state = layer.state_dict()
        layer.load_state_dict(state)
        state["weight"][:] = 99.0
        assert not np.any(layer.weight.data == 99.0)

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Dropout(0.5))
        model.eval()
        assert all(not child.training for child in model)

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=0)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(None)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        labels = np.array([0, 1])
        loss = cross_entropy(Tensor(logits), labels).item()
        manual = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert abs(loss - manual) < 1e-8

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 1]))
        loss.backward()
        # gradient should be negative at the true class entries
        assert logits.grad[0, 0] < 0 and logits.grad[1, 1] < 0

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_mse_loss(self):
        loss = mse_loss(Tensor(np.array([1.0, 3.0])), np.array([1.0, 1.0]))
        assert abs(loss.item() - 2.0) < 1e-10

    def test_gradient_matching_distance_zero_for_identical(self):
        grads = [np.ones((2, 2)), np.ones(3)]
        distance = gradient_matching_distance(grads, [g.copy() for g in grads]).item()
        assert abs(distance) < 1e-6

    def test_gradient_matching_distance_positive_for_opposite(self):
        distance = gradient_matching_distance([np.ones(4)], [-np.ones(4)]).item()
        assert distance > 1.9

    def test_gradient_matching_length_mismatch(self):
        with pytest.raises(ValueError):
            gradient_matching_distance([np.ones(2)], [])


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        param = Tensor(np.zeros(2), requires_grad=True)
        return target, param

    def test_sgd_converges(self):
        target, param = self._quadratic_problem()
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((param - target) * (param - target)).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges(self):
        target, param = self._quadratic_problem()
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss = ((param - target) * (param - target)).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_sgd_momentum_and_weight_decay_run(self):
        param = Tensor(np.ones(3), requires_grad=True)
        optimizer = SGD([param], lr=0.01, momentum=0.9, weight_decay=0.1)
        (param * param).sum().backward()
        optimizer.step()
        assert np.all(param.data < 1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.ones(1), requires_grad=True)], lr=0.0)

    def test_step_skips_params_without_grad(self):
        param = Tensor(np.ones(2), requires_grad=True)
        before = param.data.copy()
        Adam([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, before)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 0, 1]), 2)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1 and matrix[1, 1] == 1

    def test_micro_f1_equals_accuracy(self):
        preds = np.array([0, 1, 2, 2])
        labels = np.array([0, 1, 1, 2])
        assert micro_f1(preds, labels, 3) == pytest.approx(accuracy(preds, labels))

    def test_macro_f1_perfect(self):
        preds = np.array([0, 1, 2])
        assert macro_f1(preds, preds, 3) == pytest.approx(1.0)

    def test_macro_f1_range(self):
        preds = np.array([0, 0, 0, 0])
        labels = np.array([0, 1, 0, 1])
        assert 0.0 <= macro_f1(preds, labels, 2) <= 1.0

    def test_macro_f1_absent_class_counts_as_zero(self):
        """A class absent from both predictions and labels (possible on small
        condensed label sets) contributes per-class F1 = 0 — the mean is over
        all ``num_classes`` classes, never a shrunken subset, and never NaN."""
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 1, 1])
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            score = macro_f1(preds, labels, 3)
        assert score == pytest.approx(2.0 / 3.0)  # classes 0,1 perfect; class 2 = 0
        assert np.isfinite(macro_f1(preds, labels, 5))

    def test_macro_f1_predicted_only_class_still_counts(self):
        preds = np.array([0, 2])
        labels = np.array([0, 0])
        score = macro_f1(preds, labels, 3)
        # class 0: p=1, r=1/2 -> f1=2/3; class 1 absent -> 0; class 2: p=0 -> 0
        assert score == pytest.approx((2.0 / 3.0) / 3.0)


class TestInitializers:
    def test_xavier_uniform_bounds(self):
        weights = xavier_uniform(10, 10, 0)
        limit = np.sqrt(6.0 / 20)
        assert np.all(np.abs(weights) <= limit)

    def test_xavier_normal_shape(self):
        assert xavier_normal(4, 6, 0).shape == (4, 6)

    def test_kaiming_shape(self):
        assert kaiming_uniform(4, 6, 0).shape == (4, 6)

    def test_zeros(self):
        assert np.all(zeros(3, 2) == 0.0)

    def test_deterministic_with_seed(self):
        np.testing.assert_allclose(xavier_uniform(3, 3, 7), xavier_uniform(3, 3, 7))
