"""End-to-end integration tests covering the full paper protocol."""

import numpy as np
import pytest

from repro.analysis import coverage_report
from repro.baselines import HGCond, HerdingHG, RandomHG
from repro.core import FreeHGC
from repro.evaluation import evaluate_condenser, make_model_factory, whole_graph_reference
from repro.hetero import load_graph, save_graph
from repro.models import SeHGNN

FAST_MODEL = dict(hidden_dim=24, epochs=50, max_hops=2)


class TestPaperProtocolOnACM:
    """Condense → train SeHGNN on the condensed graph → test on the full graph."""

    def test_freehgc_beats_random_selection(self, tiny_acm):
        factory = make_model_factory("sehgnn", **FAST_MODEL)
        free = evaluate_condenser(
            tiny_acm, FreeHGC(max_hops=2, max_paths=8), 0.15, factory, seeds=2
        )
        random = evaluate_condenser(tiny_acm, RandomHG(), 0.15, factory, seeds=2)
        assert free.mean_accuracy >= random.mean_accuracy

    def test_accuracy_increases_with_ratio(self, tiny_acm):
        """The flexible-condensation-ratio property (Fig. 7)."""
        factory = make_model_factory("sehgnn", **FAST_MODEL)
        condenser = FreeHGC(max_hops=2, max_paths=8)
        low = evaluate_condenser(tiny_acm, condenser, 0.05, factory, seeds=2)
        high = evaluate_condenser(tiny_acm, condenser, 0.4, factory, seeds=2)
        assert high.mean_accuracy >= low.mean_accuracy - 0.05

    def test_high_ratio_approaches_whole_graph(self, tiny_acm):
        factory = make_model_factory("sehgnn", **FAST_MODEL)
        condensed = evaluate_condenser(
            tiny_acm, FreeHGC(max_hops=2, max_paths=8), 0.5, factory, seeds=1
        )
        whole = whole_graph_reference(tiny_acm, factory, seeds=1)
        assert condensed.mean_accuracy >= 0.75 * whole.mean_accuracy

    def test_freehgc_is_faster_than_hgcond(self, tiny_acm):
        factory = make_model_factory("heterosgc", **FAST_MODEL)
        free = evaluate_condenser(
            tiny_acm, FreeHGC(max_hops=2, max_paths=8), 0.1, factory, seeds=1
        )
        hgcond = evaluate_condenser(
            tiny_acm,
            HGCond(outer_iterations=20, inner_steps=6, ops_length=4),
            0.1,
            factory,
            seeds=1,
        )
        assert free.condense_seconds < hgcond.condense_seconds

    def test_storage_reduction(self, tiny_acm):
        condensed = FreeHGC(max_hops=2, max_paths=8).condense(tiny_acm, 0.1, seed=0)
        assert condensed.storage_bytes() < 0.5 * tiny_acm.storage_bytes()


class TestGeneralizationAcrossModels:
    def test_condensed_graph_trains_multiple_hgnns(self, tiny_acm):
        """Table IV behaviour: the same condensed graph works for any HGNN."""
        from repro.models import HAN, HGB, HGT

        condensed = FreeHGC(max_hops=2, max_paths=8).condense(tiny_acm, 0.2, seed=0)
        for model_cls in (HGB, HGT, HAN, SeHGNN):
            model = model_cls(**FAST_MODEL)
            model.fit(condensed)
            assert model.evaluate(tiny_acm) > 1.0 / tiny_acm.num_classes

    def test_freehgc_generalizes_better_than_herding(self, tiny_acm):
        from repro.models import HGT

        herding_graph = HerdingHG(max_hops=2).condense(tiny_acm, 0.2, seed=0)
        freehgc_graph = FreeHGC(max_hops=2, max_paths=8).condense(tiny_acm, 0.2, seed=0)
        accuracies = {}
        for name, graph in (("herding", herding_graph), ("freehgc", freehgc_graph)):
            model = HGT(**FAST_MODEL)
            model.fit(graph)
            accuracies[name] = model.evaluate(tiny_acm)
        assert accuracies["freehgc"] >= accuracies["herding"] - 0.05


class TestDBLPHierarchy:
    def test_structure2_pipeline(self, tiny_dblp):
        """DBLP exercises the father-selection + leaf-synthesis path."""
        condensed = FreeHGC(max_hops=2, max_paths=8).condense(tiny_dblp, 0.2, seed=0)
        condensed.validate()
        model = SeHGNN(**FAST_MODEL)
        model.fit(condensed)
        accuracy = model.evaluate(tiny_dblp)
        assert accuracy > 1.0 / tiny_dblp.num_classes

    def test_condensed_graph_roundtrips_through_disk(self, tiny_dblp, tmp_path):
        condensed = FreeHGC(max_hops=2, max_paths=8).condense(tiny_dblp, 0.2, seed=0)
        loaded = load_graph(save_graph(condensed, tmp_path / "condensed.npz"))
        model = SeHGNN(**FAST_MODEL)
        model.fit(loaded)
        assert model.evaluate(tiny_dblp) > 1.0 / tiny_dblp.num_classes


class TestInterpretability:
    def test_fig9_coverage_comparison(self, tiny_acm):
        """FreeHGC's selected nodes activate at least as many nodes as Herding's."""
        budget_ratio = 0.1
        condenser = FreeHGC(max_hops=2, max_paths=8)
        condenser.condense(tiny_acm, budget_ratio, seed=0)
        freehgc_selected = condenser.last_target_selection.selected

        herding = HerdingHG(max_hops=2)
        herding_graph = herding.condense(tiny_acm, budget_ratio, seed=0)
        del herding_graph
        # herding selection of the same size, taken from the train pool
        from repro.baselines.embeddings import target_embeddings
        from repro.baselines.herding import herding_select

        embeddings = target_embeddings(tiny_acm, max_hops=2)
        pool = tiny_acm.splits.train
        herding_selected = pool[herding_select(embeddings[pool], freehgc_selected.size)]

        free_report = coverage_report(tiny_acm, freehgc_selected, method="FreeHGC")
        herd_report = coverage_report(tiny_acm, herding_selected, method="Herding")
        assert free_report.total_captured >= herd_report.total_captured


class TestErrorPaths:
    def test_ratio_of_one_rejected(self, tiny_acm):
        with pytest.raises(Exception):
            FreeHGC().condense(tiny_acm, 1.0)

    def test_condensed_graph_has_no_test_leakage(self, tiny_acm):
        condenser = FreeHGC(max_hops=2, max_paths=8)
        condenser.condense(tiny_acm, 0.2, seed=0)
        selected = set(condenser.last_target_selection.selected.tolist())
        test_nodes = set(tiny_acm.splits.test.tolist())
        assert not (selected & test_nodes)
