"""Durable GraphDelta write-ahead log: framing, fsync commit, torn-tail repair."""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np
import pytest

from repro.errors import WALError
from repro.serving.replicated.wal import DeltaWAL, plan_replay, read_wal
from repro.streaming.delta import GraphDelta


def make_delta(step: int = 1) -> GraphDelta:
    return GraphDelta(
        add_edges={"paper-author": (np.array([0, 1]), np.array([2, 3]))},
        remove_edges={"paper-author": (np.array([4]), np.array([5]))},
        step=step,
    )


def frame(payload: dict) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    return struct.pack("<II", len(body), zlib.crc32(body)) + body


class TestAppendAndRead:
    def test_round_trip_preserves_order_and_payloads(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path) as wal:
            wal.append_genesis({"dataset": "acm", "scale": 0.1, "seed": 3})
            for step in (1, 2, 3):
                wal.append_delta(make_delta(step))
        records = read_wal(path)
        assert [r.kind for r in records] == ["genesis", "delta", "delta", "delta"]
        assert records[0].payload["config"]["dataset"] == "acm"
        replayed = records[2].delta()
        original = make_delta(2)
        assert replayed.step == 2
        for name, (src, dst) in original.add_edges.items():
            got_src, got_dst = replayed.add_edges[name]
            assert np.array_equal(got_src, src) and np.array_equal(got_dst, dst)

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path) as wal:
            wal.append_genesis({"seed": 0})
        wal, records = DeltaWAL.open(path)
        with wal:
            assert len(records) == 1
            wal.append_delta(make_delta(9))
        assert [r.kind for r in read_wal(path)] == ["genesis", "delta"]

    def test_unknown_kind_refused(self, tmp_path):
        with DeltaWAL(tmp_path / "wal.log") as wal:
            with pytest.raises(WALError):
                wal.append({"kind": "mystery"})

    def test_delta_accessor_rejects_non_delta(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path) as wal:
            wal.append_genesis({})
        with pytest.raises(WALError):
            read_wal(path)[0].delta()


class TestTornTailRecovery:
    def write_good_log(self, path) -> list[bytes]:
        frames = [
            frame({"kind": "genesis", "config": {"seed": 0}}),
            frame({"kind": "delta", "delta": make_delta(1).to_payload()}),
            frame({"kind": "delta", "delta": make_delta(2).to_payload()}),
        ]
        path.write_bytes(b"".join(frames))
        return frames

    def test_truncated_header_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        good = b"".join(self.write_good_log(path))
        path.write_bytes(good + b"\x07\x00")
        with pytest.raises(WALError):
            read_wal(path)
        records = read_wal(path, repair=True)
        assert len(records) == 3
        assert path.stat().st_size == len(good)

    def test_truncated_body_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        good = b"".join(self.write_good_log(path))
        partial = frame({"kind": "delta", "delta": make_delta(3).to_payload()})
        path.write_bytes(good + partial[: len(partial) - 5])
        records = read_wal(path, repair=True)
        assert [r.kind for r in records] == ["genesis", "delta", "delta"]
        # repaired in place: a second read needs no repair
        assert len(read_wal(path)) == 3

    def test_bad_crc_on_final_record_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        good = b"".join(self.write_good_log(path))
        bad = bytearray(frame({"kind": "delta", "delta": make_delta(3).to_payload()}))
        bad[-1] ^= 0xFF  # flip a payload byte: CRC no longer matches
        path.write_bytes(good + bytes(bad))
        records = read_wal(path, repair=True)
        assert len(records) == 3
        assert path.stat().st_size == len(good)

    def test_bad_crc_mid_log_is_corruption_not_tear(self, tmp_path):
        path = tmp_path / "wal.log"
        frames = self.write_good_log(path)
        corrupted = bytearray(b"".join(frames))
        # flip a byte inside the *second* frame's payload
        corrupted[len(frames[0]) + 12] ^= 0xFF
        path.write_bytes(bytes(corrupted))
        with pytest.raises(WALError):
            read_wal(path, repair=True)

    def test_absurd_length_field_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(struct.pack("<II", 2**31, 0) + b"xx")
        with pytest.raises(WALError):
            read_wal(path, repair=True)

    def test_open_repairs_and_appends_cleanly(self, tmp_path):
        path = tmp_path / "wal.log"
        good = b"".join(self.write_good_log(path))
        path.write_bytes(good + b"torn!")
        wal, records = DeltaWAL.open(path)
        with wal:
            assert len(records) == 3
            wal.append_delta(make_delta(3))
        assert [r.payload["delta"]["step"] for r in read_wal(path) if r.kind == "delta"] == [1, 2, 3]

    def test_empty_and_missing_logs(self, tmp_path):
        path = tmp_path / "wal.log"
        wal, records = DeltaWAL.open(path)  # missing: created fresh
        wal.close()
        assert records == []
        assert read_wal(path) == []


class TestPlanReplay:
    def test_no_snapshot_replays_everything_after_genesis(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path) as wal:
            wal.append_genesis({"dataset": "acm"})
            wal.append_delta(make_delta(1))
            wal.append_delta(make_delta(2))
        genesis, snapshot, deltas = plan_replay(read_wal(path), root=path.parent)
        assert genesis == {"dataset": "acm"}
        assert snapshot is None
        assert [d.step for d in deltas] == [1, 2]

    def test_snapshot_cuts_replay_to_suffix(self, tmp_path):
        path = tmp_path / "wal.log"
        (tmp_path / "snap-graph.npz").write_bytes(b"g")
        (tmp_path / "snap-bundle.npz").write_bytes(b"b")
        with DeltaWAL(path) as wal:
            wal.append_genesis({"dataset": "acm"})
            wal.append_delta(make_delta(1))
            wal.append_snapshot(
                step=1, version=2, graph_path="snap-graph.npz",
                bundle_path="snap-bundle.npz", deltas_applied=1,
            )
            wal.append_delta(make_delta(2))
            wal.append_delta(make_delta(3))
        genesis, snapshot, deltas = plan_replay(read_wal(path), root=tmp_path)
        assert snapshot is not None and snapshot.payload["version"] == 2
        assert [d.step for d in deltas] == [2, 3]

    def test_snapshot_with_missing_files_is_skipped(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path) as wal:
            wal.append_genesis({"dataset": "acm"})
            wal.append_delta(make_delta(1))
            wal.append_snapshot(
                step=1, version=2, graph_path="gone-graph.npz",
                bundle_path="gone-bundle.npz", deltas_applied=1,
            )
            wal.append_delta(make_delta(2))
        genesis, snapshot, deltas = plan_replay(read_wal(path), root=tmp_path)
        assert snapshot is None
        assert [d.step for d in deltas] == [1, 2]
