"""Bundle saves fsync file contents before the atomic rename.

Regression tests for real bugs reprolint's REP-U202 rule surfaced: both
bundle layouts renamed freshly-written files into place without forcing
their bytes to disk first, so a power loss right after the (durable,
``sync_dir``-ed) rename could atomically publish a truncated bundle.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serving.artifacts import ModelBundle, load_bundle, save_bundle


@pytest.fixture()
def bundle(toy_graph):
    graph, _ = toy_graph if isinstance(toy_graph, tuple) else (toy_graph, None)
    rng = np.random.default_rng(0)
    return ModelBundle(
        model_name="heterosgc",
        state={"hidden_dim": 8},
        weights={"w0": rng.standard_normal((4, 4)), "b0": rng.standard_normal(4)},
        condensed=graph,
        metadata={"dataset": "toy"},
    )


@pytest.fixture()
def fsync_log(monkeypatch):
    """Record the paths backing every os.fsync fd during a save."""
    real_fsync = os.fsync
    synced: list[str] = []

    def spy(fd: int) -> None:
        try:
            synced.append(os.readlink(f"/proc/self/fd/{fd}"))
        except OSError:
            synced.append("<unknown>")
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", spy)
    return synced


@pytest.mark.parametrize("layout", ["npz", "dir"])
def test_save_bundle_fsyncs_payload_before_rename(bundle, tmp_path, fsync_log, layout):
    target = tmp_path / ("bundle.npz" if layout == "npz" else "bundle.d")
    save_bundle(bundle, target, layout=layout)
    assert fsync_log, "save_bundle must fsync the written payload"
    if layout == "npz":
        # the staged temp archive is synced before os.replace publishes it
        assert any(".tmp" in path for path in fsync_log)
    else:
        # every staged array file plus header.json is synced
        assert any(path.endswith(".npy") for path in fsync_log)
        assert any(path.endswith("header.json") for path in fsync_log)


@pytest.mark.parametrize("layout", ["npz", "dir"])
def test_save_bundle_round_trips_after_fsync_change(bundle, tmp_path, layout):
    target = tmp_path / ("bundle.npz" if layout == "npz" else "bundle.d")
    save_bundle(bundle, target, layout=layout)
    loaded = load_bundle(target)
    assert loaded.model_name == bundle.model_name
    assert loaded.metadata == bundle.metadata
    for key, value in bundle.weights.items():
        np.testing.assert_array_equal(loaded.weights[key], value)
    # no stray temp staging left behind
    stray = [p for p in tmp_path.iterdir() if p.name.startswith(".")]
    assert stray == []
