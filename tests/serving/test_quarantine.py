"""Poison-delta quarantine: dead-letter sidecar, poison records, convergence.

The invariant under test is *crash-loop safety*: a delta whose replay
crashes the boot is dead-lettered and poisoned on the first boot
(``quarantined_now == 1``), and every later boot skips it for free
(``quarantined_now == 0``) — the tier converges instead of dying on the
same record forever.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.condenser import FreeHGC
from repro.datasets import load_acm
from repro.models.hetero_sgc import HeteroSGC
from repro.serving import ServingController
from repro.serving.replicated import recover_from_wal
from repro.serving.replicated.wal import (
    KIND_POISON,
    DeltaWAL,
    deadletter_path,
    plan_replay_records,
    read_deadletter,
    read_wal,
)
from repro.streaming import GraphDelta
from repro.utils import faults


@pytest.fixture(autouse=True)
def _clean_injector():
    faults.uninstall()
    yield
    faults.uninstall()


GENESIS = {"dataset": "acm", "scale": 0.1, "seed": 0}


def make_controller(graph=None):
    if graph is None:
        graph = load_acm(scale=0.1, seed=0)
    controller = ServingController(
        graph,
        lambda: HeteroSGC(hidden_dim=8, epochs=5, max_hops=2, seed=0),
        model_name="heterosgc",
        ratio=0.3,
        condenser=FreeHGC(max_hops=2),
        recondense_threshold=0.5,
        seed=0,
        cache_size=64,
    )
    return controller


def churn_delta(graph, step):
    coo = graph.adjacency["paper-term"].tocoo()
    lo = (step - 1) * 3
    return GraphDelta(
        remove_edges={"paper-term": (coo.row[lo : lo + 3], coo.col[lo : lo + 3])},
        step=step,
    )


def poison_delta(step):
    """A delta that *parses* fine but crashes when applied to the graph."""
    return GraphDelta(remove_edges={"nope": ([0], [1])}, step=step)


class TestDeadLetterSidecar:
    def test_quarantine_writes_sidecar_then_poison_record(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path, fsync=False) as wal:
            wal.append_genesis(GENESIS)
            wal.append_delta(poison_delta(1))
            victim = read_wal(path)[1]
            entry = wal.quarantine(
                victim, ValueError("boom at step 1"), reason="replay_crash"
            )
        assert entry["offset"] == victim.offset
        assert entry["reason"] == "replay_crash"
        assert entry["error"] == "ValueError: boom at step 1"
        assert entry["fingerprint"]
        assert entry["payload"]["delta"]["step"] == 1

        # One JSON line per quarantine, machine-readable for forensics.
        sidecar = deadletter_path(path)
        assert sidecar == path.with_name(path.name + ".deadletter")
        lines = sidecar.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0]) == entry
        assert read_deadletter(path) == [entry]

        # The WAL itself gained a poison record pointing at the victim.
        records = read_wal(path)
        assert [r.kind for r in records] == ["genesis", "delta", KIND_POISON]
        assert records[2].payload["target_offset"] == victim.offset
        assert records[2].payload["fingerprint"] == entry["fingerprint"]

    def test_replay_plan_skips_poisoned_records(self, tmp_path):
        path = tmp_path / "wal.log"
        graph = load_acm(scale=0.1, seed=0)
        with DeltaWAL(path, fsync=False) as wal:
            wal.append_genesis(GENESIS)
            wal.append_delta(churn_delta(graph, 1))
            wal.append_delta(poison_delta(2))
            victim = read_wal(path)[2]
            wal.quarantine(victim, ValueError("boom"), reason="replay_crash")
            wal.append_delta(churn_delta(graph, 3))
        records = read_wal(path)
        genesis, snapshot, deltas, poisoned = plan_replay_records(
            records, root=tmp_path
        )
        assert genesis is not None and snapshot is None
        assert poisoned == {victim.offset}
        assert [r.delta().step for r in deltas] == [1, 3]

    def test_empty_deadletter_reads_as_empty(self, tmp_path):
        assert read_deadletter(tmp_path / "absent.log") == []


class TestRecoveryConvergence:
    def test_poisoned_boot_converges_and_matches_clean_replay(self, tmp_path):
        """First boot quarantines the crasher; second boot is free; the
        recovered state equals a controller that never saw the poison."""
        wal_path = tmp_path / "wal.log"
        graph = load_acm(scale=0.1, seed=0)
        good1, bad, good2 = churn_delta(graph, 1), poison_delta(2), churn_delta(graph, 3)
        with DeltaWAL(wal_path, fsync=False) as wal:
            wal.append_genesis(GENESIS)
            wal.append_delta(good1)
            wal.append_delta(bad)  # bypasses commit-time validation on purpose
            wal.append_delta(good2)

        # Boot 1: replay trips on the poison, dead-letters it, and finishes.
        controller, wal, report = recover_from_wal(
            wal_path, root=tmp_path, make_controller=make_controller,
            genesis_config=GENESIS, fsync=False,
        )
        wal.close()
        assert report["mode"] == "genesis"
        assert report["deltas_replayed"] == 2
        assert report["quarantined"] == 1
        assert report["quarantined_now"] == 1
        entries = read_deadletter(wal_path)
        assert len(entries) == 1
        assert entries[0]["payload"]["delta"]["step"] == 2
        assert entries[0]["fingerprint"]

        # The survivor state is exactly "the good deltas, in order".
        mirror = make_controller()
        mirror.start()
        mirror.apply_delta(good1)
        mirror.apply_delta(good2)
        ids = np.arange(controller.session.num_targets)
        assert controller.version == mirror.version
        assert np.array_equal(
            controller.session.predict(ids), mirror.session.predict(ids)
        )

        # Boot 2: the poison record is skipped without any work or new
        # dead-letter lines — this is what breaks the crash loop.
        controller2, wal2, report2 = recover_from_wal(
            wal_path, root=tmp_path, make_controller=make_controller,
            genesis_config=GENESIS, fsync=False,
        )
        wal2.close()
        assert report2["quarantined"] == 1
        assert report2["quarantined_now"] == 0
        assert report2["deltas_replayed"] == 2
        assert len(read_deadletter(wal_path)) == 1
        assert controller2.version == controller.version
        assert np.array_equal(
            controller2.session.predict(ids), controller.session.predict(ids)
        )

    def test_poison_first_delta_still_boots(self, tmp_path):
        # Degenerate shape: the *only* delta is poison — recovery must land
        # on the genesis state rather than refusing to serve at all.
        wal_path = tmp_path / "wal.log"
        with DeltaWAL(wal_path, fsync=False) as wal:
            wal.append_genesis(GENESIS)
            wal.append_delta(poison_delta(1))
        controller, wal, report = recover_from_wal(
            wal_path, root=tmp_path, make_controller=make_controller,
            genesis_config=GENESIS, fsync=False,
        )
        wal.close()
        assert report["deltas_replayed"] == 0
        assert report["quarantined_now"] == 1
        assert controller.version == 1  # the freshly started genesis state
