"""Shared metrics board, Prometheus rendering, and the admission gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.obs.spans import SERVING_SPAN_SITES
from repro.serving.replicated.admission import AdmissionGate
from repro.serving.replicated.metrics import (
    BOARD_LAYOUT_VERSION,
    KNOWN_SITES,
    LATENCY_BUCKETS,
    SPAN_BUCKETS,
    MetricsBoard,
    render_prometheus,
)


class TestMetricsBoard:
    def test_create_attach_share_one_grid(self, tmp_path):
        path = tmp_path / "metrics.board"
        owner = MetricsBoard.create(path, slots=3)
        owner.slot(1).observe_request("predict")
        owner.slot(1).observe_request("predict")
        reader = MetricsBoard.attach(path)
        assert int(reader.column("requests__predict")[1]) == 2
        # writes through the attached mapping are visible to the owner
        reader.slot(2).observe_request("predict")
        assert int(owner.column("requests__predict")[2]) == 1

    def test_each_slot_owns_its_row(self, tmp_path):
        board = MetricsBoard.create(tmp_path / "m.board", slots=2)
        board.slot(0).observe_response("predict", 200, 0.001)
        board.slot(1).observe_response("predict", 500)
        assert int(board.column("responses_2xx__predict")[0]) == 1
        assert int(board.column("responses_2xx__predict")[1]) == 0
        assert int(board.column("responses_5xx__predict")[1]) == 1

    def test_attach_rejects_incompatible_layout(self, tmp_path):
        path = tmp_path / "m.board"
        MetricsBoard.create(path, slots=1)
        sidecar = path.parent / "m.board.json"
        current = f'"layout": {BOARD_LAYOUT_VERSION}'
        assert current in sidecar.read_text()
        sidecar.write_text(sidecar.read_text().replace(current, '"layout": 99'))
        with pytest.raises(ServingError):
            MetricsBoard.attach(path)

    def test_attach_missing_board_raises(self, tmp_path):
        with pytest.raises(ServingError):
            MetricsBoard.attach(tmp_path / "absent.board")

    def test_slot_out_of_range_raises(self):
        board = MetricsBoard.in_memory(slots=2)
        with pytest.raises(ServingError):
            board.slot(2)

    def test_latency_histogram_buckets(self):
        board = MetricsBoard.in_memory()
        slot = board.slot(0)
        slot.observe_response("predict", 200, seconds=LATENCY_BUCKETS[0] / 2)
        slot.observe_response("predict", 200, seconds=LATENCY_BUCKETS[-1] * 2)
        counts = [
            int(board.column(f"latency_bucket_{i}")[0])
            for i in range(len(LATENCY_BUCKETS) + 1)
        ]
        assert counts[0] == 1 and counts[-1] == 1 and sum(counts) == 2
        assert int(board.column("latency_count")[0]) == 2

    def test_429_counts_as_shed(self):
        board = MetricsBoard.in_memory()
        board.slot(0).observe_response("predict", 429)
        assert int(board.column("shed_total")[0]) == 1
        assert int(board.column("responses_4xx__predict")[0]) == 1

    def test_self_healing_counters(self):
        board = MetricsBoard.in_memory(slots=2)
        slot = board.slot(0)
        slot.observe_quarantine(2)
        slot.observe_canary_rejection()
        slot.observe_integrity_fallback()
        slot.set_crash_looping(3)
        assert int(board.column("quarantined_total")[0]) == 2
        assert int(board.column("canary_rejections_total")[0]) == 1
        assert int(board.column("integrity_fallbacks_total")[0]) == 1
        assert int(board.column("replica_crash_loops")[0]) == 3
        slot.set_crash_looping(0)  # it is a gauge, not a counter
        assert int(board.column("replica_crash_loops")[0]) == 0

    def test_fault_fires_have_a_column_per_known_site(self):
        board = MetricsBoard.in_memory()
        slot = board.slot(0)
        for site in KNOWN_SITES:
            slot.observe_fault(site)
        slot.observe_fault("wal.torn_tail")
        slot.observe_fault("not.a.wired.site")
        assert int(board.column("fault_fires__wal.torn_tail")[0]) == 2
        assert int(board.column("fault_fires__other")[0]) == 1
        for site in KNOWN_SITES:
            assert int(board.column(f"fault_fires__{site}")[0]) >= 1


class TestRenderPrometheus:
    def test_aggregates_across_slots(self):
        board = MetricsBoard.in_memory(slots=3)
        for slot in range(3):
            board.slot(slot).observe_request("predict")
        page = render_prometheus(board)
        assert 'repro_requests_total{endpoint="predict"} 3' in page

    def test_per_replica_gauges(self):
        board = MetricsBoard.in_memory(slots=2)
        board.slot(0).mark_up(pid=1, version=4)
        board.slot(1).mark_up(pid=2, version=4)
        board.slot(1).mark_down()
        page = render_prometheus(board)
        assert 'repro_replica_up{slot="0",role="coordinator"} 1' in page
        assert 'repro_replica_up{slot="1",role="worker"} 0' in page
        assert 'repro_replica_version{slot="0",role="coordinator"} 4' in page
        # a dead replica's version is not reported
        assert 'repro_replica_version{slot="1"' not in page

    def test_histogram_is_cumulative_and_ends_with_inf(self):
        board = MetricsBoard.in_memory()
        board.slot(0).observe_response("predict", 200, seconds=0.0001)
        board.slot(0).observe_response("predict", 200, seconds=0.003)
        page = render_prometheus(board)
        lines = [l for l in page.splitlines() if l.startswith("repro_predict_latency_seconds_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert lines[-1].startswith('repro_predict_latency_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 2

    def test_self_healing_lines(self):
        board = MetricsBoard.in_memory(slots=2)
        board.slot(0).observe_quarantine()
        board.slot(0).observe_canary_rejection()
        board.slot(1).observe_fault("hotswap.poison_commit")
        page = render_prometheus(board)
        assert "repro_quarantined_deltas_total 1" in page
        assert "repro_canary_rejections_total 1" in page
        assert "repro_integrity_fallbacks_total 0" in page
        assert "repro_replica_crash_loops 0" in page
        assert 'repro_fault_fires_total{site="hotswap.poison_commit"} 1' in page
        # sites with zero fires are omitted to keep the page small
        assert 'site="wal.torn_tail"' not in page

    def test_page_parses_as_prometheus_text(self):
        board = MetricsBoard.in_memory()
        page = render_prometheus(board)
        for line in page.splitlines():
            assert line.startswith("#") or " " in line
        assert page.endswith("\n")


class TestSpanHistograms:
    def test_known_sites_accumulate(self):
        board = MetricsBoard.in_memory()
        slot = board.slot(0)
        slot.observe_span("serve.predict", 0.002)
        slot.observe_span("serve.predict", 0.2)
        assert int(board.column("span_count__serve.predict")[0]) == 2
        assert int(board.column("span_sum_us__serve.predict")[0]) == 202000

    def test_unknown_span_names_are_ignored(self):
        board = MetricsBoard.in_memory()
        board.slot(0).observe_span("stream.step", 0.5)  # JSONL-only span
        board.slot(0).observe_span("no.such.site", 0.5)
        page = render_prometheus(board)
        assert "stream.step" not in page

    def test_rendered_histogram_is_cumulative(self):
        board = MetricsBoard.in_memory()
        for seconds in (0.0005, 0.02, 3.0):
            board.slot(0).observe_span("swap.apply", seconds)
        page = render_prometheus(board)
        lines = [
            l
            for l in page.splitlines()
            if l.startswith('repro_span_seconds_bucket{span="swap.apply"')
        ]
        assert len(lines) == len(SPAN_BUCKETS) + 1
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3
        assert 'repro_span_seconds_count{span="swap.apply"} 3' in page

    def test_untraced_page_has_no_span_series(self):
        page = render_prometheus(MetricsBoard.in_memory())
        assert "repro_span_seconds" not in page

    def test_every_serving_site_has_columns(self):
        board = MetricsBoard.in_memory()
        for site in SERVING_SPAN_SITES:
            board.slot(0).observe_span(site, 0.01)
            assert int(board.column(f"span_count__{site}")[0]) == 1

    def test_build_info_gauge_present(self):
        page = render_prometheus(MetricsBoard.in_memory())
        assert 'repro_build_info{revision="' in page


class TestAdmissionGate:
    def test_sheds_beyond_capacity(self):
        gate = AdmissionGate(2)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()
        gate.leave()
        assert gate.try_enter()
        assert gate.stats == {"capacity": 2, "depth": 2, "admitted": 3, "shed": 1}

    def test_zero_capacity_disables_shedding(self):
        gate = AdmissionGate(0)
        assert all(gate.try_enter() for _ in range(100))
        assert gate.stats["shed"] == 0

    def test_leave_without_enter_is_guarded(self):
        gate = AdmissionGate(1)
        gate.leave()
        assert gate.depth == 0
        assert gate.try_enter()

    def test_feeds_queue_depth_gauge(self):
        board = MetricsBoard.in_memory()
        gate = AdmissionGate(4, metrics=board.slot(0))
        gate.try_enter()
        gate.try_enter()
        assert int(board.column("queue_depth")[0]) == 2
        gate.leave()
        assert int(board.column("queue_depth")[0]) == 1

    def test_thread_safety_under_contention(self):
        import threading

        gate = AdmissionGate(5)
        results = []

        def hammer():
            for _ in range(200):
                if gate.try_enter():
                    gate.leave()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gate.depth == 0
        assert gate.stats["admitted"] + gate.stats["shed"] == 8 * 200
