"""One test class per wired fault-injection site (see repro.utils.faults).

Each site simulates a specific production failure — a torn WAL write, a
SIGKILLed worker, a slow swap ack, a widened hot-swap window — and each
test asserts two things: the fault actually fires (deterministically, from
the plan), and the surrounding machinery recovers the way its docstring
promises.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core import FreeHGC
from repro.datasets import load_acm
from repro.models import HeteroSGC
from repro.serving.hotswap import ServingController
from repro.serving.replicated.coordinator import (
    ReplicatedConfig,
    ReplicatedServer,
    _WorkerLink,
)
from repro.serving.replicated.pool import WorkerPool
from repro.serving.replicated.wal import DeltaWAL, read_wal
from repro.streaming.delta import GraphDelta
from repro.utils import faults
from repro.utils.faults import FaultInjector, InjectedFault


@pytest.fixture(autouse=True)
def _clean_injector():
    faults.uninstall()
    yield
    faults.uninstall()


def make_delta(step: int = 1) -> GraphDelta:
    return GraphDelta(
        add_edges={"paper-author": (np.array([0, 1]), np.array([2, 3]))},
        step=step,
    )


class TestWALTornTail:
    def test_torn_append_recovers_via_repair(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path) as wal:
            wal.append_genesis({"seed": 0})
            wal.append_delta(make_delta(1))
            injector = FaultInjector(seed=0)
            injector.plan("wal.torn_tail", at=(1,))
            with faults.injected(injector):
                with pytest.raises(InjectedFault):
                    wal.append_delta(make_delta(2))
            assert injector.fires["wal.torn_tail"] == 1
        # The torn bytes are on disk: a strict read refuses the tail...
        with pytest.raises(Exception):
            read_wal(path)
        # ...repair truncates back to the last good record...
        records = read_wal(path, repair=True)
        assert [r.kind for r in records] == ["genesis", "delta"]
        assert records[1].delta().step == 1
        # ...and the log accepts appends again, exactly like crash recovery.
        wal, records = DeltaWAL.open(path)
        with wal:
            assert len(records) == 2
            wal.append_delta(make_delta(3))
        steps = [r.delta().step for r in read_wal(path) if r.kind == "delta"]
        assert steps == [1, 3]

    def test_keep_bytes_bounds_the_torn_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path) as wal:
            wal.append_genesis({"seed": 0})
            committed = path.stat().st_size
            injector = FaultInjector(seed=0)
            injector.plan("wal.torn_tail", at=(1,), keep_bytes=3)
            with faults.injected(injector):
                with pytest.raises(InjectedFault):
                    wal.append_delta(make_delta(1))
        assert path.stat().st_size == committed + 3
        assert len(read_wal(path, repair=True)) == 1

    def test_no_injector_means_no_fault(self, tmp_path):
        path = tmp_path / "wal.log"
        with DeltaWAL(path) as wal:
            wal.append_genesis({"seed": 0})
            wal.append_delta(make_delta(1))
        assert len(read_wal(path)) == 2


class _FakeProcess:
    """Stands in for a spawn-context worker in supervise() tests."""

    def __init__(self):
        self.alive = True
        self.killed = False

    def is_alive(self):
        return self.alive

    def kill(self):
        self.killed = True
        self.alive = False

    def join(self, timeout=None):
        return None


class TestPoolWorkerKill:
    def make_pool(self, slots=(1, 2)):
        pool = WorkerPool.__new__(WorkerPool)
        pool.workers = len(slots)
        pool.options = {}
        pool.metrics = None
        pool._processes = {slot: _FakeProcess() for slot in slots}
        pool._stopping = False
        pool.respawns = 0
        pool._backoff = {}
        pool._not_before = {}
        pool._spawned_at = {}
        return pool

    def test_kill_targets_lowest_live_slot_by_default(self):
        pool = self.make_pool()
        injector = FaultInjector(seed=0)
        injector.plan("pool.worker_kill", at=(1,))
        first, second = pool._processes[1], pool._processes[2]
        with faults.injected(injector):
            assert pool._maybe_inject_kill() == 1
            assert pool._maybe_inject_kill() is None  # plan was at=(1,) only
        assert first.killed and not second.killed

    def test_slot_action_key_picks_the_victim(self):
        pool = self.make_pool()
        injector = FaultInjector(seed=0)
        injector.plan("pool.worker_kill", at=(1,), slot=2)
        with faults.injected(injector):
            assert pool._maybe_inject_kill() == 2
        assert pool._processes[2].killed and not pool._processes[1].killed

    def test_dead_slot_falls_back_to_lowest_live(self):
        pool = self.make_pool()
        pool._processes[1].alive = False
        injector = FaultInjector(seed=0)
        injector.plan("pool.worker_kill", at=(1,), slot=1)  # already dead
        with faults.injected(injector):
            assert pool._maybe_inject_kill() == 2

    def test_supervise_respawns_the_killed_worker(self):
        pool = self.make_pool()
        spawned = []

        def fake_spawn(slot):
            spawned.append(slot)
            pool._processes[slot] = _FakeProcess()

        pool._spawn = fake_spawn
        injector = FaultInjector(seed=0)
        injector.plan("pool.worker_kill", at=(1,), limit=1)

        async def drive():
            with faults.injected(injector):
                task = asyncio.ensure_future(pool.supervise(interval=0.01))
                for _ in range(200):
                    await asyncio.sleep(0.01)
                    if pool.respawns:
                        break
                pool._stopping = True
                await task

        asyncio.run(drive())
        assert spawned == [1]
        assert pool.respawns == 1
        assert injector.fires["pool.worker_kill"] == 1
        assert all(p.is_alive() for p in pool._processes.values())

    def test_no_injector_is_a_noop(self):
        pool = self.make_pool()
        assert pool._maybe_inject_kill() is None
        assert not any(p.killed for p in pool._processes.values())


class _FakeWriter:
    """Duck-typed asyncio.StreamWriter for control-channel tests."""

    def __init__(self):
        self.sent = b""

    def write(self, data):
        self.sent += data

    async def drain(self):
        return None


class TestCoordinatorDelayAck:
    def run_fan_out(self, tmp_path, *, delay_seconds, ack_timeout=5.0):
        config = ReplicatedConfig(root=tmp_path, ack_timeout_seconds=ack_timeout)
        server = ReplicatedServer(lambda graph: None, config=config)

        async def drive():
            link = _WorkerLink(slot=1, pid=1234, writer=_FakeWriter())
            link.acks.put_nowait(7)
            server._links[1] = link
            start = asyncio.get_running_loop().time()
            acked = await server._fan_out(7)
            return acked, asyncio.get_running_loop().time() - start, link

        injector = FaultInjector(seed=0)
        injector.plan("coordinator.delay_ack", at=(1,), seconds=delay_seconds)
        with faults.injected(injector):
            acked, elapsed, link = asyncio.run(drive())
        return acked, elapsed, link, injector

    def test_delay_slows_the_swap_but_acks_still_land(self, tmp_path):
        acked, elapsed, link, injector = self.run_fan_out(
            tmp_path, delay_seconds=0.2
        )
        assert acked == 1
        assert elapsed >= 0.2
        assert injector.fires["coordinator.delay_ack"] == 1
        # the notification still went out, after the delay
        assert b'"swap"' in link.writer.sent

    def test_delay_eats_into_the_ack_deadline(self, tmp_path):
        # Ack never arrives: total wait stays bounded by ack_timeout even
        # though the injected delay consumed part of it.
        config = ReplicatedConfig(root=tmp_path, ack_timeout_seconds=0.3)
        server = ReplicatedServer(lambda graph: None, config=config)

        async def drive():
            link = _WorkerLink(slot=1, pid=1, writer=_FakeWriter())
            server._links[1] = link
            start = asyncio.get_running_loop().time()
            acked = await server._fan_out(1)
            return acked, asyncio.get_running_loop().time() - start

        injector = FaultInjector(seed=0)
        injector.plan("coordinator.delay_ack", at=(1,), seconds=0.15)
        with faults.injected(injector):
            acked, elapsed = asyncio.run(drive())
        assert acked == 0
        assert 0.15 <= elapsed < 1.5


class TestPoolCrashLoop:
    def make_pool(self, slots=(1,)):
        pool = WorkerPool.__new__(WorkerPool)
        pool.workers = len(slots)
        pool.options = {}
        pool.metrics = None
        pool._processes = {slot: _FakeProcess() for slot in slots}
        pool._stopping = False
        pool.respawns = 0
        pool._backoff = {}
        pool._not_before = {}
        pool._spawned_at = {}
        return pool

    def test_fault_swaps_the_spawn_target(self, tmp_path):
        # A planned crash_loop makes the *real* spawn produce a process
        # that exits at boot — a genuine crash loop, not a simulated one.
        pool = WorkerPool(workers=1, options={})
        injector = FaultInjector(seed=0)
        injector.plan("pool.crash_loop", at=(1,))
        with faults.injected(injector):
            pool._spawn(1)
        process = pool._processes[1]
        process.join(timeout=30)
        assert injector.fires["pool.crash_loop"] == 1
        assert not process.is_alive()
        assert process.exitcode == 1

    def test_observe_dead_backs_off_exponentially(self):
        """The deterministic core of satellite (b): repeated instant deaths
        double the slot's respawn delay up to the cap, and a long-lived
        worker clears the history."""
        pool = self.make_pool()
        # Death 1: immediate respawn, but the slot is now on notice.
        assert pool._observe_dead(1, 0.0)
        assert pool._backoff[1] == pool.BACKOFF_BASE
        assert pool.crash_looping() == []  # base delay is not a loop yet
        pool._spawned_at[1] = 0.0
        # Death 2 right after respawn: delay doubles, slot is crash-looping.
        assert pool._observe_dead(1, 0.01)
        assert pool._backoff[1] == 2 * pool.BACKOFF_BASE
        assert pool.crash_looping() == [1]
        # Inside the hold-down window nothing respawns, however often polled.
        assert not any(pool._observe_dead(1, 0.01 + t) for t in (0.1, 0.2, 0.4))
        # Past it, the delay doubles again... and saturates at the cap.
        deadline = pool._not_before[1]
        assert pool._observe_dead(1, deadline)
        assert pool._backoff[1] == 4 * pool.BACKOFF_BASE
        for _ in range(8):
            pool._spawned_at[1] = pool._not_before[1]
            assert pool._observe_dead(1, pool._not_before[1])
        assert pool._backoff[1] == pool.BACKOFF_CAP
        # A worker that then *lives* past the reset window starts fresh.
        survived = pool._not_before[1] + pool.BACKOFF_RESET_AFTER + 1.0
        pool._spawned_at[1] = pool._not_before[1]
        assert pool._observe_dead(1, survived)
        assert pool._backoff[1] == pool.BACKOFF_BASE

    def test_supervise_bounds_the_respawn_rate_and_sets_the_gauge(self):
        from repro.serving.replicated.metrics import MetricsBoard

        board = MetricsBoard.in_memory(slots=2)
        pool = self.make_pool()
        pool.metrics = board.slot(0)
        pool.BACKOFF_BASE = 0.05
        pool.BACKOFF_CAP = 0.2
        spawned = []

        def instant_crasher(slot):
            # every respawn dies immediately: the worst-case crash loop
            spawned.append(time.monotonic())
            pool._processes[slot] = _FakeProcess()
            pool._processes[slot].alive = False
            pool._spawned_at[slot] = time.monotonic()

        pool._spawn = instant_crasher
        pool._processes[1].alive = False

        async def drive():
            task = asyncio.ensure_future(pool.supervise(interval=0.01))
            await asyncio.sleep(0.6)
            pool._stopping = True
            await task

        asyncio.run(drive())
        # Without backoff a 0.01 s poll would respawn ~60 times in 0.6 s;
        # the doubling schedule (0, 0.1, 0.2, 0.2, ...) allows a handful.
        assert 2 <= pool.respawns <= 10
        assert pool.crash_looping() == [1]
        assert int(board.column("replica_crash_loops")[0]) == 1


class TestHotswapPoisonCommit:
    def test_poison_raises_before_any_state_is_touched(self):
        graph = load_acm(scale=0.1, seed=0)
        controller = ServingController(
            graph,
            lambda: HeteroSGC(hidden_dim=8, epochs=5, max_hops=2, seed=0),
            model_name="heterosgc",
            ratio=0.3,
            condenser=FreeHGC(max_hops=2),
            recondense_threshold=0.5,
            seed=0,
            cache_size=64,
        )
        controller.start()
        before = controller.session
        injector = FaultInjector(seed=0)
        injector.plan("hotswap.poison_commit", at=(1,))
        with faults.injected(injector):
            with pytest.raises(InjectedFault, match="poison_commit"):
                controller.apply_delta(make_delta(1))
        assert injector.fires["hotswap.poison_commit"] == 1
        # The single-process tier keeps serving the previous session: the
        # fault fires before the graph, model, or version are touched.
        assert controller.session is before
        assert controller.version == 1
        assert controller.swap_history == []
        # And the controller is not wedged: the next clean delta swaps.
        report = controller.apply_delta(make_delta(1))
        assert report.version == 2


class TestHotswapDelayPublish:
    def test_delay_widens_the_swap_window(self):
        graph = load_acm(scale=0.1, seed=0)
        controller = ServingController(
            graph,
            lambda: HeteroSGC(hidden_dim=8, epochs=5, max_hops=2, seed=0),
            model_name="heterosgc",
            ratio=0.3,
            condenser=FreeHGC(max_hops=2),
            recondense_threshold=0.5,
            seed=0,
            cache_size=64,
        )
        controller.start()
        before = controller.session
        delta = make_delta(1)
        injector = FaultInjector(seed=0)
        injector.plan("hotswap.delay_publish", at=(1,), seconds=0.1)
        with faults.injected(injector):
            start = time.perf_counter()
            report = controller.apply_delta(delta)
            elapsed = time.perf_counter() - start
        assert injector.fires["hotswap.delay_publish"] == 1
        assert elapsed >= 0.1
        # The delay holds the *old* session visible, then still publishes.
        assert controller.session is not before
        assert report.version == 2
