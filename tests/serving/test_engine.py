"""InferenceSession micro-batching and the LRU label cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.condenser import FreeHGC
from repro.datasets import load_acm
from repro.errors import ServingError
from repro.models.hetero_sgc import HeteroSGC
from repro.serving import InferenceSession, LRUCache


@pytest.fixture(scope="module")
def fitted():
    graph = load_acm(scale=0.15, seed=0)
    condensed = FreeHGC(max_hops=2).condense(graph, ratio=0.3, seed=0)
    model = HeteroSGC(hidden_dim=16, epochs=25, max_hops=2, seed=0)
    model.fit(condensed)
    return model, graph


class TestLRUCache:
    def test_lookup_miss_then_hit(self):
        cache = LRUCache(4)
        ids = np.array([1, 2])
        labels, found = cache.lookup(ids)
        assert not found.any() and (labels == -1).all()
        cache.store(ids, np.array([5, 6]))
        labels, found = cache.lookup(np.array([2, 1, 3]))
        assert found.tolist() == [True, True, False]
        assert labels.tolist() == [6, 5, -1]
        assert cache.stats["hits"] == 2 and cache.stats["misses"] == 3

    def test_eviction_is_lru(self):
        cache = LRUCache(2)
        cache.store(np.array([1]), np.array([0]))
        cache.store(np.array([2]), np.array([0]))
        cache.lookup(np.array([1]))  # touch 1 so 2 is least recent
        cache.store(np.array([3]), np.array([0]))
        _, found = cache.lookup(np.array([1, 2, 3]))
        assert found.tolist() == [True, False, True]

    def test_capacity_zero_disables(self):
        cache = LRUCache(0)
        cache.store(np.array([1]), np.array([7]))
        labels, found = cache.lookup(np.array([1]))
        assert not found.any() and len(cache) == 0

    def test_invalidate(self):
        cache = LRUCache(8)
        cache.store(np.array([1, 2, 3]), np.array([0, 1, 2]))
        assert cache.invalidate(np.array([2, 9])) == 1
        _, found = cache.lookup(np.array([1, 2, 3]))
        assert found.tolist() == [True, False, True]

    def test_adopt_drops_dirty(self):
        old = LRUCache(8)
        old.store(np.array([1, 2, 3]), np.array([0, 1, 2]))
        new = LRUCache(8)
        carried = new.adopt(old, drop=np.array([2]))
        assert carried == 2
        labels, found = new.lookup(np.array([1, 2, 3]))
        assert found.tolist() == [True, False, True]
        assert labels[0] == 0 and labels[2] == 2

    def test_adopt_respects_capacity(self):
        old = LRUCache(8)
        old.store(np.arange(6), np.zeros(6, dtype=np.int64))
        new = LRUCache(3)
        assert new.adopt(old) == 3


class TestInferenceSession:
    def test_batched_equals_serial_and_offline(self, fitted):
        model, graph = fitted
        session = InferenceSession(model, graph, version=1, cache_size=0)
        ids = np.arange(session.num_targets, dtype=np.int64)
        batched = session.predict(ids)
        serial = np.array([session.predict_one(int(i)) for i in ids])
        assert np.array_equal(batched, serial)
        assert np.array_equal(batched, model.predict(graph))

    def test_cache_does_not_change_results(self, fitted):
        model, graph = fitted
        cached = InferenceSession(model, graph, cache_size=64)
        uncached = InferenceSession(model, graph, cache_size=0)
        rng = np.random.default_rng(0)
        for _ in range(5):
            ids = rng.integers(0, cached.num_targets, size=20)
            assert np.array_equal(cached.predict(ids), uncached.predict(ids))
        assert cached.cache.stats["hits"] > 0

    def test_duplicate_ids_in_one_batch(self, fitted):
        model, graph = fitted
        session = InferenceSession(model, graph, cache_size=8)
        ids = np.array([3, 3, 5, 3], dtype=np.int64)
        labels = session.predict(ids)
        assert labels[0] == labels[1] == labels[3] == session.predict_one(3)

    def test_out_of_range_raises(self, fitted):
        model, graph = fitted
        session = InferenceSession(model, graph)
        with pytest.raises(ServingError):
            session.predict(np.array([session.num_targets]))
        with pytest.raises(ServingError):
            session.predict(np.array([-1]))

    def test_logits_shape_and_stats(self, fitted):
        model, graph = fitted
        session = InferenceSession(model, graph, version=7)
        assert session.logits(np.array([0, 1])).shape == (2, session.num_classes)
        session.predict(np.array([0, 1, 2]))
        stats = session.stats
        assert stats["version"] == 7
        assert stats["requests"] == 3 and stats["batches"] == 1

    def test_unfitted_model_rejected(self, fitted):
        _, graph = fitted
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            InferenceSession(HeteroSGC(), graph)
