"""The replicated tier: publish/mmap layout, WAL recovery, live worker pool."""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core.condenser import FreeHGC
from repro.datasets import load_acm
from repro.errors import ReproError, ServingError, WALError
from repro.models.hetero_sgc import HeteroSGC
from repro.serving import ServingController
from repro.serving.replicated import ReplicatedConfig, ReplicatedServer, recover_from_wal
from repro.serving.replicated.pool import (
    current_version,
    publish_version,
    published_session,
    set_current,
)
from repro.streaming import GraphDelta
from repro.streaming.incremental import graphs_equal


def make_controller_factory(*, scale=0.12, seed=0, ratio=0.3):
    def make_controller(graph=None):
        if graph is None:
            graph = load_acm(scale=scale, seed=seed)
        return ServingController(
            graph,
            lambda: HeteroSGC(hidden_dim=16, epochs=20, max_hops=2, seed=seed),
            model_name="heterosgc",
            ratio=ratio,
            condenser=FreeHGC(max_hops=2),
            seed=seed,
            cache_size=128,
        )

    return make_controller


def churn_delta(graph, step, count=3):
    coo = graph.adjacency["paper-term"].tocoo()
    lo = (step - 1) * count
    return GraphDelta(
        remove_edges={"paper-term": (coo.row[lo : lo + count], coo.col[lo : lo + count])},
        step=step,
    )


class TestPublishedVersions:
    def test_publish_and_mmap_roundtrip(self, tmp_path):
        controller = make_controller_factory()(None)
        controller.start()
        session = controller.session
        publish_version(
            tmp_path,
            version=controller.version,
            bundle=controller.export_bundle(),
            logits=session._logits,
        )
        set_current(tmp_path, controller.version)
        version, vdir = current_version(tmp_path)
        assert version == controller.version and vdir.is_dir()
        replica = published_session(tmp_path, cache_size=64)
        assert isinstance(replica._logits, np.memmap)
        ids = np.arange(session.num_targets)
        assert np.array_equal(replica.predict(ids), session.predict(ids))
        assert replica.version == session.version

    def test_missing_current_raises(self, tmp_path):
        with pytest.raises(ServingError):
            published_session(tmp_path)

    def test_incomplete_version_dir_raises(self, tmp_path):
        (tmp_path / "versions" / "v000001").mkdir(parents=True)
        with pytest.raises(ServingError):
            published_session(tmp_path, version=1)


class TestWALRecovery:
    def assert_bundles_identical(self, left, right):
        assert left.model_name == right.model_name
        assert json.dumps(left.state, sort_keys=True, default=str) == json.dumps(
            right.state, sort_keys=True, default=str
        )
        assert set(left.weights) == set(right.weights)
        for name in left.weights:
            assert np.array_equal(
                np.asarray(left.weights[name]), np.asarray(right.weights[name])
            ), name
        assert graphs_equal(left.condensed, right.condensed)

    def test_replay_from_genesis_restores_byte_identical_state(self, tmp_path):
        factory = make_controller_factory()
        genesis = {"dataset": "acm", "scale": 0.12, "seed": 0}
        controller, wal, report = recover_from_wal(
            tmp_path / "wal.log", root=tmp_path,
            make_controller=factory, genesis_config=genesis,
        )
        assert report["mode"] == "cold"
        for step in (1, 2):
            delta = churn_delta(controller.graph, step)
            wal.append_delta(delta)
            controller.apply_delta(delta)
        wal.close()
        expected_bundle = controller.export_bundle()
        ids = np.arange(controller.session.num_targets)
        expected_labels = controller.session.predict(ids)
        expected_version = controller.version

        recovered, wal2, report2 = recover_from_wal(
            tmp_path / "wal.log", root=tmp_path,
            make_controller=factory, genesis_config=genesis,
        )
        wal2.close()
        assert report2["mode"] == "genesis" and report2["deltas_replayed"] == 2
        assert recovered.version == expected_version
        self.assert_bundles_identical(recovered.export_bundle(), expected_bundle)
        assert np.array_equal(recovered.session.predict(ids), expected_labels)

    def test_recovery_survives_torn_tail(self, tmp_path):
        factory = make_controller_factory()
        controller, wal, _ = recover_from_wal(
            tmp_path / "wal.log", root=tmp_path, make_controller=factory,
        )
        delta = churn_delta(controller.graph, 1)
        wal.append_delta(delta)
        controller.apply_delta(delta)
        wal.close()
        with open(tmp_path / "wal.log", "ab") as handle:
            handle.write(b"\x42\x00\x00")  # simulated crash mid-append
        recovered, wal2, report = recover_from_wal(
            tmp_path / "wal.log", root=tmp_path, make_controller=factory,
        )
        wal2.close()
        assert report["deltas_replayed"] == 1
        assert recovered.version == controller.version

    def test_genesis_mismatch_refuses_replay(self, tmp_path):
        factory = make_controller_factory()
        _, wal, _ = recover_from_wal(
            tmp_path / "wal.log", root=tmp_path,
            make_controller=factory, genesis_config={"dataset": "acm", "seed": 0},
        )
        wal.close()
        with pytest.raises(WALError):
            recover_from_wal(
                tmp_path / "wal.log", root=tmp_path,
                make_controller=factory, genesis_config={"dataset": "acm", "seed": 7},
            )

    def test_snapshot_recovery_matches_live_state(self, tmp_path):
        factory = make_controller_factory()
        genesis = {"dataset": "acm"}

        async def run():
            config = ReplicatedConfig(
                root=tmp_path, port=0, workers=1, snapshot_every=1, fsync=False
            )
            server = ReplicatedServer(factory, config=config, genesis=genesis)
            host, port = await server.start()
            delta = churn_delta(server.controller.graph, 1)
            report, _ = await server.commit_delta(delta)
            expected = server.controller.export_bundle()
            ids = np.arange(server.controller.session.num_targets)
            labels = server.controller.session.predict(ids)
            version = server.controller.version
            await server.close()
            return expected, ids, labels, version

        expected, ids, labels, version = asyncio.run(run())
        recovered, wal, report = recover_from_wal(
            tmp_path / "wal.log", root=tmp_path,
            make_controller=factory, genesis_config=genesis,
        )
        wal.close()
        assert report["mode"] == "snapshot" and report["deltas_replayed"] == 0
        assert recovered.version == version
        self.assert_bundles_identical(recovered.export_bundle(), expected)
        assert np.array_equal(recovered.session.predict(ids), labels)

    def test_rejected_delta_never_enters_the_wal(self, tmp_path):
        """A delta that fails validation must be refused *before* the WAL
        append: otherwise the client sees a 4xx but replay-on-boot trips
        over the poisoned record and the tier can never come back up."""
        factory = make_controller_factory()
        genesis = {"dataset": "acm"}

        async def run():
            config = ReplicatedConfig(root=tmp_path, port=0, workers=1, fsync=False)
            server = ReplicatedServer(factory, config=config, genesis=genesis)
            await server.start()
            good = churn_delta(server.controller.graph, 1)
            await server.commit_delta(good)
            with pytest.raises(ReproError):
                await server.commit_delta(
                    GraphDelta(remove_edges={"nope": ([0], [1])}, step=2)
                )
            version = server.controller.version
            committed = server.deltas_committed
            await server.close()
            return version, committed

        version, committed = asyncio.run(run())
        assert committed == 1
        recovered, wal, report = recover_from_wal(
            tmp_path / "wal.log", root=tmp_path,
            make_controller=factory, genesis_config=genesis,
        )
        wal.close()
        assert report["deltas_replayed"] == 1
        assert recovered.version == version


# ---------------------------------------------------------------------- #
# Live pool integration (spawns real worker processes)
# ---------------------------------------------------------------------- #
async def http(host, port, method, path, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps(payload or {}).encode()
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode() + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, response_body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    if b"application/json" in head:
        return status, json.loads(response_body or b"{}")
    return status, response_body.decode()


async def wait_for(predicate, *, timeout=30.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class TestLivePool:
    def test_full_tier(self, tmp_path):
        """One scenario, end to end, to pay the worker spawn cost once:
        registration, forwarded deltas with acks, version propagation,
        worker kill + respawn, and the aggregated /metrics page."""

        async def scenario():
            config = ReplicatedConfig(
                root=tmp_path, port=0, workers=2, fsync=False,
                batch_window_seconds=0.001,
            )
            server = ReplicatedServer(
                make_controller_factory(), config=config,
                genesis={"dataset": "acm", "scale": 0.12, "seed": 0},
            )
            host, port = await server.start()
            try:
                await wait_for(
                    lambda: len(server._links) == 2,
                    message="both workers to register",
                )
                ids = list(range(8))
                expected = server.controller.session.predict(np.asarray(ids)).tolist()

                # The shared port answers /healthz and correct predictions.
                status, payload = await http(host, port, "GET", "/healthz")
                assert status == 200 and payload["status"] == "ok"
                for _ in range(6):  # several connections: kernel spreads them
                    status, payload = await http(
                        host, port, "POST", "/predict", {"nodes": ids}
                    )
                    assert status == 200
                    assert payload["labels"] == expected
                    assert payload["version"] == server.controller.version

                # A delta commits once, acks both workers, bumps every reply.
                before = server.controller.version
                delta = churn_delta(server.controller.graph, 1)
                status, swap = await http(
                    host, port, "POST", "/delta", delta.to_payload()
                )
                assert status == 200
                assert swap["version"] == before + 1
                assert swap["acked_workers"] == 2
                new_expected = server.controller.session.predict(
                    np.asarray(ids)
                ).tolist()
                for _ in range(6):
                    status, payload = await http(
                        host, port, "POST", "/predict", {"nodes": ids}
                    )
                    assert status == 200
                    assert payload["version"] == before + 1  # never stale
                    assert payload["labels"] == new_expected

                # Kill one worker: the supervisor respawns it onto CURRENT.
                victim = server.pool._processes[1]
                os.kill(victim.pid, signal.SIGKILL)
                await wait_for(
                    lambda: server.pool.respawns >= 1,
                    message="supervisor respawn",
                )
                await wait_for(
                    lambda: len(server._links) == 2,
                    message="respawned worker to register",
                )
                status, payload = await http(
                    host, port, "POST", "/predict", {"nodes": ids}
                )
                assert status == 200 and payload["version"] == before + 1

                # A second delta still acks two workers (one of them respawned).
                delta2 = churn_delta(server.controller.graph, 2)
                status, swap2 = await http(
                    host, port, "POST", "/delta", delta2.to_payload()
                )
                assert status == 200 and swap2["acked_workers"] == 2

                # The shared port may route /stats to any replica; the
                # coordinator's admin listener always answers with its view.
                status, stats = await http(
                    "127.0.0.1", server.admin_port, "GET", "/stats"
                )
                assert status == 200
                assert stats["replicated"]["deltas_committed"] == 2
                assert stats["replicated"]["respawns"] >= 1
                status, page = await http(host, port, "GET", "/metrics")
                assert status == 200
                assert 'repro_replica_up{slot="0",role="coordinator"} 1' in page
                assert "repro_swaps_total" in page
            finally:
                await server.close()

        asyncio.run(scenario())
