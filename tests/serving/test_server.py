"""The asyncio HTTP endpoint and the micro-batcher."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.condenser import FreeHGC
from repro.datasets import load_acm
from repro.models.hetero_sgc import HeteroSGC
from repro.serving import MicroBatcher, ServingController, ServingServer
from repro.streaming import GraphDelta


@pytest.fixture(scope="module")
def controller():
    graph = load_acm(scale=0.15, seed=0)
    factory = lambda: HeteroSGC(hidden_dim=16, epochs=25, max_hops=2, seed=0)
    controller = ServingController(
        graph,
        factory,
        model_name="heterosgc",
        ratio=0.3,
        condenser=FreeHGC(max_hops=2),
        seed=0,
        cache_size=256,
    )
    controller.start()
    return controller


async def http(host, port, method, path, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps(payload or {}).encode()
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode() + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, response_body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), json.loads(response_body or b"{}")


def run_with_server(controller, coroutine_factory):
    async def runner():
        server = ServingServer(controller, port=0, batch_window_seconds=0.001)
        host, port = await server.start()
        try:
            return await coroutine_factory(server, host, port)
        finally:
            await server.close()

    return asyncio.run(runner())


class TestEndpoints:
    def test_healthz(self, controller):
        async def scenario(server, host, port):
            return await http(host, port, "GET", "/healthz")

        status, payload = run_with_server(controller, scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"] == controller.version

    def test_predict_matches_session(self, controller):
        ids = [0, 5, 17, 3]

        async def scenario(server, host, port):
            return await http(host, port, "POST", "/predict", {"nodes": ids})

        status, payload = run_with_server(controller, scenario)
        assert status == 200
        expected = controller.session.predict(np.asarray(ids))
        assert payload["labels"] == expected.tolist()
        assert payload["version"] == controller.version
        assert payload["latency_ms"] >= 0

    def test_concurrent_predicts_are_coalesced(self, controller):
        async def scenario(server, host, port):
            results = await asyncio.gather(
                *(
                    http(host, port, "POST", "/predict", {"nodes": [i, i + 1]})
                    for i in range(20)
                )
            )
            return results, server.batcher.stats

        results, batcher = run_with_server(controller, scenario)
        for i, (status, payload) in enumerate(results):
            assert status == 200
            expected = controller.session.predict(np.asarray([i, i + 1]))
            assert payload["labels"] == expected.tolist()
        # at least some coalescing must have happened
        assert batcher["batches"] < batcher["requests"]

    def test_delta_endpoint_swaps(self, controller):
        graph = controller.graph
        coo = graph.adjacency["paper-term"].tocoo()
        delta = GraphDelta(
            remove_edges={"paper-term": (coo.row[:2], coo.col[:2])}, step=9
        )
        before = controller.version

        async def scenario(server, host, port):
            status, swap = await http(host, port, "POST", "/delta", delta.to_payload())
            predict = await http(host, port, "POST", "/predict", {"nodes": [0, 1]})
            return status, swap, predict

        status, swap, (p_status, p_payload) = run_with_server(controller, scenario)
        assert status == 200
        assert swap["version"] == before + 1
        assert swap["step"] == 9
        assert p_status == 200 and p_payload["version"] == before + 1

    def test_stats_endpoint(self, controller):
        async def scenario(server, host, port):
            await http(host, port, "POST", "/predict", {"nodes": [1, 2, 3]})
            return await http(host, port, "GET", "/stats")

        status, payload = run_with_server(controller, scenario)
        assert status == 200
        assert payload["session"]["version"] == controller.version
        assert payload["latency"]["count"] >= 1
        assert payload["batcher"]["requests"] >= 1

    def test_unknown_route_404(self, controller):
        async def scenario(server, host, port):
            return await http(host, port, "GET", "/nope")

        status, payload = run_with_server(controller, scenario)
        assert status == 404 and "error" in payload

    def test_bad_json_400(self, controller):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            body = b"{not json"
            writer.write(
                f"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: {len(body)}"
                f"\r\nConnection: close\r\n\r\n".encode() + body
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, response_body = raw.partition(b"\r\n\r\n")
            return int(head.split(b" ", 2)[1]), json.loads(response_body)

        status, payload = run_with_server(controller, scenario)
        assert status == 400 and "error" in payload

    def test_out_of_range_node_400(self, controller):
        async def scenario(server, host, port):
            return await http(
                host, port, "POST", "/predict", {"nodes": [10**7]}
            )

        status, payload = run_with_server(controller, scenario)
        assert status == 400 and "error" in payload

    def test_bad_request_does_not_poison_batch_mates(self, controller):
        """A request with an invalid id coalesced into the same micro-batch
        window as valid requests must fail alone."""

        async def scenario(server, host, port):
            return await asyncio.gather(
                http(host, port, "POST", "/predict", {"nodes": [0, 1]}),
                http(host, port, "POST", "/predict", {"nodes": [10**7]}),
                http(host, port, "POST", "/predict", {"nodes": [2]}),
            )

        (ok1, p1), (bad, pbad), (ok2, p2) = run_with_server(controller, scenario)
        assert bad == 400 and "error" in pbad
        assert ok1 == 200 and ok2 == 200
        assert p1["labels"] == controller.session.predict(np.array([0, 1])).tolist()
        assert p2["labels"] == controller.session.predict(np.array([2])).tolist()

    def test_empty_nodes_400(self, controller):
        async def scenario(server, host, port):
            return await http(host, port, "POST", "/predict", {"nodes": []})

        status, _ = run_with_server(controller, scenario)
        assert status == 400

    def test_keep_alive_multiple_requests_one_connection(self, controller):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            statuses = []
            for _ in range(3):
                body = json.dumps({"nodes": [0]}).encode()
                writer.write(
                    f"POST /predict HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n".encode() + body
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                length = int(
                    [
                        line.split(b":")[1]
                        for line in head.split(b"\r\n")
                        if line.lower().startswith(b"content-length")
                    ][0]
                )
                payload = json.loads(await reader.readexactly(length))
                statuses.append((int(head.split(b" ", 2)[1]), payload))
            writer.close()
            return statuses

        statuses = run_with_server(controller, scenario)
        assert [s for s, _ in statuses] == [200, 200, 200]


class TestMicroBatcherUnit:
    def test_splits_batch_results_correctly(self, controller):
        session = controller.session

        async def scenario():
            batcher = MicroBatcher(lambda: session, max_batch=64, window_seconds=0.005)
            batcher.start()
            try:
                results = await asyncio.gather(
                    batcher.submit(np.array([0, 1, 2])),
                    batcher.submit(np.array([3])),
                    batcher.submit(np.array([4, 5])),
                )
            finally:
                await batcher.stop()
            return results

        results = asyncio.run(scenario())
        flat = np.concatenate([labels for labels, _ in results])
        expected = session.predict(np.arange(6))
        assert np.array_equal(flat, expected)

    def test_errors_propagate_to_submitters(self, controller):
        async def scenario():
            batcher = MicroBatcher(lambda: controller.session, window_seconds=0.001)
            batcher.start()
            try:
                with pytest.raises(Exception):
                    await batcher.submit(np.array([10**8]))  # out of range
            finally:
                await batcher.stop()

        asyncio.run(scenario())


async def raw_request(host, port, head: bytes, body: bytes = b"") -> tuple[int, dict]:
    """Send hand-crafted HTTP bytes; returns (status, decoded json body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(head + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head_bytes, _, response_body = raw.partition(b"\r\n\r\n")
    return int(head_bytes.split(b" ", 2)[1]), json.loads(response_body or b"{}")


class TestRequestBounds:
    """The body-size and Content-Length robustness contract."""

    def test_oversized_declared_body_is_413(self, controller):
        async def scenario(server, host, port):
            server.max_body_bytes = 64
            body = b"x" * 1000
            return await raw_request(
                host, port,
                f"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: {len(body)}"
                f"\r\nConnection: close\r\n\r\n".encode(),
                body,
            )

        status, payload = run_with_server(controller, scenario)
        assert status == 413 and "error" in payload

    def test_413_answers_before_reading_the_body(self, controller):
        """The bound is enforced on the *declaration*: the response arrives
        even though the promised body is never sent."""

        async def scenario(server, host, port):
            server.max_body_bytes = 64
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /predict HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 99999999\r\n\r\n"  # body intentionally absent
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=5)
            writer.close()
            return int(raw.split(b" ", 2)[1])

        assert run_with_server(controller, scenario) == 413

    def test_malformed_content_length_is_400(self, controller):
        async def scenario(server, host, port):
            return await raw_request(
                host, port,
                b"POST /predict HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: banana\r\nConnection: close\r\n\r\n",
            )

        status, payload = run_with_server(controller, scenario)
        assert status == 400 and "error" in payload

    def test_negative_content_length_is_400(self, controller):
        async def scenario(server, host, port):
            return await raw_request(
                host, port,
                b"POST /predict HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: -5\r\nConnection: close\r\n\r\n",
            )

        status, payload = run_with_server(controller, scenario)
        assert status == 400 and "error" in payload

    def test_connection_closes_after_bad_request(self, controller):
        async def scenario(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /predict HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: nope\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()  # EOF: server must close, not keep-alive
            writer.close()
            return raw

        raw = run_with_server(controller, scenario)
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert b"Connection: close" in raw

    def test_within_bound_body_still_served(self, controller):
        async def scenario(server, host, port):
            server.max_body_bytes = 4096
            return await http(host, port, "POST", "/predict", {"nodes": [0, 1]})

        status, payload = run_with_server(controller, scenario)
        assert status == 200 and len(payload["labels"]) == 2


class TestAdmissionAndMetrics:
    def test_predict_sheds_with_429_beyond_capacity(self, controller):
        async def scenario(server, host, port):
            server.admission.capacity = 1
            # a wide window holds the first batch open so later arrivals
            # stack up behind the single admitted slot
            server.batcher.window_seconds = 0.25
            results = await asyncio.gather(
                *(http(host, port, "POST", "/predict", {"nodes": [i]}) for i in range(12))
            )
            return results, server.admission.stats

        results, stats = run_with_server(controller, scenario)
        statuses = [status for status, _ in results]
        assert stats["shed"] >= 1 and 429 in statuses
        assert statuses.count(200) >= 1
        for status, payload in results:
            assert status in (200, 429)
            if status == 429:
                assert "error" in payload

    def test_metrics_endpoint_serves_prometheus_text(self, controller):
        async def scenario(server, host, port):
            await http(host, port, "POST", "/predict", {"nodes": [0]})
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = run_with_server(controller, scenario)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"200" in head.split(b"\r\n", 1)[0]
        assert b"text/plain" in head
        page = body.decode()
        assert 'repro_requests_total{endpoint="predict"} 1' in page
        assert 'repro_replica_up{slot="0",role="coordinator"} 1' in page

    def test_stats_reports_admission(self, controller):
        async def scenario(server, host, port):
            return await http(host, port, "GET", "/stats")

        status, payload = run_with_server(controller, scenario)
        assert status == 200
        assert payload["admission"]["capacity"] == 0
        assert payload["admission"]["shed"] == 0
