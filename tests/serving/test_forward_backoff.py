"""Retry/backoff on the worker -> coordinator write path.

``forward_delta`` is what keeps a worker useful while the coordinator is
mid-respawn: bounded exponential backoff absorbs the outage, and when the
budget runs out the worker answers a structured *degraded* 503 (with a
``Retry-After`` hint) instead of hanging or dying — reads never stop.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

import pytest

from repro.serving.replicated.pool import (
    FORWARD_ATTEMPTS,
    backoff_delays,
    forward_delta,
)
from repro.serving.server import write_http_response


class TestBackoffDelays:
    def test_deterministic_per_seed(self):
        assert backoff_delays(6, seed=3) == backoff_delays(6, seed=3)
        assert backoff_delays(6, seed=3) != backoff_delays(6, seed=4)

    def test_monotone_before_the_cap(self):
        # Jitter <= 1 never reaches the next doubling, so the pre-cap
        # schedule is strictly increasing: retries always spread out.
        for seed in range(8):
            delays = backoff_delays(5, base=0.05, cap=100.0, jitter=0.25, seed=seed)
            assert all(a < b for a, b in zip(delays, delays[1:]))

    def test_capped_with_jitter_headroom(self):
        delays = backoff_delays(10, base=0.05, cap=1.0, jitter=0.25, seed=0)
        assert max(delays) <= 1.0 * 1.25
        assert delays[0] >= 0.05

    def test_degenerate_counts(self):
        assert backoff_delays(0) == ()
        assert backoff_delays(-3) == ()


def free_port():
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def canned_response(payload, status=200):
    body = json.dumps(payload).encode()
    return (
        f"HTTP/1.1 {status} OK\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body


class TestForwardDelta:
    def test_absent_coordinator_degrades_with_structure(self):
        port = free_port()  # nothing listens here

        async def run():
            start = time.monotonic()
            status, payload = await forward_delta(
                "127.0.0.1", port, b"{}",
                attempts=3, base_delay=0.01, max_delay=0.04, seed=0,
            )
            return status, payload, time.monotonic() - start

        status, payload, elapsed = asyncio.run(run())
        assert status == 503
        assert payload["degraded"] is True
        assert payload["attempts"] == 3
        assert payload["retry_after_seconds"] >= 1
        assert "unreachable" in payload["error"]
        # Two jittered sleeps of <= 0.05 s each: the retry budget is bounded.
        assert elapsed < 2.0

    def test_delayed_coordinator_is_absorbed_by_retries(self):
        port = free_port()

        async def run():
            async def serve(reader, writer):
                await reader.read(65536)
                writer.write(canned_response({"version": 9, "acked_workers": 2}))
                await writer.drain()
                writer.close()

            async def late_start():
                # The coordinator comes back mid-retry, like a respawn.
                await asyncio.sleep(0.15)
                return await asyncio.start_server(serve, "127.0.0.1", port)

            starter = asyncio.ensure_future(late_start())
            status, payload = await forward_delta(
                "127.0.0.1", port, b"{}",
                attempts=FORWARD_ATTEMPTS + 2, base_delay=0.1, max_delay=0.4, seed=1,
            )
            server = await starter
            server.close()
            await server.wait_closed()
            return status, payload

        status, payload = asyncio.run(run())
        assert status == 200
        assert payload == {"version": 9, "acked_workers": 2}

    def test_unparseable_coordinator_response_is_a_502(self):
        async def run():
            async def serve(reader, writer):
                await reader.read(65536)
                writer.write(b"ceci n'est pas du HTTP")
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            status, payload = await forward_delta(
                "127.0.0.1", port, b"{}", attempts=1, seed=0
            )
            server.close()
            await server.wait_closed()
            return status, payload

        status, payload = asyncio.run(run())
        assert status == 502
        assert "unparseable" in payload["error"]


class _SinkWriter:
    def __init__(self):
        self.sent = b""

    def write(self, data):
        self.sent += data

    async def drain(self):
        return None


class TestRetryAfterHeader:
    def render(self, status, payload):
        writer = _SinkWriter()
        asyncio.run(write_http_response(writer, status, payload, keep_alive=False))
        head, _, body = writer.sent.partition(b"\r\n\r\n")
        return head, body

    def test_degraded_503_carries_retry_after(self):
        head, body = self.render(
            503, {"error": "coordinator unreachable", "retry_after_seconds": 7}
        )
        assert b"Retry-After: 7\r\n" in head
        assert json.loads(body)["retry_after_seconds"] == 7

    def test_429_carries_retry_after_too(self):
        head, _ = self.render(429, {"retry_after_seconds": 2})
        assert b"429" in head and b"Retry-After: 2\r\n" in head

    def test_success_never_carries_retry_after(self):
        head, _ = self.render(200, {"ok": True, "retry_after_seconds": 7})
        assert b"Retry-After" not in head

    def test_422_has_its_reason_phrase(self):
        head, _ = self.render(422, {"error": "poison delta"})
        assert head.startswith(b"HTTP/1.1 422 Unprocessable Entity")
