"""Published-artifact integrity: manifests, last-good scan, publish faults.

The contract under test is the publish write order (payload files ->
``manifest.json`` -> ``meta.json``) and what loaders do when any link in
that chain is broken: detect the corruption before mmap, and fall back to
the newest version that still verifies instead of serving garbage bytes.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.core.condenser import FreeHGC
from repro.datasets import load_acm
from repro.errors import IntegrityError, ServingError
from repro.models.hetero_sgc import HeteroSGC
from repro.serving import ServingController
from repro.serving.integrity import (
    MANIFEST_NAME,
    file_digest,
    last_good_version,
    read_manifest,
    verify_manifest,
    verify_version_dir,
    write_manifest,
)
from repro.serving.replicated.pool import (
    publish_version,
    published_session,
    set_current,
)
from repro.utils import faults
from repro.utils.faults import FaultInjector


@pytest.fixture(autouse=True)
def _clean_injector():
    faults.uninstall()
    yield
    faults.uninstall()


def flip_byte(path, offset=0):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]) if byte else b"\xff")


class TestManifestRoundtrip:
    def populate(self, vdir):
        vdir.mkdir(parents=True, exist_ok=True)
        (vdir / "a.bin").write_bytes(b"alpha" * 100)
        (vdir / "sub").mkdir()
        (vdir / "sub" / "b.bin").write_bytes(b"beta" * 100)
        return vdir

    def test_manifest_lists_payload_files_only(self, tmp_path):
        vdir = self.populate(tmp_path / "v1")
        (vdir / "meta.json").write_text("{}")
        manifest = write_manifest(vdir)
        assert manifest["algorithm"] == "sha256"
        # meta.json and the manifest itself are deliberately unlisted: meta
        # is written *after* the manifest, so it can't digest itself.
        assert sorted(manifest["files"]) == ["a.bin", "sub/b.bin"]
        assert manifest["files"]["a.bin"] == file_digest(vdir / "a.bin")
        assert read_manifest(vdir) == manifest

    def test_verify_passes_on_untouched_dir(self, tmp_path):
        vdir = self.populate(tmp_path / "v1")
        write_manifest(vdir)
        assert verify_manifest(vdir)["files"]

    def test_byte_flip_is_detected_and_named(self, tmp_path):
        vdir = self.populate(tmp_path / "v1")
        write_manifest(vdir)
        flip_byte(vdir / "sub" / "b.bin", offset=7)
        with pytest.raises(IntegrityError, match=r"sub/b\.bin.*mismatch"):
            verify_manifest(vdir)

    def test_missing_listed_file_is_detected(self, tmp_path):
        vdir = self.populate(tmp_path / "v1")
        write_manifest(vdir)
        (vdir / "a.bin").unlink()
        with pytest.raises(IntegrityError, match=r"a\.bin: missing"):
            verify_manifest(vdir)

    def test_extra_unlisted_file_is_tolerated(self, tmp_path):
        # The manifest pins what the publisher wrote, not the directory's
        # closure: sidecar files added later must not fail verification.
        vdir = self.populate(tmp_path / "v1")
        write_manifest(vdir)
        (vdir / "added-later.log").write_text("operator notes")
        verify_manifest(vdir)

    def test_absent_or_malformed_manifest_raises(self, tmp_path):
        vdir = self.populate(tmp_path / "v1")
        with pytest.raises(IntegrityError, match="no manifest"):
            read_manifest(vdir)
        (vdir / MANIFEST_NAME).write_text("[1, 2, 3]")
        with pytest.raises(IntegrityError, match="malformed"):
            read_manifest(vdir)
        (vdir / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(IntegrityError, match="unreadable"):
            read_manifest(vdir)

    def test_version_dir_needs_meta_and_manifest(self, tmp_path):
        # meta.json is the completion marker: a dir with a manifest but no
        # meta is an unfinished publish, and vice versa is tampering.
        vdir = self.populate(tmp_path / "v1")
        write_manifest(vdir)
        with pytest.raises(IntegrityError, match="incomplete publish"):
            verify_version_dir(vdir)
        (vdir / "meta.json").write_text("{}")
        verify_version_dir(vdir)
        (vdir / MANIFEST_NAME).unlink()
        with pytest.raises(IntegrityError, match="no manifest"):
            verify_version_dir(vdir)


def make_version(root, number, payload=b"payload"):
    vdir = root / "versions" / f"v{number:06d}"
    vdir.mkdir(parents=True)
    (vdir / "payload.bin").write_bytes(payload * 64)
    write_manifest(vdir)
    (vdir / "meta.json").write_text(json.dumps({"version": number}))
    return vdir


class TestLastGoodVersion:
    def test_newest_verifiable_wins(self, tmp_path):
        for number in (1, 2, 3):
            make_version(tmp_path, number)
        flip_byte(tmp_path / "versions" / "v000003" / "payload.bin")
        number, vdir = last_good_version(tmp_path)
        assert number == 2 and vdir.name == "v000002"

    def test_below_and_exclude_narrow_the_scan(self, tmp_path):
        for number in (1, 2, 3):
            make_version(tmp_path, number)
        assert last_good_version(tmp_path)[0] == 3
        assert last_good_version(tmp_path, below=3)[0] == 2
        assert last_good_version(tmp_path, below=3, exclude=(2,))[0] == 1

    def test_incomplete_publish_is_skipped(self, tmp_path):
        make_version(tmp_path, 1)
        newest = make_version(tmp_path, 2)
        (newest / "meta.json").unlink()  # publish never completed
        assert last_good_version(tmp_path)[0] == 1

    def test_nothing_verifiable_raises(self, tmp_path):
        with pytest.raises(ServingError, match="no verifiable"):
            last_good_version(tmp_path)
        make_version(tmp_path, 1)
        flip_byte(tmp_path / "versions" / "v000001" / "payload.bin")
        with pytest.raises(ServingError, match="no verifiable"):
            last_good_version(tmp_path)


# ---------------------------------------------------------------------- #
# Real publishes (bundle + logits) and the worker-side fallback
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def publishable():
    """One trained controller's bundle + logits, shared across the module."""
    controller = ServingController(
        load_acm(scale=0.1, seed=0),
        lambda: HeteroSGC(hidden_dim=8, epochs=5, max_hops=2, seed=0),
        model_name="heterosgc",
        ratio=0.3,
        condenser=FreeHGC(max_hops=2),
        seed=0,
        cache_size=64,
    )
    controller.start()
    return controller.export_bundle(), np.asarray(controller.session._logits)


class TestPublishFaultSites:
    def test_corrupt_file_fails_verification(self, tmp_path, publishable):
        bundle, logits = publishable
        injector = FaultInjector(seed=0)
        injector.plan("publish.corrupt_file", at=(1,), flip_at=64)
        with faults.injected(injector):
            vdir = publish_version(tmp_path, version=1, bundle=bundle, logits=logits)
        assert injector.fires["publish.corrupt_file"] == 1
        # The publish *completed* (meta exists) but the bytes betray it.
        assert (vdir / "meta.json").is_file()
        with pytest.raises(IntegrityError, match="mismatch"):
            verify_version_dir(vdir)

    def test_truncate_manifest_fails_the_read(self, tmp_path, publishable):
        bundle, logits = publishable
        injector = FaultInjector(seed=0)
        injector.plan("publish.truncate_manifest", at=(1,), keep_bytes=10)
        with faults.injected(injector):
            vdir = publish_version(tmp_path, version=1, bundle=bundle, logits=logits)
        assert injector.fires["publish.truncate_manifest"] == 1
        with pytest.raises(IntegrityError):
            read_manifest(vdir)
        with pytest.raises(IntegrityError):
            verify_version_dir(vdir)

    def test_clean_publish_verifies(self, tmp_path, publishable):
        bundle, logits = publishable
        vdir = publish_version(tmp_path, version=1, bundle=bundle, logits=logits)
        manifest = verify_version_dir(vdir)
        assert "logits.npy" in manifest["files"]


class TestPublishedSessionFallback:
    def publish_two(self, root, publishable):
        bundle, logits = publishable
        for version in (1, 2):
            publish_version(root, version=version, bundle=bundle, logits=logits)
        set_current(root, 2)

    def test_corrupt_current_falls_back_to_last_good(self, tmp_path, publishable):
        self.publish_two(tmp_path, publishable)
        flip_byte(tmp_path / "versions" / "v000002" / "logits.npy", offset=128)
        session = published_session(tmp_path, cache_size=16)
        # Callers detect the fallback by the version mismatch.
        assert session.version == 1
        _, logits = publishable
        ids = np.arange(min(32, logits.shape[0]))
        assert np.array_equal(session.predict(ids), logits[ids].argmax(axis=1))

    def test_fallback_false_surfaces_the_integrity_error(
        self, tmp_path, publishable
    ):
        self.publish_two(tmp_path, publishable)
        flip_byte(tmp_path / "versions" / "v000002" / "logits.npy", offset=128)
        with pytest.raises(IntegrityError):
            published_session(tmp_path, fallback=False)

    def test_no_version_verifies_raises(self, tmp_path, publishable):
        self.publish_two(tmp_path, publishable)
        for name in ("v000001", "v000002"):
            flip_byte(tmp_path / "versions" / name / "logits.npy", offset=128)
        with pytest.raises(ServingError):
            published_session(tmp_path)

    def test_nuked_dir_falls_back_too(self, tmp_path, publishable):
        # Not just bit rot: the whole CURRENT directory going missing (an
        # overeager cleanup job) must also land on the previous version.
        self.publish_two(tmp_path, publishable)
        shutil.rmtree(tmp_path / "versions" / "v000002")
        assert published_session(tmp_path, cache_size=16).version == 1
