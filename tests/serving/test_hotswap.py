"""ServingController hot-swap: retrain skipping, dirty sets, cache carry-over."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.condenser import FreeHGC
from repro.datasets import load_acm
from repro.errors import ServingError
from repro.models.hetero_sgc import HeteroSGC
from repro.models.propagation import propagate_metapath_features
from repro.serving import ModelBundle, ServingController
from repro.streaming import DeltaApplier, GraphDelta
from repro.streaming.incremental import graphs_equal

MAX_HOPS = 2


def make_controller(scale=0.15, ratio=0.3, cache_size=512, seed=0):
    graph = load_acm(scale=scale, seed=seed)
    factory = lambda: HeteroSGC(hidden_dim=16, epochs=25, max_hops=MAX_HOPS, seed=0)
    return ServingController(
        graph,
        factory,
        model_name="heterosgc",
        ratio=ratio,
        condenser=FreeHGC(max_hops=MAX_HOPS),
        recondense_threshold=0.05,
        seed=0,
        cache_size=cache_size,
    )


def small_edge_delta(graph, step=1, seed=0, n=3):
    rng = np.random.default_rng(seed)
    coo = graph.adjacency["paper-term"].tocoo()
    picked = rng.choice(coo.nnz, size=n, replace=False)
    return GraphDelta(
        remove_edges={"paper-term": (coo.row[picked], coo.col[picked])}, step=step
    )


class TestLifecycle:
    def test_session_before_start_raises(self):
        controller = make_controller()
        with pytest.raises(ServingError):
            controller.session
        with pytest.raises(ServingError):
            controller.apply_delta(GraphDelta())
        with pytest.raises(ServingError):
            controller.export_bundle()

    def test_start_serves_offline_predictions(self):
        controller = make_controller()
        session = controller.start()
        ids = np.arange(session.num_targets)
        assert np.array_equal(session.predict(ids), controller._model.predict(controller.graph))
        assert controller.version == 1 and not controller.warm_started

    def test_warm_start_from_matching_bundle(self):
        controller = make_controller()
        controller.start()
        bundle = controller.export_bundle()
        fresh = make_controller()
        session = fresh.start(warm_bundle=bundle)
        assert fresh.warm_started
        ids = np.arange(session.num_targets)
        assert np.array_equal(session.predict(ids), controller.session.predict(ids))

    def test_mismatched_bundle_triggers_cold_train(self):
        controller = make_controller()
        controller.start()
        bundle = controller.export_bundle()
        different = make_controller(ratio=0.5)  # different condensation
        different.start(warm_bundle=bundle)
        assert not different.warm_started


class TestSwap:
    def test_swap_bumps_version_and_stays_correct(self):
        controller = make_controller()
        controller.start()
        report = controller.apply_delta(small_edge_delta(controller.graph))
        assert report.version == 2 and controller.version == 2
        session = controller.session
        ids = np.arange(session.num_targets)
        assert np.array_equal(
            session.predict(ids), controller._model.predict(controller.graph)
        )
        assert controller.stats["swaps"] == 1

    def test_retrain_skipped_when_condensed_identical(self):
        controller = make_controller()
        controller.start()
        before = controller._condensed
        # an empty delta provably changes nothing
        report = controller.apply_delta(GraphDelta(step=1))
        assert not report.retrained
        assert graphs_equal(controller._condensed, before)
        assert report.train_seconds == 0.0

    def test_retrained_model_matches_scratch_training(self):
        controller = make_controller()
        controller.start()
        delta = GraphDelta(
            remove_nodes={"author": np.array([0, 1, 2, 3, 4])}, step=1
        )
        report = controller.apply_delta(delta)
        # deterministic training: a scratch model on the same condensed
        # graph must predict identically to the swapped-in one
        scratch = HeteroSGC(hidden_dim=16, epochs=25, max_hops=MAX_HOPS, seed=0)
        scratch.fit(controller._condensed)
        assert np.array_equal(
            scratch.predict(controller.graph),
            controller._model.predict(controller.graph),
        )
        assert report.version == 2

    def test_full_fallback_flushes_cache(self):
        controller = make_controller()
        controller.start()
        # huge delta: remove most of one relation -> full recondense path
        coo = controller.graph.adjacency["paper-author"].tocoo()
        half = coo.nnz // 2
        delta = GraphDelta(
            remove_edges={"paper-author": (coo.row[:half], coo.col[:half])}, step=1
        )
        report = controller.apply_delta(delta)
        assert report.mode == "full"
        assert report.dirty_count == -1 and report.cache_carried == 0


def two_island_graph():
    """Two disconnected paper/author islands: deltas in one island must
    leave every target of the other island provably clean."""
    from repro.hetero import HeteroGraphBuilder, HeteroSchema, Relation

    schema = HeteroSchema(
        node_types=("paper", "author"),
        relations=(Relation("writes", "author", "paper"),),
        target_type="paper",
        num_classes=2,
        name="islands",
    )
    rng = np.random.default_rng(0)
    builder = HeteroGraphBuilder(schema)
    builder.add_nodes("paper", 20, rng.standard_normal((20, 4)))
    builder.add_nodes("author", 10, rng.standard_normal((10, 4)))
    # island A: papers 0-9 / authors 0-4; island B: papers 10-19 / authors 5-9
    src = np.array([p % 5 for p in range(10)] + [5 + p % 5 for p in range(10)])
    dst = np.arange(20)
    builder.add_edges("writes", src, dst)
    builder.set_labels((np.arange(20) % 2).astype(np.int64))
    builder.set_splits(
        train=np.arange(0, 12), val=np.arange(12, 16), test=np.arange(16, 20)
    )
    return builder.build()


class TestDirtySetContract:
    def test_dirty_set_is_sound_and_partial(self):
        """Targets outside the dirty set keep byte-identical features, and
        an island untouched by the delta stays entirely clean."""
        graph = two_island_graph()
        from repro.core.context import CondensationContext

        context = CondensationContext(graph, max_hops=MAX_HOPS, max_paths=16)
        context.metapaths()  # warm the path enumeration
        before = propagate_metapath_features(graph, max_hops=MAX_HOPS, max_paths=16)
        # remove one island-A edge (author 0 -> paper 0)
        delta = GraphDelta(
            remove_edges={"writes": (np.array([0]), np.array([0]))}, step=1
        )
        report = DeltaApplier().apply(graph, delta, context=context)
        assert report.dirty_targets is not None
        after = propagate_metapath_features(graph, max_hops=MAX_HOPS, max_paths=16)
        clean = np.setdiff1d(np.arange(20), report.dirty_targets)
        # island B (papers 10-19) is unreachable from the edit
        assert np.intersect1d(report.dirty_targets, np.arange(10, 20)).size == 0
        assert clean.size >= 10
        for key in before:
            assert np.array_equal(before[key][clean], after[key][clean]), key
        # and the dirty set covers every row that actually changed
        changed = np.zeros(20, dtype=bool)
        for key in before:
            changed |= ~np.all(before[key] == after[key], axis=1)
        assert np.isin(np.nonzero(changed)[0], report.dirty_targets).all()

    def test_dirty_set_sound_on_dense_graph(self):
        """Same soundness property on a realistic (densely connected) graph."""
        graph = load_acm(scale=0.15, seed=0)
        from repro.core.context import CondensationContext

        context = CondensationContext(graph, max_hops=MAX_HOPS, max_paths=16)
        context.metapaths()
        before = propagate_metapath_features(graph, max_hops=MAX_HOPS, max_paths=16)
        delta = small_edge_delta(graph, seed=3, n=2)
        report = DeltaApplier().apply(graph, delta, context=context)
        assert report.dirty_targets is not None
        after = propagate_metapath_features(graph, max_hops=MAX_HOPS, max_paths=16)
        clean = np.setdiff1d(
            np.arange(graph.num_nodes[graph.schema.target_type]),
            report.dirty_targets,
        )
        for key in before:
            assert np.array_equal(before[key][clean], after[key][clean]), key

    def test_dirty_set_none_without_context(self):
        graph = load_acm(scale=0.15, seed=0)
        report = DeltaApplier().apply(graph, small_edge_delta(graph))
        assert report.dirty_targets is None

    def test_carried_cache_entries_are_correct(self):
        controller = make_controller(cache_size=4096)
        controller.start()
        ids = np.arange(controller.session.num_targets)
        controller.session.predict(ids)  # fill the cache completely
        report = controller.apply_delta(
            small_edge_delta(controller.graph, seed=3, n=1)
        )
        assert not report.retrained and report.cache_carried > 0
        session = controller.session
        # cached answers (carried entries included) must equal the raw logits
        raw = np.argmax(session.logits(ids), axis=-1)
        assert np.array_equal(session.predict(ids), raw)

    def test_empty_delta_has_empty_dirty_set(self):
        controller = make_controller()
        controller.start()
        report = controller.apply_delta(GraphDelta(step=4))
        assert report.dirty_count == 0

    def test_hop_mismatch_disables_cache_carry_over(self):
        """The dirty set bounds a condenser-hop propagation; a model that
        reaches further must never inherit cached labels."""
        graph = load_acm(scale=0.15, seed=0)
        factory = lambda: HeteroSGC(hidden_dim=16, epochs=25, max_hops=3, seed=0)
        controller = ServingController(
            graph,
            factory,
            model_name="heterosgc",
            ratio=0.3,
            condenser=FreeHGC(max_hops=2),  # narrower than the model
            seed=0,
            cache_size=4096,
        )
        controller.start()
        controller.session.predict(np.arange(controller.session.num_targets))
        report = controller.apply_delta(
            small_edge_delta(controller.graph, seed=3, n=1)
        )
        assert report.cache_carried == 0
        assert not controller._carry_cache
