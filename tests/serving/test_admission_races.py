"""Race tests for AdmissionGate: exact accounting under concurrent producers.

The gate is the only thing standing between an overloaded replica and
unbounded queueing, so its counters must be *exact* under contention — a
shed counter that drifts from the number of 429s returned would make the
metrics lie precisely when they matter most.
"""

from __future__ import annotations

import threading

import pytest

from repro.serving.replicated.admission import AdmissionGate
from repro.serving.replicated.metrics import MetricsBoard


def hammer(gate, *, threads_n, per_thread, hold=None):
    """Concurrent producers; returns (admitted 'requests', shed 'requests')."""
    barrier = threading.Barrier(threads_n)
    admitted = [0] * threads_n
    shed = [0] * threads_n
    max_depth = [0] * threads_n

    def worker(i):
        barrier.wait()
        for _ in range(per_thread):
            if gate.try_enter():
                admitted[i] += 1
                max_depth[i] = max(max_depth[i], gate.depth)
                if hold is not None:
                    hold()
                gate.leave()
            else:
                shed[i] += 1

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return sum(admitted), sum(shed), max(max_depth)


class TestConcurrentAccounting:
    @pytest.mark.parametrize("capacity", [1, 2, 8])
    def test_counters_exactly_partition_requests(self, capacity):
        gate = AdmissionGate(capacity)
        threads_n, per_thread = 8, 400
        admitted, shed, max_depth = hammer(
            gate, threads_n=threads_n, per_thread=per_thread
        )
        total = threads_n * per_thread
        # Every request is either admitted or shed — no third outcome, no
        # double counting — and the gate's counters agree with the callers'.
        assert admitted + shed == total
        assert gate.admitted == admitted
        assert gate.shed == shed
        assert gate.stats["admitted"] == admitted
        assert gate.stats["shed"] == shed

    @pytest.mark.parametrize("capacity", [1, 3])
    def test_in_flight_never_exceeds_capacity(self, capacity):
        gate = AdmissionGate(capacity)
        event = threading.Event()
        _, shed, max_depth = hammer(
            gate, threads_n=8, per_thread=100, hold=lambda: event.wait(0.0002)
        )
        assert max_depth <= capacity
        assert shed > 0  # contention actually happened
        assert gate.depth == 0  # everyone left

    def test_unbounded_gate_never_sheds(self):
        gate = AdmissionGate(0)
        admitted, shed, _ = hammer(gate, threads_n=6, per_thread=200)
        assert shed == 0
        assert admitted == 6 * 200
        assert gate.depth == 0

    def test_slow_requests_force_shedding(self):
        # Holding the slot briefly makes overlap (and thus 429s) certain.
        gate = AdmissionGate(2)
        event = threading.Event()
        admitted, shed, max_depth = hammer(
            gate, threads_n=6, per_thread=30, hold=lambda: event.wait(0.0005)
        )
        assert shed > 0
        assert max_depth <= 2
        assert admitted + shed == 6 * 30
        assert gate.admitted + gate.shed == 6 * 30


class TestMetricsIntegration:
    def test_queue_depth_gauge_returns_to_zero(self, tmp_path):
        board = MetricsBoard.create(tmp_path / "metrics.bin", slots=1)
        gate = AdmissionGate(4, metrics=board.slot(0))
        admitted, shed, _ = hammer(gate, threads_n=6, per_thread=200)
        assert admitted + shed == 6 * 200
        assert gate.depth == 0
        assert int(board.column("queue_depth")[0]) == 0

    def test_leave_without_enter_is_clamped(self):
        gate = AdmissionGate(2)
        gate.leave()  # misuse: must clamp, not go negative
        assert gate.depth == 0
        assert gate.try_enter()
        gate.leave()
        assert gate.depth == 0
