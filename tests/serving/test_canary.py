"""Canary-gated swaps: pinned ids, the three checks, rollback on rejection.

The cheap tests score hand-built logits sessions directly through
:func:`evaluate_candidate`; the controller-level tests prove the
operational contract — a rejected candidate never becomes ``session`` and
the previous version keeps answering.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.condenser import FreeHGC
from repro.datasets import load_acm
from repro.errors import CanaryRejectedError, ConfigurationError
from repro.models.hetero_sgc import HeteroSGC
from repro.serving import ServingController
from repro.serving.canary import (
    CanaryConfig,
    evaluate_candidate,
    pin_canary_ids,
)
from repro.serving.engine import InferenceSession
from repro.streaming import GraphDelta
from repro.utils import faults
from repro.utils.faults import FaultInjector


@pytest.fixture(autouse=True)
def _clean_injector():
    faults.uninstall()
    yield
    faults.uninstall()


def session_from(logits, version=1):
    return InferenceSession.from_logits(
        np.asarray(logits, dtype=np.float64), version=version, cache_size=8
    )


def one_hot(labels, classes=4, scale=1.0):
    logits = np.zeros((len(labels), classes))
    logits[np.arange(len(labels)), labels] = scale
    return logits


class TestPinCanaryIds:
    def test_deterministic_sorted_unique(self):
        first = pin_canary_ids(1000, size=64, seed=3)
        second = pin_canary_ids(1000, size=64, seed=3)
        assert np.array_equal(first, second)
        assert np.array_equal(first, np.sort(first))
        assert len(np.unique(first)) == 64
        assert first.dtype == np.int64

    def test_different_seeds_probe_different_nodes(self):
        assert not np.array_equal(
            pin_canary_ids(1000, size=64, seed=0), pin_canary_ids(1000, size=64, seed=1)
        )

    def test_bounded_by_pool_size(self):
        ids = pin_canary_ids(10, size=64, seed=0)
        assert len(ids) == 10 and ids.max() < 10

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CanaryConfig(size=0)
        with pytest.raises(ConfigurationError):
            CanaryConfig(min_consistency=1.5)
        with pytest.raises(ConfigurationError):
            CanaryConfig(accuracy_floor=-0.1)


class TestEvaluateCandidate:
    def test_clean_identical_candidate_passes(self):
        logits = one_hot([0, 1, 2, 3, 0, 1])
        report = evaluate_candidate(
            session_from(logits, 2),
            session_from(logits, 1),
            np.arange(6),
            config=CanaryConfig(size=6),
        )
        assert report.passed and report.finite is True
        assert report.consistency == 1.0
        assert report.reasons == []

    def test_nan_row_fails_the_finite_check(self):
        logits = one_hot([0, 1, 2, 3])
        bad = logits.copy()
        bad[2] = np.nan  # argmax would launder this into label 0
        report = evaluate_candidate(
            session_from(bad, 2),
            session_from(logits, 1),
            np.arange(4),
            config=CanaryConfig(size=4),
        )
        assert not report.passed and report.finite is False
        assert any("non-finite" in reason for reason in report.reasons)

    def test_consistency_floor_rejects_label_churn(self):
        previous = one_hot([0, 1, 2, 3, 0, 1, 2, 3])
        candidate = previous.copy()
        candidate[:4] = one_hot([1, 2, 3, 0])  # half the canary flips
        report = evaluate_candidate(
            session_from(candidate, 2),
            session_from(previous, 1),
            np.arange(8),
            config=CanaryConfig(size=8, min_consistency=0.9),
        )
        assert not report.passed
        assert report.consistency == 0.5
        assert any("consistency" in reason for reason in report.reasons)

    def test_dirty_ids_do_not_vote(self):
        # Changing dirty nodes' labels is the *point* of the swap: the same
        # churn passes once the flipped ids are in the delta's dirty set.
        previous = one_hot([0, 1, 2, 3, 0, 1, 2, 3])
        candidate = previous.copy()
        candidate[:4] = one_hot([1, 2, 3, 0])
        report = evaluate_candidate(
            session_from(candidate, 2),
            session_from(previous, 1),
            np.arange(8),
            dirty=np.arange(4),
            config=CanaryConfig(size=8, min_consistency=0.9),
        )
        assert report.passed
        assert report.clean_ids == 4 and report.consistency == 1.0

    def test_first_deploy_has_no_consistency_vote(self):
        report = evaluate_candidate(
            session_from(one_hot([0, 1, 2, 3]), 1),
            None,
            np.arange(4),
            config=CanaryConfig(size=4),
        )
        assert report.passed and report.consistency is None

    def test_accuracy_floor_uses_graph_labels(self):
        truth = np.array([0, 1, 2, 3, 0, 1, 2, 3])
        candidate = session_from(one_hot([0, 1, 2, 3, 1, 2, 3, 0]), 2)  # 4/8 right
        candidate.graph = SimpleNamespace(labels=truth)
        config = CanaryConfig(size=8, min_consistency=0.0, accuracy_floor=0.9)
        report = evaluate_candidate(candidate, None, np.arange(8), config=config)
        assert not report.passed
        assert report.accuracy == pytest.approx(0.5)
        assert any("accuracy" in reason for reason in report.reasons)

    def test_accuracy_skipped_without_a_graph(self):
        # mmap'd worker sessions hold no graph: the accuracy check must
        # silently stand down instead of failing every swap.
        config = CanaryConfig(size=4, accuracy_floor=0.9)
        report = evaluate_candidate(
            session_from(one_hot([0, 1, 2, 3]), 2),
            session_from(one_hot([0, 1, 2, 3]), 1),
            np.arange(4),
            config=config,
        )
        assert report.passed and report.accuracy is None

    def test_force_reject_fault_site(self):
        logits = one_hot([0, 1, 2, 3])
        injector = FaultInjector(seed=0)
        injector.plan("canary.force_reject", at=(1,))
        with faults.injected(injector):
            report = evaluate_candidate(
                session_from(logits, 2),
                session_from(logits, 1),
                np.arange(4),
                config=CanaryConfig(size=4),
            )
        assert injector.fires["canary.force_reject"] == 1
        assert not report.passed
        assert any("injected" in reason for reason in report.reasons)


class TestControllerGate:
    def make_controller(self, canary):
        controller = ServingController(
            load_acm(scale=0.1, seed=0),
            lambda: HeteroSGC(hidden_dim=8, epochs=5, max_hops=2, seed=0),
            model_name="heterosgc",
            ratio=0.3,
            condenser=FreeHGC(max_hops=2),
            recondense_threshold=0.5,
            seed=0,
            cache_size=64,
            canary=canary,
        )
        controller.start()
        return controller

    def churn(self, graph, step):
        coo = graph.adjacency["paper-term"].tocoo()
        lo = (step - 1) * 3
        return GraphDelta(
            remove_edges={"paper-term": (coo.row[lo : lo + 3], coo.col[lo : lo + 3])},
            step=step,
        )

    def test_rejection_rolls_back_and_keeps_serving(self):
        controller = self.make_controller(
            CanaryConfig(size=16, min_consistency=0.0, seed=0)
        )
        before_session = controller.session
        before_version = controller.version
        ids = np.arange(16)
        before_labels = before_session.predict(ids)
        injector = FaultInjector(seed=0)
        injector.plan("canary.force_reject", at=(1,))
        with faults.injected(injector):
            with pytest.raises(CanaryRejectedError) as excinfo:
                controller.apply_delta(self.churn(controller.graph, 1))
        # Rollback == the candidate was never assigned: same object, same
        # version, same answers, and the rejection is visible in /stats.
        assert controller.session is before_session
        assert controller.version == before_version
        assert np.array_equal(controller.session.predict(ids), before_labels)
        assert controller.canary_rejections == 1
        assert excinfo.value.report["passed"] is False
        stats = controller.stats
        assert stats["canary_evaluations"] == 1
        assert stats["canary_rejections"] == 1
        assert stats["swaps"] == 0

    def test_passing_candidate_swaps_and_records_the_report(self):
        controller = self.make_controller(
            CanaryConfig(size=16, min_consistency=0.0, seed=0)
        )
        report = controller.apply_delta(self.churn(controller.graph, 1))
        assert report.version == 2 and controller.version == 2
        assert controller.canary_rejections == 0
        assert len(controller.canary_history) == 1
        assert controller.canary_history[0].passed

    def test_no_canary_config_means_no_gate(self):
        controller = self.make_controller(None)
        injector = FaultInjector(seed=0)
        injector.plan("canary.force_reject", at=(1,))
        with faults.injected(injector):
            report = controller.apply_delta(self.churn(controller.graph, 1))
        # evaluate_candidate never ran, so the planned fault never fired.
        assert injector.fires.get("canary.force_reject", 0) == 0
        assert report.version == 2
        assert controller.stats["canary_evaluations"] == 0
