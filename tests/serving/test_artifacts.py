"""Model-bundle persistence and the versioned ModelStore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.condenser import FreeHGC
from repro.datasets import load_acm
from repro.errors import ServingError, StateDictError
from repro.models.hetero_sgc import HeteroSGC
from repro.serving import (
    BUNDLE_FORMAT,
    InferenceSession,
    ModelBundle,
    ModelStore,
    load_bundle,
    save_bundle,
)
from repro.streaming.incremental import assert_graphs_equal


@pytest.fixture(scope="module")
def trained():
    graph = load_acm(scale=0.15, seed=0)
    condensed = FreeHGC(max_hops=2).condense(graph, ratio=0.3, seed=0)
    model = HeteroSGC(hidden_dim=16, epochs=25, max_hops=2, seed=0)
    model.fit(condensed)
    return model, condensed, graph


class TestBundleRoundTrip:
    def test_save_load_identical_predictions(self, trained, tmp_path):
        model, condensed, graph = trained
        bundle = ModelBundle.from_model(
            "heterosgc", model, condensed, metadata={"dataset": "acm"}
        )
        path = save_bundle(bundle, tmp_path / "m.npz")
        loaded = load_bundle(path)
        assert loaded.model_name == "heterosgc"
        assert loaded.metadata == {"dataset": "acm"}
        assert_graphs_equal(loaded.condensed, condensed)
        restored = loaded.build_model()
        assert np.array_equal(restored.predict(graph), model.predict(graph))

    def test_restored_session_identical(self, trained, tmp_path):
        model, condensed, graph = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        path = save_bundle(bundle, tmp_path / "m.npz")
        restored = load_bundle(path).build_model()
        ids = np.arange(graph.num_nodes[graph.schema.target_type])
        original = InferenceSession(model, graph).predict(ids)
        assert np.array_equal(InferenceSession(restored, graph).predict(ids), original)

    def test_weights_round_trip_exactly(self, trained, tmp_path):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        loaded = load_bundle(save_bundle(bundle, tmp_path / "m.npz"))
        for name, value in bundle.weights.items():
            assert np.array_equal(loaded.weights[name], value)

    def test_alias_resolves_to_canonical(self, trained):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model("sgc", model, condensed)
        assert bundle.model_name == "heterosgc"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ServingError):
            load_bundle(tmp_path / "absent.npz")

    def test_corrupt_file_raises(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"definitely not a zip archive")
        with pytest.raises(ServingError):
            load_bundle(bad)

    def test_foreign_npz_raises(self, trained, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez_compressed(path, something=np.arange(3))
        with pytest.raises(ServingError):
            load_bundle(path)

    def test_future_format_raises(self, trained, tmp_path, monkeypatch):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        import repro.serving.artifacts as artifacts

        monkeypatch.setattr(artifacts, "BUNDLE_FORMAT", BUNDLE_FORMAT + 1)
        path = save_bundle(bundle, tmp_path / "future.npz")
        monkeypatch.setattr(artifacts, "BUNDLE_FORMAT", BUNDLE_FORMAT)
        with pytest.raises(ServingError):
            load_bundle(path)

    def test_tampered_weights_fail_strict_load(self, trained, tmp_path):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        first = next(iter(bundle.weights))
        bundle.weights[first] = bundle.weights[first][:1]
        loaded = load_bundle(save_bundle(bundle, tmp_path / "m.npz"))
        with pytest.raises(StateDictError):
            loaded.build_model()

    def test_failed_restore_leaves_model_unfitted(self, trained, tmp_path):
        """A bad weight set must not leave a random-init model looking fitted."""
        from repro.errors import ModelError

        model, condensed, _ = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        bundle.weights.pop(next(iter(bundle.weights)))
        loaded = load_bundle(save_bundle(bundle, tmp_path / "m.npz"))
        fresh = HeteroSGC(hidden_dim=16, epochs=25, max_hops=2, seed=0)
        with pytest.raises(StateDictError):
            fresh.restore_state(loaded.state, loaded.weights)
        with pytest.raises(ModelError):
            fresh.predict(trained[2])

    def test_numpy_metadata_values_serialise(self, trained, tmp_path):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model(
            "heterosgc",
            model,
            condensed,
            metadata={"accuracy": np.float64(0.93), "hist": np.array([1, 2])},
        )
        loaded = load_bundle(save_bundle(bundle, tmp_path / "m.npz"))
        assert loaded.metadata["accuracy"] == 0.93
        assert loaded.metadata["hist"] == [1, 2]


class TestDirLayout:
    """The uncompressed (memory-mappable) bundle directory layout."""

    def test_dir_round_trip_identical_predictions(self, trained, tmp_path):
        model, condensed, graph = trained
        bundle = ModelBundle.from_model(
            "heterosgc", model, condensed, metadata={"dataset": "acm"}
        )
        path = save_bundle(bundle, tmp_path / "m.bundle", layout="dir")
        assert path.is_dir() and (path / "header.json").exists()
        loaded = load_bundle(path)
        assert loaded.model_name == "heterosgc"
        assert loaded.metadata == {"dataset": "acm"}
        assert_graphs_equal(loaded.condensed, condensed)
        restored = loaded.build_model()
        assert np.array_equal(restored.predict(graph), model.predict(graph))

    def test_dir_layout_matches_npz_byte_for_byte(self, trained, tmp_path):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        from_npz = load_bundle(save_bundle(bundle, tmp_path / "m.npz"))
        from_dir = load_bundle(
            save_bundle(bundle, tmp_path / "m.bundle", layout="dir")
        )
        assert from_npz.state == from_dir.state
        assert set(from_npz.weights) == set(from_dir.weights)
        for name in from_npz.weights:
            assert np.array_equal(from_npz.weights[name], from_dir.weights[name])
        assert_graphs_equal(from_npz.condensed, from_dir.condensed)

    def test_mmap_load_shares_disk_pages(self, trained, tmp_path):
        model, condensed, graph = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        path = save_bundle(bundle, tmp_path / "m.bundle", layout="dir")
        mapped = load_bundle(path, mmap=True)
        # weights come back as read-only memory maps over the .npy files
        some_weight = next(iter(mapped.weights.values()))
        assert isinstance(some_weight, np.memmap)
        assert not some_weight.flags.writeable
        restored = mapped.build_model()
        assert np.array_equal(restored.predict(graph), model.predict(graph))

    def test_save_overwrites_existing_dir_atomically(self, trained, tmp_path):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        path = save_bundle(bundle, tmp_path / "m.bundle", layout="dir")
        bundle.metadata["rev"] = 2
        again = save_bundle(bundle, path, layout="dir")
        assert load_bundle(again).metadata == {"rev": 2}

    def test_unknown_layout_raises(self, trained, tmp_path):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        with pytest.raises(ServingError):
            save_bundle(bundle, tmp_path / "m", layout="tar")

    def test_dir_without_header_raises(self, tmp_path):
        empty = tmp_path / "not-a-bundle"
        empty.mkdir()
        with pytest.raises(ServingError):
            load_bundle(empty)

    def test_dir_with_corrupt_header_raises(self, tmp_path):
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "header.json").write_text("{not json")
        with pytest.raises(ServingError):
            load_bundle(broken)

    def test_future_format_dir_raises(self, trained, tmp_path, monkeypatch):
        model, condensed, _ = trained
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        import repro.serving.artifacts as artifacts

        monkeypatch.setattr(artifacts, "BUNDLE_FORMAT", BUNDLE_FORMAT + 1)
        path = save_bundle(bundle, tmp_path / "future", layout="dir")
        monkeypatch.setattr(artifacts, "BUNDLE_FORMAT", BUNDLE_FORMAT)
        with pytest.raises(ServingError):
            load_bundle(path)


class TestModelStore:
    def test_revisions_and_latest_wins(self, trained, tmp_path):
        model, condensed, graph = trained
        store = ModelStore(tmp_path)
        bundle = ModelBundle.from_model("heterosgc", model, condensed)
        assert "k" not in store
        store.put("k", bundle)
        assert store.revision_of("k") == 1
        store.put("k", bundle)
        assert store.revision_of("k") == 2
        assert "k" in store and store.keys() == {"k"}
        loaded = store.load("k")
        assert np.array_equal(
            loaded.build_model().predict(graph), model.predict(graph)
        )

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(ServingError):
            ModelStore(tmp_path).load("nope")

    def test_store_survives_reopen(self, trained, tmp_path):
        model, condensed, _ = trained
        ModelStore(tmp_path).put(
            "a:b:0.5", ModelBundle.from_model("heterosgc", model, condensed)
        )
        reopened = ModelStore(tmp_path)
        assert reopened.revision_of("a:b:0.5") == 1
        assert reopened.load("a:b:0.5").model_name == "heterosgc"

    def test_unsafe_key_characters_sanitised(self, trained, tmp_path):
        model, condensed, _ = trained
        store = ModelStore(tmp_path)
        record = store.put(
            "we/ird key!", ModelBundle.from_model("heterosgc", model, condensed)
        )
        path = tmp_path / str(record["result"]["path"])
        assert path.exists() and "/" not in path.name and "!" not in path.name
