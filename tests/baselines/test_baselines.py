"""Tests for every baseline reducer (coreset, coarsening, GCond, HGCond)."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    CoarseningHG,
    CondensedFeatureSet,
    GCond,
    HerdingHG,
    HGCond,
    KCenterHG,
    RandomHG,
    get_baseline,
    heavy_edge_matching,
    herding_select,
    kcenter_select,
    kmeans,
    orthogonal_parameter_sequence,
    per_class_budgets,
)
from repro.errors import BudgetError
import scipy.sparse as sp


class TestRegistry:
    def test_all_registered(self):
        assert set(BASELINE_REGISTRY) == {
            "random-hg",
            "herding-hg",
            "k-center-hg",
            "coarsening-hg",
            "gcond",
            "hgcond",
        }

    def test_get_baseline(self):
        assert isinstance(get_baseline("Random-HG"), RandomHG)

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            get_baseline("magic")


class TestPerClassBudgets:
    def test_sums_close_to_total(self, toy_graph):
        budgets = per_class_budgets(toy_graph, 8)
        assert sum(budgets.values()) <= 8 + toy_graph.num_classes
        assert all(v >= 1 for v in budgets.values())

    def test_every_present_class_gets_a_slot(self, toy_graph):
        budgets = per_class_budgets(toy_graph, 4)
        labels = set(toy_graph.labels[toy_graph.splits.train].tolist())
        assert set(budgets) == labels

    def test_budget_capped_by_pool(self, toy_graph):
        pool = toy_graph.splits.train[:3]
        budgets = per_class_budgets(toy_graph, 50, pool=pool)
        assert sum(budgets.values()) <= 3

    def test_invalid_budget(self, toy_graph):
        with pytest.raises(BudgetError):
            per_class_budgets(toy_graph, 0)


class TestSelectionPrimitives:
    def test_herding_select_prefers_mean(self):
        rng = np.random.default_rng(0)
        cluster = rng.standard_normal((50, 4))
        outlier = cluster.mean(axis=0) + 50.0
        points = np.vstack([cluster, outlier])
        chosen = herding_select(points, 5)
        assert 50 not in chosen  # the outlier is never herded first

    def test_herding_select_budget(self):
        points = np.random.default_rng(0).standard_normal((20, 3))
        assert herding_select(points, 7).shape == (7,)
        assert herding_select(points, 100).shape == (20,)
        assert herding_select(points, 0).shape == (0,)

    def test_herding_no_duplicates(self):
        points = np.random.default_rng(0).standard_normal((30, 3))
        chosen = herding_select(points, 10)
        assert len(set(chosen.tolist())) == 10

    def test_kcenter_spreads_out(self):
        rng = np.random.default_rng(0)
        clusters = np.vstack(
            [rng.standard_normal((20, 2)) + offset for offset in (0.0, 10.0, 20.0)]
        )
        chosen = kcenter_select(clusters, 3, rng)
        groups = {int(index) // 20 for index in chosen}
        assert len(groups) == 3

    def test_kcenter_budget(self):
        points = np.random.default_rng(0).standard_normal((15, 2))
        assert kcenter_select(points, 4, np.random.default_rng(1)).shape == (4,)

    def test_kmeans_basic(self):
        rng = np.random.default_rng(0)
        points = np.vstack(
            [rng.standard_normal((30, 2)), rng.standard_normal((30, 2)) + 20.0]
        )
        centroids, assignment = kmeans(points, 2, seed=0)
        assert centroids.shape == (2, 2)
        assert set(np.unique(assignment)) == {0, 1}
        # the two centroids are far apart
        assert np.linalg.norm(centroids[0] - centroids[1]) > 5.0

    def test_kmeans_clamps_k(self):
        points = np.random.default_rng(0).standard_normal((3, 2))
        centroids, _ = kmeans(points, 10, seed=0)
        assert centroids.shape[0] == 3

    def test_kmeans_empty_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 3)), 2)

    def test_heavy_edge_matching_budget(self):
        similarity = sp.csr_matrix(np.ones((10, 10)) - np.eye(10))
        clusters = heavy_edge_matching(similarity, 3, np.random.default_rng(0))
        assert clusters.shape == (10,)
        assert len(np.unique(clusters)) <= 3

    def test_heavy_edge_matching_trivial_budget(self):
        similarity = sp.csr_matrix((5, 5))
        clusters = heavy_edge_matching(similarity, 10, np.random.default_rng(0))
        assert np.array_equal(clusters, np.arange(5))

    def test_orthogonal_parameter_sequence(self):
        sequence = orthogonal_parameter_sequence(32, 3, 4, np.random.default_rng(0))
        assert len(sequence) == 4
        assert all(w.shape == (32, 3) for w in sequence)
        # blocks are mutually orthogonal
        inner = sequence[0].T @ sequence[1]
        assert np.abs(inner).max() < 1e-8


@pytest.mark.parametrize(
    "condenser_cls", [RandomHG, HerdingHG, KCenterHG, CoarseningHG]
)
class TestSelectionBaselines:
    def test_budget_and_validity(self, toy_graph, condenser_cls):
        condenser = condenser_cls()
        condensed = condenser.condense(toy_graph, 0.25, seed=0)
        condensed.validate()
        assert condensed.num_nodes["paper"] <= max(1, round(0.25 * 40)) + 1
        assert condensed.total_nodes < toy_graph.total_nodes

    def test_trainable_output(self, toy_graph, condenser_cls):
        from repro.models import HeteroSGC

        condensed = condenser_cls().condense(toy_graph, 0.3, seed=0)
        model = HeteroSGC(hidden_dim=16, epochs=40, max_hops=2, max_paths=8)
        model.fit(condensed)
        assert 0.0 <= model.evaluate(toy_graph) <= 1.0

    def test_invalid_ratio(self, toy_graph, condenser_cls):
        with pytest.raises(BudgetError):
            condenser_cls().condense(toy_graph, 0.0)

    def test_metadata(self, toy_graph, condenser_cls):
        condensed = condenser_cls().condense(toy_graph, 0.25, seed=0)
        assert condensed.metadata["method"] == condenser_cls.name


class TestCondensedFeatureSet:
    def test_consistency_checks(self):
        with pytest.raises(ValueError):
            CondensedFeatureSet(
                features={"a": np.zeros((3, 2)), "b": np.zeros((4, 2))},
                labels=np.zeros(3, int),
                num_classes=2,
            )
        with pytest.raises(ValueError):
            CondensedFeatureSet(
                features={"a": np.zeros((3, 2))}, labels=np.zeros(4, int), num_classes=2
            )

    def test_storage_and_size(self):
        fs = CondensedFeatureSet(
            features={"a": np.zeros((3, 2))}, labels=np.zeros(3, int), num_classes=2
        )
        assert fs.num_nodes == 3
        assert fs.storage_bytes() > 0


class TestGCond:
    def test_produces_feature_set(self, toy_graph):
        condenser = GCond(outer_iterations=3, inner_steps=2, relay_samples=1, max_hops=2)
        result = condenser.condense(toy_graph, 0.2, seed=0)
        assert isinstance(result, CondensedFeatureSet)
        assert result.num_nodes >= toy_graph.num_classes
        assert result.metadata["method"] == "GCond"

    def test_feature_keys_match_propagation(self, toy_graph):
        from repro.models.propagation import propagate_metapath_features

        condenser = GCond(outer_iterations=2, inner_steps=1, relay_samples=1, max_hops=2)
        result = condenser.condense(toy_graph, 0.2, seed=0)
        expected = set(propagate_metapath_features(toy_graph, max_hops=2, max_paths=16))
        assert set(result.features) == expected

    def test_trainable_output(self, toy_graph):
        from repro.models import SeHGNN

        condenser = GCond(outer_iterations=3, inner_steps=2, relay_samples=1, max_hops=2)
        result = condenser.condense(toy_graph, 0.25, seed=0)
        model = SeHGNN(hidden_dim=16, epochs=40, max_hops=2)
        model.fit_from_features(result.features, result.labels, result.num_classes)
        assert model.evaluate(toy_graph) > 0.5


class TestHGCond:
    def test_produces_hetero_graph(self, toy_graph):
        condenser = HGCond(outer_iterations=2, inner_steps=2, ops_length=2)
        condensed = condenser.condense(toy_graph, 0.2, seed=0)
        condensed.validate()
        assert condensed.metadata["method"] == "HGCond"
        assert condensed.num_nodes["paper"] <= max(1, round(0.2 * 40)) + 2

    def test_every_type_has_synthetic_nodes(self, toy_graph):
        condensed = HGCond(outer_iterations=1, inner_steps=1, ops_length=1).condense(
            toy_graph, 0.2, seed=0
        )
        assert all(count >= 1 for count in condensed.num_nodes.values())

    def test_all_synthetic_targets_are_training_nodes(self, toy_graph):
        condensed = HGCond(outer_iterations=1, inner_steps=1, ops_length=1).condense(
            toy_graph, 0.2, seed=0
        )
        assert condensed.splits.train.size == condensed.num_nodes["paper"]
        assert np.all(condensed.labels >= 0)

    def test_trainable_output(self, toy_graph):
        from repro.models import SeHGNN

        condensed = HGCond(outer_iterations=2, inner_steps=2, ops_length=2).condense(
            toy_graph, 0.3, seed=0
        )
        model = SeHGNN(hidden_dim=16, epochs=40, max_hops=2)
        model.fit(condensed)
        assert model.evaluate(toy_graph) > 0.5

    def test_takes_longer_than_freehgc(self, tiny_acm):
        """The bi-level optimisation must be slower than training-free selection."""
        import time

        from repro.core import FreeHGC

        start = time.perf_counter()
        FreeHGC(max_hops=2, max_paths=8).condense(tiny_acm, 0.1, seed=0)
        free_time = time.perf_counter() - start
        start = time.perf_counter()
        HGCond(outer_iterations=20, inner_steps=6, ops_length=4).condense(
            tiny_acm, 0.1, seed=0
        )
        hgcond_time = time.perf_counter() - start
        assert hgcond_time > free_time
