"""CLI coverage for the serving additions: serve, list --json, exit codes."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.runner.cli import main
from repro.runner.plan import ServeConfig

SRC = Path(__file__).resolve().parents[2] / "src"

SELFTEST_ARGS = [
    "serve",
    "--dataset", "acm",
    "--ratio", "0.2",
    "--scale", "0.1",
    "--max-hops", "2",
    "--epochs", "10",
    "--hidden-dim", "8",
    "--port", "0",
    "--selftest", "2",
]


def run_cli(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestExitCodes:
    def test_unknown_subcommand_returns_2_without_traceback(self, capsys):
        assert main(["definitely-not-a-command"]) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_no_command_returns_2(self, capsys):
        assert main([]) == 2

    def test_help_returns_0(self, capsys):
        assert main(["--help"]) == 0
        assert "serve" in capsys.readouterr().out

    def test_bad_option_value_returns_2(self, capsys):
        assert main(["sweep", "--dataset", "acm", "--ratios", "not-a-float"]) == 2

    def test_unknown_subcommand_subprocess_exits_2(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "nosuch"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr


class TestListJson:
    def test_json_listing_is_valid_and_complete(self, capsys):
        code, out = run_cli(["list", "--json"], capsys)
        assert code == 0
        payload = json.loads(out)
        for section in (
            "datasets", "condensers", "models",
            "target-stages", "other-stages", "serving",
        ):
            assert section in payload
        assert "freehgc" in payload["condensers"]
        assert payload["datasets"]["acm"]["max_hops"] >= 1
        assert payload["datasets"]["acm"]["paper_ratios"]

    def test_json_serving_section(self, capsys):
        code, out = run_cli(["list", "serving", "--json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {"serving"}
        serving = payload["serving"]
        assert "engine" in serving["components"]
        assert "replicated" in serving["components"]
        assert "wal" in serving["components"]
        assert "POST /predict" in serving["endpoints"]
        assert "GET /metrics" in serving["endpoints"]
        assert serving["subcommand"] == "python -m repro serve"

    def test_plain_listing_includes_serving(self, capsys):
        code, out = run_cli(["list"], capsys)
        assert code == 0
        assert "serving:" in out
        assert "InferenceSession" in out

    def test_single_registry_json(self, capsys):
        code, out = run_cli(["list", "models", "--json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {"models"}
        assert "heterosgc" in payload["models"]


class TestServeConfig:
    def test_rejects_bad_ratio(self):
        with pytest.raises(ReproError):
            ServeConfig(dataset="acm", ratio=0.0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ReproError):
            ServeConfig(dataset="acm", ratio=0.1, max_batch=0)

    def test_rejects_negative_cache(self):
        with pytest.raises(ReproError):
            ServeConfig(dataset="acm", ratio=0.1, cache_size=-1)

    def test_workers_require_wal(self):
        with pytest.raises(ReproError, match="--wal"):
            ServeConfig(dataset="acm", ratio=0.1, workers=2)
        ServeConfig(dataset="acm", ratio=0.1, workers=2, wal="/tmp/wal.log")

    def test_rejects_negative_replication_knobs(self):
        with pytest.raises(ReproError):
            ServeConfig(dataset="acm", ratio=0.1, workers=-1)
        with pytest.raises(ReproError):
            ServeConfig(dataset="acm", ratio=0.1, snapshot_every=-1)
        with pytest.raises(ReproError):
            ServeConfig(dataset="acm", ratio=0.1, max_pending=-1)
        with pytest.raises(ReproError):
            ServeConfig(dataset="acm", ratio=0.1, max_body_bytes=0)

    def test_bundle_key_is_stable_and_distinct(self):
        a = ServeConfig(dataset="acm", ratio=0.1)
        b = ServeConfig(dataset="acm", ratio=0.1)
        c = ServeConfig(dataset="acm", ratio=0.2)
        assert a.bundle_key() == b.bundle_key() != c.bundle_key()


class TestServeSelftest:
    def test_selftest_passes_end_to_end(self, capsys):
        code, out = run_cli(SELFTEST_ARGS, capsys)
        assert code == 0
        assert "0 failures" in out

    def test_selftest_with_bundle_store_warm_starts(self, tmp_path, capsys):
        args = SELFTEST_ARGS + ["--bundle-store", str(tmp_path / "bundles")]
        code, out = run_cli(args, capsys)
        assert code == 0
        assert "cold start" in out and "persisted bundle" in out
        code, out = run_cli(args, capsys)
        assert code == 0
        assert "warm-started from stored bundle" in out
