"""``python -m repro trace`` and the ``--trace`` flag on existing commands."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.report import REPORT_SCHEMA
from repro.obs.spans import TRACE_SCHEMA_VERSION, read_trace
from repro.runner.cli import main

STREAM_ARGS = [
    "stream",
    "--dataset", "acm",
    "--ratio", "0.2",
    "--steps", "2",
    "--scale", "0.1",
    "--max-hops", "2",
    "--quiet",
]


@pytest.fixture(autouse=True)
def clean_tracer():
    yield
    obs.uninstall()


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


class TestTraceRecord:
    def test_records_inner_command_spans(self, tmp_path, capsys):
        out_path = tmp_path / "run.jsonl"
        code, out = run_cli(
            ["trace", "record", "--out", str(out_path), "--", *STREAM_ARGS], capsys
        )
        assert code == 0
        assert "recorded" in out and str(out_path) in out
        header, spans = read_trace(out_path)
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert spans
        names = {s.name for s in spans}
        assert "stream.step" in names
        assert "condense.pipeline" in names
        assert obs.active() is None  # uninstalled after the run

    def test_json_output_is_a_report(self, tmp_path, capsys):
        out_path = tmp_path / "run.jsonl"
        code, out = run_cli(
            ["trace", "record", "--json", "--out", str(out_path), "--", *STREAM_ARGS],
            capsys,
        )
        assert code == 0
        # the inner command owns stdout while it runs; the report JSON is
        # the final document
        obj = json.loads(out[out.index("\n{") :])
        assert obj["schema"] == REPORT_SCHEMA
        assert obj["spans"] > 0

    def test_explicit_trace_id_wins(self, tmp_path, capsys):
        out_path = tmp_path / "run.jsonl"
        code, _ = run_cli(
            ["trace", "record", "--trace-id", "my-run", "--out", str(out_path),
             "--", *STREAM_ARGS],
            capsys,
        )
        assert code == 0
        header, _ = read_trace(out_path)
        assert header["trace_id"] == "my-run"

    def test_empty_command_rejected(self, tmp_path, capsys):
        code = main(["trace", "record", "--out", str(tmp_path / "t.jsonl"), "--"])
        assert code != 0
        assert "needs a command" in capsys.readouterr().err

    def test_recursive_trace_rejected(self, tmp_path, capsys):
        code = main(
            ["trace", "record", "--out", str(tmp_path / "t.jsonl"),
             "--", "trace", "report", "x"]
        )
        assert code != 0
        capsys.readouterr()


class TestTraceReportFlame:
    @pytest.fixture()
    def recorded(self, tmp_path, capsys):
        out_path = tmp_path / "run.jsonl"
        assert main(["trace", "record", "--out", str(out_path), "--", *STREAM_ARGS]) == 0
        capsys.readouterr()
        return out_path

    def test_report_renders_tree(self, recorded, capsys):
        code, out = run_cli(["trace", "report", str(recorded)], capsys)
        assert code == 0
        assert "call tree" in out
        assert "stream.step" in out

    def test_report_json_schema(self, recorded, capsys):
        code, out = run_cli(["trace", "report", "--json", str(recorded)], capsys)
        assert code == 0
        assert json.loads(out)["schema"] == REPORT_SCHEMA

    def test_flame_collapsed_stacks(self, recorded, capsys):
        code, out = run_cli(["trace", "flame", str(recorded)], capsys)
        assert code == 0
        for line in out.strip().splitlines():
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) > 0

    def test_report_missing_file_fails(self, capsys):
        assert main(["trace", "report", "/nonexistent/trace.jsonl"]) != 0
        capsys.readouterr()


class TestTraceFlagOnCommands:
    def test_stream_trace_flag_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "stream.jsonl"
        code, out = run_cli([*STREAM_ARGS, "--trace", str(out_path)], capsys)
        assert code == 0
        assert f"trace written to {out_path}" not in out  # --quiet suppresses
        header, spans = read_trace(out_path)
        assert header["trace_id"] == "stream-acm-s0"
        assert spans
