"""CLI tests: in-process command coverage plus a real ``python -m repro`` smoke."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.runner.cli import main

SRC = Path(__file__).resolve().parents[2] / "src"

SWEEP_ARGS = [
    "sweep",
    "--dataset", "acm",
    "--ratios", "0.2",
    "--methods", "random-hg",
    "--model", "heterosgc",
    "--scale", "0.1",
    "--seeds", "1",
    "--epochs", "10",
    "--hidden-dim", "8",
    "--max-hops", "2",
]


def run_cli(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestStream:
    STREAM_ARGS = [
        "stream",
        "--dataset", "acm",
        "--ratio", "0.2",
        "--steps", "3",
        "--scale", "0.1",
        "--max-hops", "2",
        "--edge-churn", "0.002",
    ]

    def test_stream_replays_and_renders(self, capsys):
        code, out = run_cli(self.STREAM_ARGS, capsys)
        assert code == 0
        assert "Streaming condensation" in out
        assert "incremental" in out

    def test_stream_verification_passes(self, capsys):
        code, out = run_cli(self.STREAM_ARGS + ["--verify-every", "2"], capsys)
        assert code == 0
        assert "identical" in out
        assert "MISMATCH" not in out

    def test_stream_eval_reports_accuracy(self, capsys):
        code, out = run_cli(
            self.STREAM_ARGS + ["--eval-every", "3", "--epochs", "5", "--hidden-dim", "8"],
            capsys,
        )
        assert code == 0
        assert "accuracy" in out

    def test_stream_node_churn(self, capsys):
        code, out = run_cli(
            self.STREAM_ARGS
            + ["--arrivals-every", "2", "--removals-every", "3", "--verify-every", "1"],
            capsys,
        )
        assert code == 0
        assert "MISMATCH" not in out

    def test_stream_rejects_bad_steps(self, capsys):
        code, _ = run_cli(
            ["stream", "--dataset", "acm", "--ratio", "0.2", "--steps", "0"], capsys
        )
        assert code == 2


class TestSweep:
    def test_sweep_and_resume_render_identical_tables(self, tmp_path, capsys):
        args = SWEEP_ARGS + ["--store", str(tmp_path / "runs"), "--workers", "2"]
        code, first = run_cli(args, capsys)
        assert code == 0
        assert "Random-HG" in first and "Whole Dataset" in first
        assert "1 cached" not in first

        code, second = run_cli(args, capsys)
        assert code == 0
        assert "0 executed" in second
        # timings come from the store, so the rerun's table is byte-identical
        table = lambda text: text.split("Ratio sweep")[1]
        assert table(first) == table(second)

    def test_no_store_disables_resume(self, tmp_path, capsys):
        args = SWEEP_ARGS + ["--no-store", "--quiet"]
        code, out = run_cli(args, capsys)
        assert code == 0 and "Random-HG" in out

    def test_no_whole_and_output(self, tmp_path, capsys):
        out_file = tmp_path / "report.txt"
        args = SWEEP_ARGS + [
            "--no-store", "--quiet", "--no-whole", "--no-timings",
            "--output", str(out_file),
        ]
        code, out = run_cli(args, capsys)
        assert code == 0
        assert "Whole Dataset" not in out
        assert "condense_s" not in out
        assert "Random-HG" in out_file.read_text()

    def test_markdown(self, capsys):
        code, out = run_cli(SWEEP_ARGS + ["--no-store", "--quiet", "--markdown"], capsys)
        assert code == 0 and "| dataset |" in out

    def test_unknown_dataset_is_a_clean_error(self, capsys):
        code = main(["sweep", "--dataset", "nope", "--no-store", "--quiet"])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_bad_max_hops_is_a_clean_error_before_any_cell_runs(self, capsys):
        code = main(SWEEP_ARGS[:3] + ["--max-hops", "0", "--no-store", "--quiet"])
        assert code == 2
        captured = capsys.readouterr()
        assert "max_hops" in captured.err
        assert "ran" not in captured.out  # rejected at plan time, nothing executed


class TestGeneralize:
    def test_generalize(self, tmp_path, capsys):
        args = [
            "generalize",
            "--dataset", "acm",
            "--ratio", "0.2",
            "--methods", "random-hg",
            "--models", "heterosgc,sehgnn",
            "--scale", "0.1",
            "--seeds", "1",
            "--epochs", "10",
            "--hidden-dim", "8",
            "--max-hops", "2",
            "--store", str(tmp_path / "runs"),
            "--quiet",
        ]
        code, out = run_cli(args, capsys)
        assert code == 0
        assert "HETEROSGC" in out and "Condensed Avg." in out and "Whole Avg." in out


class TestReportAndList:
    def test_report_from_store(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert main(SWEEP_ARGS + ["--store", store, "--quiet"]) == 0
        capsys.readouterr()
        code, out = run_cli(["report", "--store", store, "--no-timings"], capsys)
        assert code == 0
        assert "Random-HG" in out and "model" in out

    def test_report_dataset_filter_is_alias_aware(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        assert main(SWEEP_ARGS + ["--store", store, "--quiet"]) == 0
        capsys.readouterr()
        code, out = run_cli(["report", "--store", store, "--dataset", "ACM"], capsys)
        assert code == 0 and "Random-HG" in out
        code, out = run_cli(["report", "--store", store, "--dataset", "dblp"], capsys)
        assert code == 0 and "Random-HG" not in out

    def test_report_empty_store(self, tmp_path, capsys):
        code, out = run_cli(["report", "--store", str(tmp_path / "empty")], capsys)
        assert code == 0 and "no artifacts" in out

    def test_list_all(self, capsys):
        code, out = run_cli(["list"], capsys)
        assert code == 0
        for needle in ("freehgc", "sehgnn", "acm", "nim", "criterion"):
            assert needle in out

    def test_list_single_registry(self, capsys):
        code, out = run_cli(["list", "condensers"], capsys)
        assert code == 0 and "hgcond" in out and "sehgnn" not in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro_smoke(self, tmp_path):
        """The documented entry point works end-to-end in a fresh process."""
        env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin", "HOME": str(tmp_path)}
        store = str(tmp_path / "runs")
        args = [sys.executable, "-m", "repro"] + SWEEP_ARGS + [
            "--workers", "2", "--store", store, "--quiet", "--no-timings",
        ]
        first = subprocess.run(args, capture_output=True, text=True, env=env, cwd=tmp_path)
        assert first.returncode == 0, first.stderr
        assert "Random-HG" in first.stdout

        second = subprocess.run(args, capture_output=True, text=True, env=env, cwd=tmp_path)
        assert second.returncode == 0, second.stderr
        assert first.stdout == second.stdout  # resumed run renders identical bytes

    def test_python_dash_m_repro_list(self, tmp_path):
        env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin", "HOME": str(tmp_path)}
        out = subprocess.run(
            [sys.executable, "-m", "repro", "list", "datasets"],
            capture_output=True, text=True, env=env,
        )
        assert out.returncode == 0 and "acm" in out.stdout
