"""Regression gates derived from committed BENCH_*.json baselines."""

from __future__ import annotations

import json

import pytest

from repro.runner.gates import (
    BASELINE_FILES,
    UNKNOWN_PROVENANCE,
    Gate,
    derive_matrix_gates,
    evaluate_cell_gates,
    read_baseline,
)


def write_json(path, payload):
    path.write_text(json.dumps(payload))
    return path


class TestReadBaseline:
    def test_missing_file_is_empty_dict(self, tmp_path):
        assert read_baseline(tmp_path / "BENCH_nothing.json") == {}

    def test_unparseable_file_is_empty_dict(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        assert read_baseline(path) == {}

    def test_non_dict_payload_is_empty_dict(self, tmp_path):
        assert read_baseline(write_json(tmp_path / "b.json", [1, 2])) == {}

    def test_pre_provenance_file_gets_unknown_block(self, tmp_path):
        # Pre-PR-6 baselines have no provenance key at all; reading one
        # must not KeyError downstream.
        path = write_json(tmp_path / "BENCH_streaming.json", {"speedup": 12.0})
        payload = read_baseline(path)
        assert payload["speedup"] == 12.0
        assert payload["provenance"] == UNKNOWN_PROVENANCE
        assert payload["provenance"]["git_revision"] == "unknown"

    def test_partial_provenance_backfilled(self, tmp_path):
        path = write_json(
            tmp_path / "b.json", {"provenance": {"git_revision": "abc123"}}
        )
        provenance = read_baseline(path)["provenance"]
        assert provenance["git_revision"] == "abc123"
        assert provenance["generated_at"] == "unknown"

    def test_full_provenance_untouched(self, tmp_path):
        block = {"git_revision": "abc", "generated_at": "2026-08-08T00:00:00+00:00"}
        path = write_json(tmp_path / "b.json", {"provenance": dict(block)})
        assert read_baseline(path)["provenance"] == block


class TestBenchmarksCommonReader:
    def test_load_baseline_delegates_tolerantly(self, tmp_path, monkeypatch):
        import benchmarks.common as common

        monkeypatch.setattr(common, "JSON_DIR", tmp_path)
        assert common.load_baseline("BENCH_serving.json") == {}
        write_json(tmp_path / "BENCH_serving.json", {"hotswap": {"x": 1}})
        payload = common.load_baseline("BENCH_serving.json")
        assert payload["hotswap"] == {"x": 1}
        assert payload["provenance"] == UNKNOWN_PROVENANCE

    def test_committed_baselines_all_readable(self):
        # The real committed files must parse and come back provenance-safe.
        for name in BASELINE_FILES:
            payload = read_baseline(name)
            assert payload, f"{name} missing or unreadable"
            assert "git_revision" in payload["provenance"]


class TestDeriveMatrixGates:
    def test_empty_dir_yields_no_gates(self, tmp_path):
        assert derive_matrix_gates(tmp_path) == ()

    def test_committed_baselines_yield_all_gates(self):
        names = {g.name for g in derive_matrix_gates(".")}
        assert {
            "byte-identity",
            "incremental-speedup",
            "prediction-consistency",
            "serving-p95-ms",
        } <= names

    def test_gates_carry_baseline_provenance(self):
        for gate in derive_matrix_gates("."):
            assert gate.baseline_file in BASELINE_FILES
            assert gate.provenance.get("git_revision")
            json.dumps(gate.to_dict())

    def test_speedup_threshold_never_below_break_even(self, tmp_path):
        write_json(
            tmp_path / "BENCH_streaming.json",
            {"speedup": 2.0, "byte_identical_checkpoints": 3},
        )
        gates = {g.name: g for g in derive_matrix_gates(tmp_path)}
        assert gates["incremental-speedup"].threshold == 1.0  # max(1, 0.25*2)
        assert gates["incremental-speedup"].baseline_value == 2.0


def make_gate(name, *, kind="max_value", metric="mismatches", threshold=0.0):
    return Gate(
        name=name,
        kind=kind,
        metric=metric,
        threshold=threshold,
        baseline_file="BENCH_streaming.json",
        baseline_value=None,
        provenance=dict(UNKNOWN_PROVENANCE),
    )


class TestEvaluateCellGates:
    def cell(self, **overrides):
        return {"regime": "steady", "load": "none", **overrides}

    def test_byte_identity_enforced_only_when_verified(self):
        gate = make_gate("byte-identity")
        verified = evaluate_cell_gates(
            self.cell(), {"verified_checkpoints": 2, "mismatches": 0}, (gate,)
        )[0]
        assert verified.enforced and verified.passed
        unverified = evaluate_cell_gates(
            self.cell(), {"verified_checkpoints": 0, "mismatches": 0}, (gate,)
        )[0]
        assert not unverified.enforced

    def test_byte_identity_fails_on_mismatch(self):
        gate = make_gate("byte-identity")
        outcome = evaluate_cell_gates(
            self.cell(), {"verified_checkpoints": 1, "mismatches": 1}, (gate,)
        )[0]
        assert outcome.enforced and outcome.passed is False
        assert outcome.observed == 1.0

    def test_speedup_gate_needs_steady_no_load_and_pool_size(self):
        gate = make_gate(
            "incremental-speedup", kind="min_value", metric="speedup", threshold=3.0
        )
        good = {"speedup": 5.0, "target_nodes": 2000}
        assert evaluate_cell_gates(self.cell(), good, (gate,))[0].enforced
        assert evaluate_cell_gates(self.cell(), good, (gate,))[0].passed
        for cell in (
            self.cell(regime="hub-deletion"),
            self.cell(load="light"),
        ):
            assert not evaluate_cell_gates(cell, good, (gate,))[0].enforced
        small = {"speedup": 5.0, "target_nodes": 100}
        assert not evaluate_cell_gates(self.cell(), small, (gate,))[0].enforced
        slow = {"speedup": 2.0, "target_nodes": 2000}
        outcome = evaluate_cell_gates(self.cell(), slow, (gate,))[0]
        assert outcome.enforced and outcome.passed is False

    def test_missing_metric_records_none_and_unenforced(self):
        gate = make_gate(
            "serving-p95-ms", metric="latency_ms.p95", threshold=250.0
        )
        outcome = evaluate_cell_gates(
            self.cell(load="light"), {"latency_ms": {}}, (gate,)
        )[0]
        assert outcome.passed is None
        assert not outcome.enforced
        present = evaluate_cell_gates(
            self.cell(load="light"), {"latency_ms": {"p95": 10.0}}, (gate,)
        )[0]
        assert present.enforced and present.passed

    def test_prediction_consistency_only_under_load(self):
        gate = make_gate("prediction-consistency", metric="prediction_failures")
        loaded = evaluate_cell_gates(
            self.cell(load="heavy"), {"prediction_failures": 0}, (gate,)
        )[0]
        assert loaded.enforced and loaded.passed
        idle = evaluate_cell_gates(
            self.cell(), {"prediction_failures": 0}, (gate,)
        )[0]
        assert not idle.enforced

    def test_unknown_gate_name_never_enforced(self):
        gate = make_gate("mystery-gate")
        outcome = evaluate_cell_gates(self.cell(), {"mismatches": 0}, (gate,))[0]
        assert not outcome.enforced
        assert outcome.baseline_revision == "unknown"
