"""Planner tests: expansion determinism and cross-process hash stability."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.evaluation.pipeline import ExperimentConfig
from repro.runner.plan import (
    Cell,
    GeneralizationConfig,
    plan_generalization,
    plan_ratio_sweep,
)

SRC = Path(__file__).resolve().parents[2] / "src"


def sweep_config(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="acm",
        ratios=(0.05, 0.1),
        methods=("random-hg", "freehgc"),
        model="heterosgc",
        scale=0.1,
        seeds=2,
        epochs=10,
        hidden_dim=8,
        max_hops=2,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestCell:
    def test_round_trip(self):
        cell = Cell(
            kind="evaluate",
            dataset="acm",
            method="freehgc",
            ratio=0.05,
            model="sehgnn",
            extra_model_kwargs=(("dropout", 0.1),),
        )
        rebuilt = Cell.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert rebuilt == cell
        assert rebuilt.key() == cell.key()

    def test_key_sensitivity(self):
        cell = Cell(kind="evaluate", dataset="acm", method="freehgc", ratio=0.05)
        other = Cell(kind="evaluate", dataset="acm", method="freehgc", ratio=0.1)
        assert cell.key() != other.key()
        assert cell.key() != Cell(kind="whole", dataset="acm").key()

    def test_evaluate_requires_method_and_ratio(self):
        with pytest.raises(ReproError):
            Cell(kind="evaluate", dataset="acm")
        with pytest.raises(ReproError):
            Cell(kind="nonsense", dataset="acm")

    def test_condense_key_ignores_model(self):
        a = Cell(kind="evaluate", dataset="acm", method="freehgc", ratio=0.05, model="hgt")
        b = Cell(kind="evaluate", dataset="acm", method="freehgc", ratio=0.05, model="han")
        assert a.condense_key() == b.condense_key()
        assert a.key() != b.key()
        assert Cell(kind="whole", dataset="acm").condense_key() is None

    def test_key_stable_across_processes(self):
        """The stored-artifact key must not depend on the producing process."""
        cell = Cell(kind="evaluate", dataset="acm", method="freehgc", ratio=0.05)
        script = (
            "import json, sys\n"
            "from repro.runner.plan import Cell\n"
            "cell = Cell.from_dict(json.loads(sys.argv[1]))\n"
            "print(cell.key())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(cell.to_dict())],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            check=True,
        )
        assert out.stdout.strip() == cell.key()


class TestPlanRatioSweep:
    def test_order_matches_serial_pipeline(self):
        plan = plan_ratio_sweep(sweep_config())
        shape = [(c.kind, c.method, c.ratio) for c in plan]
        assert shape == [
            ("evaluate", "random-hg", 0.05),
            ("evaluate", "freehgc", 0.05),
            ("evaluate", "random-hg", 0.1),
            ("evaluate", "freehgc", 0.1),
            ("whole", None, None),
        ]

    def test_deterministic_expansion(self):
        assert plan_ratio_sweep(sweep_config()).keys() == plan_ratio_sweep(sweep_config()).keys()

    def test_aliases_canonicalized(self):
        plan = plan_ratio_sweep(sweep_config(methods=("random", "free-hgc"), model="sgc"))
        canonical = plan_ratio_sweep(sweep_config(methods=("random-hg", "freehgc")))
        assert plan.keys() == canonical.keys()

    def test_no_whole(self):
        plan = plan_ratio_sweep(sweep_config(include_whole=False))
        assert all(cell.kind == "evaluate" for cell in plan)

    def test_whole_cell_hash_ignores_condensation_flags(self):
        # --paper-loops must not re-run the (slow) whole-graph reference.
        fast = plan_ratio_sweep(sweep_config(fast_optimization=True)).cells[-1]
        slow = plan_ratio_sweep(sweep_config(fast_optimization=False)).cells[-1]
        assert fast.kind == slow.kind == "whole"
        assert fast.key() == slow.key()

    def test_unknown_names_rejected(self):
        with pytest.raises(ReproError):
            plan_ratio_sweep(sweep_config(dataset="nope"))
        with pytest.raises(ReproError):
            plan_ratio_sweep(sweep_config(methods=("nope",)))

    def test_unvalidated_dataset_is_a_pure_label(self):
        # The facades use this when a graph override is injected.
        plan = plan_ratio_sweep(sweep_config(dataset="my-custom-graph"), validate_dataset=False)
        assert plan.cells[0].dataset == "my-custom-graph"

    def test_dataset_spelling_preserved_in_cells(self):
        # Report rows are labeled with the caller's spelling, as before the runner.
        plan = plan_ratio_sweep(sweep_config(dataset="ACM"))
        assert plan.cells[0].dataset == "ACM"

    def test_out_of_range_max_hops_rejected_at_plan_time(self):
        with pytest.raises(ReproError, match="max_hops"):
            plan_ratio_sweep(sweep_config(max_hops=0))
        with pytest.raises(ReproError, match="max_hops"):
            plan_generalization(
                GeneralizationConfig(dataset="acm", ratio=0.1, max_hops=9)
            )

    def test_resolved_max_hops_flows_into_cells(self):
        plan = plan_ratio_sweep(sweep_config(max_hops=None))  # acm paper value: 3
        assert {cell.max_hops for cell in plan} == {3}


class TestPlanGeneralization:
    def test_grid_shape(self):
        config = GeneralizationConfig(
            dataset="acm",
            ratio=0.05,
            methods=("random-hg", "freehgc"),
            models=("heterosgc", "sehgnn"),
        )
        plan = plan_generalization(config)
        evaluate = [c for c in plan if c.kind == "evaluate"]
        whole = [c for c in plan if c.kind == "whole"]
        assert len(evaluate) == 4 and len(whole) == 2
        # all models of one method share the condensation cache key
        by_method = {}
        for cell in evaluate:
            by_method.setdefault(cell.method, set()).add(cell.condense_key())
        assert all(len(keys) == 1 for keys in by_method.values())

    def test_resolved_max_hops_defaults(self):
        assert GeneralizationConfig(dataset="acm", ratio=0.1).resolved_max_hops() == 3
        assert GeneralizationConfig(dataset="acm", ratio=0.1, max_hops=1).resolved_max_hops() == 1
