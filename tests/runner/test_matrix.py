"""Scenario-matrix harness: planning, resume-zero-reexec, gating, CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.runner import ArtifactStore
from repro.runner.gates import derive_matrix_gates
from repro.runner.matrix import (
    MatrixCell,
    MatrixConfig,
    consolidate,
    plan_matrix,
    run_matrix,
    run_matrix_cell,
)

SMALL = dict(
    datasets=("acm",),
    scales=(0.08,),
    regimes=("steady", "hub-deletion"),
    loads=("none",),
    steps=2,
    ratio=0.2,
    max_hops=2,
)


def small_config(**overrides):
    return MatrixConfig(**{**SMALL, **overrides})


class TestPlanning:
    def test_grid_expansion_and_order(self):
        config = MatrixConfig(
            datasets=("acm", "dblp"),
            scales=(0.1, 0.2),
            regimes=("steady", "burst-arrival"),
            loads=("none", "light"),
            max_hops=2,
        )
        plan = plan_matrix(config)
        assert len(plan) == 2 * 2 * 2 * 2
        # Loads vary fastest, datasets slowest.
        assert plan.cells[0].load == "none" and plan.cells[1].load == "light"
        assert plan.cells[0].dataset == plan.cells[7].dataset == "acm"
        assert plan.cells[8].dataset == "dblp"
        assert "2 datasets x 2 scales x 2 regimes x 2 loads" == plan.description

    def test_keys_stable_and_unique(self):
        plan_a = plan_matrix(small_config())
        plan_b = plan_matrix(small_config())
        assert plan_a.keys() == plan_b.keys()
        assert len(set(plan_a.keys())) == len(plan_a)
        assert all(len(k) == 16 for k in plan_a.keys())

    def test_key_changes_with_any_knob(self):
        base = plan_matrix(small_config()).cells[0]
        reseeded = plan_matrix(small_config(seed=1)).cells[0]
        assert base.key() != reseeded.key()

    def test_cell_round_trips_through_dict(self):
        cell = plan_matrix(small_config()).cells[1]
        clone = MatrixCell.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert clone == cell
        assert clone.key() == cell.key()

    def test_max_hops_resolved_per_dataset(self):
        plan = plan_matrix(
            MatrixConfig(datasets=("acm",), regimes=("steady",), max_hops=None)
        )
        assert plan.cells[0].max_hops >= 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            small_config(regimes=("no-such-regime",))
        with pytest.raises(ConfigurationError):
            small_config(loads=("extreme",))
        with pytest.raises(ConfigurationError):
            small_config(steps=0)
        with pytest.raises(ConfigurationError):
            small_config(scales=())


class TestCellExecution:
    def test_no_load_cell_verifies_byte_identity(self):
        plan = plan_matrix(small_config())
        result = run_matrix_cell(plan.cells[0])
        assert result["regime"] == "steady"
        assert result["verified_checkpoints"] == 1
        assert result["mismatches"] == 0
        assert result["queries"] == 0
        assert result["latency_ms"] == {}
        assert result["modes"]["full"] + result["modes"]["incremental"] == 2

    def test_result_is_json_safe(self):
        plan = plan_matrix(small_config())
        json.dumps(run_matrix_cell(plan.cells[1]))  # must not raise

    def test_serving_load_cell_answers_queries(self):
        config = small_config(
            regimes=("burst-arrival",),
            loads=("light",),
            epochs=4,
            hidden_dim=8,
            inject_faults=True,
        )
        cell = plan_matrix(config).cells[0]
        assert cell.label().endswith("+faults")
        result = run_matrix_cell(cell)
        assert result["queries"] == 2 * 32  # 2 steps x light load
        assert result["prediction_failures"] == 0
        assert result["mismatches"] == 0
        assert set(result["latency_ms"]) == {"p50", "p95", "p99", "mean", "max"}
        # The per-cell fault plan (delay every 2nd swap) actually fired.
        assert result["fault_fires"].get("hotswap.delay_publish", 0) >= 1


class TestResume:
    def test_resume_zero_reexec(self, tmp_path):
        plan = plan_matrix(small_config())
        store = ArtifactStore(tmp_path / "runs")
        first = run_matrix(plan, store=store)
        assert [o.cached for o in first] == [False, False]
        second = run_matrix(plan, store=store)
        assert [o.cached for o in second] == [True, True]
        # Byte-for-byte the same results, straight from the store.
        assert [o.result for o in second] == [o.result for o in first]

    def test_partial_resume_runs_only_missing_cells(self, tmp_path):
        plan = plan_matrix(small_config())
        store = ArtifactStore(tmp_path / "runs")
        # Simulate a killed suite: only the first cell completed.
        only_first = plan_matrix(small_config(regimes=("steady",)))
        run_matrix(only_first, store=store)
        seen = []
        outcomes = run_matrix(
            plan, store=store, progress=lambda o, i, n: seen.append(o.cached)
        )
        assert [o.cached for o in outcomes] == [True, False]
        assert seen == [True, False]  # cached reported first, in plan order

    def test_force_reexecutes_everything(self, tmp_path):
        plan = plan_matrix(small_config())
        store = ArtifactStore(tmp_path / "runs")
        run_matrix(plan, store=store)
        forced = run_matrix(plan, store=store, force=True)
        assert [o.cached for o in forced] == [False, False]

    def test_no_store_runs_everything(self):
        plan = plan_matrix(small_config(regimes=("steady",)))
        outcomes = run_matrix(plan)
        assert [o.cached for o in outcomes] == [False]


class TestConsolidatedReport:
    def test_report_structure_and_summary(self, tmp_path):
        plan = plan_matrix(small_config())
        store = ArtifactStore(tmp_path / "runs")
        outcomes = run_matrix(plan, store=store)
        gates = derive_matrix_gates(".")  # repo root holds the baselines
        report = consolidate(outcomes, gates)
        assert report["version"] == 1
        assert len(report["cells"]) == 2
        assert len(report["gates"]) == len(gates) >= 3
        for entry in report["cells"]:
            assert entry["key"] == MatrixCell.from_dict(entry["cell"]).key()
            assert {g["name"] for g in entry["gates"]} == {g.name for g in gates}
            assert entry["failed_gates"] == []
        summary = report["summary"]
        assert summary["total"] == 2
        assert summary["executed"] == 2
        assert summary["mismatches"] == 0
        assert summary["gate_failures"] == 0
        assert summary["passed"] is True
        json.dumps(report)  # JSON-safe end to end

    def test_byte_identity_gate_enforced_where_verified(self, tmp_path):
        plan = plan_matrix(small_config(regimes=("steady",)))
        outcomes = run_matrix(plan)
        gates = derive_matrix_gates(".")
        report = consolidate(outcomes, gates)
        by_name = {g["name"]: g for g in report["cells"][0]["gates"]}
        assert by_name["byte-identity"]["enforced"] is True
        assert by_name["byte-identity"]["passed"] is True
        # Tiny CI-scale cell: the speedup ratio is recorded, not enforced.
        assert by_name["incremental-speedup"]["enforced"] is False

    def test_mismatch_fails_the_suite(self):
        plan = plan_matrix(small_config(regimes=("steady",)))
        outcomes = run_matrix(plan)
        outcomes[0].result["mismatches"] = 1  # simulate a divergence
        report = consolidate(outcomes, derive_matrix_gates("."))
        assert report["summary"]["passed"] is False


class TestCLI:
    def test_matrix_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.runner.cli import main

        store = tmp_path / "runs"
        argv = [
            "matrix",
            "--datasets", "acm",
            "--scales", "0.08",
            "--regimes", "steady",
            "--loads", "none",
            "--steps", "2",
            "--max-hops", "2",
            "--store", str(store),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "ran" in out and "matrix summary" in out
        report = json.loads((store / "matrix_report.json").read_text())
        assert report["summary"]["passed"] is True
        # Second invocation resumes without re-executing.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cached" in out and " ran " not in out
