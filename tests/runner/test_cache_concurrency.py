"""ArtifactStore behaviour under concurrent writers (two processes, one file).

Serving's :class:`~repro.serving.artifacts.ModelStore` reuses the JSONL
artifact store as its index, so two deployments pointed at one directory
must never corrupt it: every record is a single short append, truncated
trailing lines are skipped on load, and the latest record per key wins.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.runner.cache import ArtifactStore

WRITER = r"""
import sys
sys.path.insert(0, {src!r})
from repro.runner.cache import ArtifactStore

store = ArtifactStore({root!r})
prefix = sys.argv[1]
for i in range(int(sys.argv[2])):
    store.put(f"{{prefix}}-{{i}}", {{"kind": "t", "writer": prefix}},
              {{"value": i}}, elapsed_s=0.0)
"""


def spawn_writer(root: Path, prefix: str, count: int) -> subprocess.Popen:
    src = str(Path(__file__).resolve().parents[2] / "src")
    code = WRITER.format(src=src, root=str(root))
    return subprocess.Popen(
        [sys.executable, "-c", code, prefix, str(count)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


class TestConcurrentWriters:
    def test_two_processes_interleaved_appends(self, tmp_path):
        count = 200
        writers = [spawn_writer(tmp_path, p, count) for p in ("alpha", "beta")]
        for proc in writers:
            _, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr.decode()
        store = ArtifactStore(tmp_path)
        keys = store.completed_keys()
        assert len(keys) == 2 * count
        for prefix in ("alpha", "beta"):
            for i in range(count):
                record = store.get(f"{prefix}-{i}")
                assert record is not None
                assert record["result"]["value"] == i
        # every line in the file must be intact JSON (no torn writes)
        with store.path.open() as handle:
            for line in handle:
                json.loads(line)

    def test_writer_and_reader_interleave(self, tmp_path):
        proc = spawn_writer(tmp_path, "solo", 150)
        seen = 0
        # poll the store while the writer is appending: refresh must never
        # crash and the completed set must only grow
        while proc.poll() is None:
            store = ArtifactStore(tmp_path)
            current = len(store.completed_keys())
            assert current >= seen
            seen = current
        _, stderr = proc.communicate()
        assert proc.returncode == 0, stderr.decode()
        assert len(ArtifactStore(tmp_path).completed_keys()) == 150

    def test_same_key_from_both_writers_latest_wins(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("shared", {"kind": "t"}, {"value": 1})
        other = ArtifactStore(tmp_path)  # a second handle, as a second run would open
        other.put("shared", {"kind": "t"}, {"value": 2})
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("shared")["result"]["value"] == 2
        assert len(fresh) == 1

    def test_truncated_trailing_line_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ok", {"kind": "t"}, {"value": 1})
        with store.path.open("a") as handle:
            handle.write('{"key": "torn", "cell": {"kind"')  # interrupted write
        fresh = ArtifactStore(tmp_path)
        assert fresh.completed_keys() == {"ok"}
