"""Executor and artifact-store tests: resume, parallelism, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RandomHG
from repro.errors import ReproError
from repro.evaluation.pipeline import ExperimentConfig, run_ratio_sweep
from repro.evaluation.protocol import MethodEvaluation
from repro.runner import (
    ArtifactStore,
    GeneralizationConfig,
    execute_plan,
    plan_generalization,
    plan_ratio_sweep,
)
from repro.runner import executor as executor_module
from repro import registry

TINY = dict(
    dataset="acm",
    ratios=(0.2,),
    methods=("random-hg", "freehgc"),
    model="heterosgc",
    scale=0.1,
    seeds=2,
    epochs=10,
    hidden_dim=8,
    max_hops=2,
)


def tiny_plan(**overrides):
    config = ExperimentConfig(**{**TINY, **overrides})
    return plan_ratio_sweep(config)


def assert_same_results(a: MethodEvaluation, b: MethodEvaluation) -> None:
    assert a.method == b.method
    assert a.dataset == b.dataset
    assert a.ratio == b.ratio
    assert a.accuracies == b.accuracies  # exact float equality, no tolerance
    assert a.storage == b.storage
    assert a.condensed_nodes == b.condensed_nodes


class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "runs")
        store.put("k1", {"kind": "evaluate"}, {"accuracy": 1.0}, elapsed_s=2.0)
        record = store.get("k1")
        assert record["result"] == {"accuracy": 1.0}
        assert record["meta"]["elapsed_s"] == 2.0
        assert "k1" in store and len(store) == 1

    def test_latest_record_wins(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("k", {}, {"v": 1})
        store.put("k", {}, {"v": 2})
        assert store.get("k")["result"]["v"] == 2
        reopened = ArtifactStore(tmp_path)
        assert reopened.get("k")["result"]["v"] == 2

    def test_truncated_line_is_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("good", {}, {"v": 1})
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "bad", "resu')  # interrupted write
        reopened = ArtifactStore(tmp_path)
        assert reopened.completed_keys() == {"good"}

    def test_malformed_records_are_treated_as_absent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("good", {}, {"v": 1})
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "shapeless"}\n')  # valid JSON, missing cell/result
            handle.write('{"key": "future", "cell": {}, "result": {}, '
                         '"meta": {"version": 999}}\n')  # incompatible store version
            handle.write('["not", "a", "dict"]\n')
        reopened = ArtifactStore(tmp_path)
        assert reopened.completed_keys() == {"good"}

    def test_missing_store_is_empty(self, tmp_path):
        assert ArtifactStore(tmp_path / "nowhere").completed_keys() == set()


class TestExecutePlan:
    def test_resume_skips_completed_cells(self, tmp_path):
        plan = tiny_plan()
        store = ArtifactStore(tmp_path / "runs")
        first = execute_plan(plan, store=store)
        assert [o.cached for o in first] == [False] * len(plan)

        events = []
        second = execute_plan(
            plan, store=store, progress=lambda o, i, t: events.append(o.cached)
        )
        assert events == [True] * len(plan)  # zero cells re-executed
        for a, b in zip(first, second):
            assert_same_results(a.evaluation, b.evaluation)

    def test_partial_store_runs_only_missing_cells(self, tmp_path):
        plan = tiny_plan()
        store = ArtifactStore(tmp_path)
        execute_plan(plan, store=store)
        # drop one record: rewrite the file without the first cell's key
        victim = plan.keys()[0]
        lines = [
            line
            for line in store.path.read_text().splitlines()
            if f'"key": "{victim}"' not in line and f'"key":"{victim}"' not in line
        ]
        store.path.write_text("\n".join(lines) + "\n")
        outcomes = execute_plan(plan, store=ArtifactStore(tmp_path))
        assert [o.cached for o in outcomes].count(False) == 1

    def test_force_reruns_everything(self, tmp_path):
        plan = tiny_plan()
        store = ArtifactStore(tmp_path)
        execute_plan(plan, store=store)
        outcomes = execute_plan(plan, store=store, force=True)
        assert all(not o.cached for o in outcomes)

    def test_parallel_equals_serial(self, tmp_path):
        plan = tiny_plan()
        serial = execute_plan(plan)
        parallel = execute_plan(plan, workers=2, store=tmp_path / "runs")
        for a, b in zip(serial, parallel):
            assert_same_results(a.evaluation, b.evaluation)
        # and the store round-trip preserves every float bit-for-bit
        resumed = execute_plan(plan, workers=2, store=tmp_path / "runs")
        for a, b in zip(serial, resumed):
            assert_same_results(a.evaluation, b.evaluation)
            assert a.evaluation.as_row() == {
                **b.evaluation.as_row(),
                "condense_s": a.evaluation.as_row()["condense_s"],
                "train_s": a.evaluation.as_row()["train_s"],
            }

    def test_results_in_plan_order(self, tmp_path):
        plan = tiny_plan()
        outcomes = execute_plan(plan, workers=2)
        assert [o.cell for o in outcomes] == list(plan.cells)

    def test_graph_override_with_store_rejected(self, toy_graph, tmp_path):
        with pytest.raises(ReproError):
            execute_plan(tiny_plan(), graph=toy_graph, store=tmp_path)

    def test_graph_override_with_workers_rejected(self, toy_graph):
        # Silent serial fallback would be a surprise; fail fast instead.
        with pytest.raises(ReproError, match="workers"):
            execute_plan(tiny_plan(), graph=toy_graph, workers=2)

    def test_graph_override_keeps_unregistered_dataset_label(self, toy_graph):
        # Pre-runner behaviour: with graph=, the dataset string is only a label.
        config = ExperimentConfig(
            dataset="my-custom-graph",
            ratios=(0.3,),
            methods=("random-hg",),
            model="heterosgc",
            seeds=1,
            epochs=10,
            hidden_dim=8,
            max_hops=2,
        )
        evaluations = run_ratio_sweep(config, graph=toy_graph)
        assert {e.dataset for e in evaluations} == {"my-custom-graph"}

    def test_dataset_alias_loads_through_registry(self):
        # "fb" is a dataset alias; the executor must resolve it like the facade.
        config = ExperimentConfig(
            dataset="fb",
            ratios=(0.2,),
            methods=("random-hg",),
            model="heterosgc",
            scale=0.1,
            seeds=1,
            epochs=5,
            hidden_dim=8,
            max_hops=1,
            include_whole=False,
        )
        evaluations = run_ratio_sweep(config)
        assert evaluations[0].dataset == "fb"  # caller's spelling is the label

    def test_bad_workers_rejected(self):
        with pytest.raises(ReproError):
            execute_plan(tiny_plan(), workers=0)


class _CountingRandomHG(RandomHG):
    condense_calls = 0

    def condense(self, graph, ratio, *, seed=None):
        type(self).condense_calls += 1
        return super().condense(graph, ratio, seed=seed)


class TestCondensedSharing:
    def test_generalization_row_shares_condensation(self):
        """All models of one generalization row reuse one condensed artifact."""
        name = "counting-random-hg-test"
        registry.condensers.register(
            name,
            lambda *, max_hops=2, fast_optimization=True, **kw: _CountingRandomHG(**kw),
        )
        try:
            executor_module._CONDENSED_CACHE.clear()
            _CountingRandomHG.condense_calls = 0
            config = GeneralizationConfig(
                dataset="acm",
                ratio=0.2,
                methods=(name,),
                models=("heterosgc", "sehgnn"),
                scale=0.1,
                seeds=2,
                epochs=5,
                hidden_dim=8,
                max_hops=2,
            )
            execute_plan(plan_generalization(config))
            # two models × two trials, but only two condensations (one per trial)
            assert _CountingRandomHG.condense_calls == 2

            # force bypasses the in-process memo: everything re-condenses
            _CountingRandomHG.condense_calls = 0
            execute_plan(plan_generalization(config), force=True)
            assert _CountingRandomHG.condense_calls == 4
        finally:
            registry.condensers.unregister(name)

    def test_facade_matches_preshared_semantics(self, tmp_path):
        """Sharing must not change numbers: rerun with a cold cache agrees."""
        config = ExperimentConfig(**TINY)
        executor_module._CONDENSED_CACHE.clear()
        cold = run_ratio_sweep(config)
        warm = run_ratio_sweep(config)  # second run hits the condensed memo
        for a, b in zip(cold, warm):
            assert_same_results(a, b)


class TestWorkerCacheLifecycle:
    """Per-process memos must not leak stale artifacts across plans.

    The memos are keyed by registered component *names* (documented on
    :func:`repro.runner.executor.clear_worker_caches`), so when the data a
    name resolves to changes — a swapped registration, or a streaming delta
    mutating the graph a loader serves — the caller must clear the caches.
    These tests pin both halves of that contract: without clearing the memo
    serves the stale artifact byte-for-byte; after clearing the next plan
    sees the new data.
    """

    def _register_evolving(self, name, state):
        from repro.datasets.acm import acm_config
        from repro.datasets.registry import DatasetEntry

        registry.datasets.register(
            name,
            DatasetEntry(
                name=name,
                loader=lambda *, scale=0.1, seed=0: state["graph"],
                config_factory=acm_config,
                paper_ratios=(0.2,),
                max_hops=2,
            ),
        )

    def _plan(self, name):
        return plan_ratio_sweep(
            ExperimentConfig(
                dataset=name,
                ratios=(0.2,),
                methods=("random-hg",),
                model="heterosgc",
                scale=0.1,
                seeds=1,
                epochs=5,
                hidden_dim=8,
                max_hops=2,
                include_whole=False,
            )
        )

    def test_stale_artifacts_across_streaming_deltas(self):
        import numpy as np

        from repro.datasets import load_acm
        from repro.streaming import DeltaApplier, GraphDelta

        name = "evolving-acm-test"
        state = {"graph": load_acm(scale=0.1, seed=0)}
        self._register_evolving(name, state)
        try:
            executor_module.clear_worker_caches()
            plan = self._plan(name)
            first = execute_plan(plan)

            # The stream moves on: the loader now serves a mutated graph.
            evolved = state["graph"].copy()
            coo = evolved.adjacency["paper-author"].tocoo()
            keep = coo.nnz // 2
            DeltaApplier().apply(
                evolved,
                GraphDelta(
                    remove_edges={
                        "paper-author": (coo.row[keep:], coo.col[keep:])
                    }
                ),
            )
            state["graph"] = evolved

            # Without clearing, both memos (dataset graph + condensed
            # artifact) serve the pre-delta artifacts: bit-identical result.
            stale = execute_plan(plan)
            assert_same_results(first[0].evaluation, stale[0].evaluation)

            # After clearing, the run reflects the evolved graph.
            executor_module.clear_worker_caches()
            fresh = execute_plan(plan)
            assert fresh[0].evaluation.storage != first[0].evaluation.storage
        finally:
            registry.datasets.unregister(name)
            executor_module.clear_worker_caches()

    def test_clear_between_swapped_registrations(self):
        from repro.datasets import load_acm

        name = "swapped-acm-test"
        state = {"graph": load_acm(scale=0.1, seed=0)}
        self._register_evolving(name, state)
        try:
            executor_module.clear_worker_caches()
            first = execute_plan(self._plan(name))
            registry.datasets.unregister(name)
            state2 = {"graph": load_acm(scale=0.15, seed=1)}
            self._register_evolving(name, state2)
            executor_module.clear_worker_caches()
            swapped = execute_plan(self._plan(name))
            assert (
                swapped[0].evaluation.condensed_nodes
                != first[0].evaluation.condensed_nodes
            )
        finally:
            registry.datasets.unregister(name)
            executor_module.clear_worker_caches()


class TestMethodEvaluationSerialization:
    def test_round_trip_is_lossless(self):
        evaluation = MethodEvaluation(
            method="FreeHGC",
            dataset="acm",
            ratio=0.05,
            accuracies=[0.1234567890123456789, 1 / 3],
            condense_seconds=0.123456,
            train_seconds=7.89,
            storage=1024,
            condensed_nodes=53,
            details={"note": "x"},
        )
        import json

        payload = json.loads(json.dumps(evaluation.to_dict()))
        rebuilt = MethodEvaluation.from_dict(payload)
        assert rebuilt.accuracies == evaluation.accuracies
        assert rebuilt.as_row() == evaluation.as_row()
        assert np.isclose(rebuilt.mean_accuracy, evaluation.mean_accuracy, rtol=0, atol=0)
