"""Tests for the unified component registry and the ``repro.condense`` facade."""

import numpy as np
import pytest

import repro
from repro import registry
from repro.baselines import BASELINE_REGISTRY
from repro.baselines.base import CondensedFeatureSet, GraphCondenser
from repro.core import FreeHGC
from repro.datasets.registry import DATASETS, DatasetEntry
from repro.errors import RegistryError, ReproError
from repro.evaluation.pipeline import CONDENSER_NAMES
from repro.hetero.graph import HeteroGraph
from repro.models import MODEL_REGISTRY, HGNNClassifier
from repro.registry import Registry


class TestRegistryMechanics:
    def test_register_and_get(self):
        reg = Registry("widget")
        reg.register("foo", object)
        assert reg.get("foo") is object
        assert reg.get("FOO") is object  # case-insensitive

    def test_alias_resolution(self):
        reg = Registry("widget")
        reg.register("foo", object, aliases=("bar", "Baz"))
        assert reg.canonical("bar") == "foo"
        assert reg.canonical("BAZ") == "foo"
        assert reg.aliases_of("foo") == ("bar", "baz")

    def test_decorator_registration(self):
        reg = Registry("widget")

        @reg.register("thing", aliases=("t",))
        class Thing:
            pass

        assert reg.get("t") is Thing

    def test_duplicate_rejected(self):
        reg = Registry("widget")
        reg.register("foo", object)
        with pytest.raises(RegistryError):
            reg.register("foo", int)
        with pytest.raises(RegistryError):
            reg.register("other", int, aliases=("foo",))

    def test_unregister_removes_entry_and_aliases(self):
        reg = Registry("widget")
        reg.register("foo", object, aliases=("f", "phoo"))
        assert reg.unregister("f") is object  # aliases resolve
        assert "foo" not in reg and "f" not in reg and "phoo" not in reg
        with pytest.raises(RegistryError):
            reg.unregister("foo")
        reg.register("foo", int)  # name is free again
        assert reg.get("foo") is int

    def test_unknown_name_lists_options(self):
        reg = Registry("widget")
        reg.register("alpha", object)
        reg.register("beta", object)
        with pytest.raises(RegistryError, match="available: alpha, beta"):
            reg.get("gamma")

    def test_error_is_keyerror_and_valueerror(self):
        reg = Registry("widget")
        with pytest.raises(KeyError):
            reg.get("nope")
        with pytest.raises(ValueError):
            reg.get("nope")
        with pytest.raises(ReproError):
            reg.get("nope")

    def test_contains_iter_len(self):
        reg = Registry("widget")
        reg.register("foo", object, aliases=("f",))
        assert "foo" in reg and "f" in reg and "nope" not in reg
        assert list(reg) == ["foo"]
        assert len(reg) == 1

    def test_invalid_names_rejected(self):
        reg = Registry("widget")
        with pytest.raises(RegistryError):
            reg.register("", object)
        with pytest.raises(RegistryError):
            reg.canonical("   ")

    def test_builtin_population_yields_to_existing_names(self):
        # A user registration made before the first lookup must shadow the
        # built-in instead of wedging the registry on the collision.
        from repro.registry import _register_builtin

        reg = Registry("widget")
        user_factory = object()
        reg.register("gcond", user_factory)
        _register_builtin(reg, "gcond", int, aliases=("g-cond",))
        assert reg._entries["gcond"] is user_factory
        _register_builtin(reg, "other", int, aliases=("gcond",))  # alias collision
        assert reg._entries["gcond"] is user_factory
        assert reg.get("other") is int


class TestBuiltinCondensers:
    def test_every_builtin_name_resolves(self):
        assert set(registry.condensers.names()) == set(CONDENSER_NAMES)
        for name in CONDENSER_NAMES:
            condenser = registry.condensers.get(name)(max_hops=2)
            assert isinstance(condenser, GraphCondenser)

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("free-hgc", "freehgc"),
            ("random", "random-hg"),
            ("herding", "herding-hg"),
            ("kcenter", "k-center-hg"),
            ("k-center", "k-center-hg"),
            ("coarsening", "coarsening-hg"),
        ],
    )
    def test_condenser_aliases(self, alias, canonical):
        assert registry.condensers.canonical(alias) == canonical

    def test_freehgc_factory_type(self):
        assert isinstance(registry.condensers.get("FreeHGC")(max_hops=3), FreeHGC)

    def test_unknown_condenser_message(self):
        with pytest.raises(RegistryError, match="unknown condenser 'magic'"):
            registry.condensers.get("magic")


class TestBuiltinModels:
    def test_every_builtin_name_resolves(self):
        assert set(registry.models.names()) == set(MODEL_REGISTRY)
        for name in registry.models.names():
            model_cls = registry.models.get(name)
            assert issubclass(model_cls, HGNNClassifier)

    @pytest.mark.parametrize(
        "alias, canonical",
        [("hetero-sgc", "heterosgc"), ("sgc", "heterosgc"), ("se-hgnn", "sehgnn")],
    )
    def test_model_aliases(self, alias, canonical):
        assert registry.models.canonical(alias) == canonical

    def test_unknown_model_lists_options(self):
        with pytest.raises(RegistryError, match="available: .*sehgnn"):
            registry.models.get("gpt")


class TestBuiltinDatasets:
    def test_every_builtin_name_resolves(self):
        assert set(registry.datasets.names()) == set(DATASETS)
        for name in registry.datasets.names():
            entry = registry.datasets.get(name)
            assert isinstance(entry, DatasetEntry)
            assert entry.name == name

    def test_dataset_alias(self):
        assert registry.datasets.canonical("fb") == "freebase"

    def test_unknown_dataset_lists_options(self):
        with pytest.raises(RegistryError, match="unknown dataset 'cora'; available: acm"):
            registry.datasets.get("cora")


class TestBuiltinStages:
    def test_stage_names(self):
        # Subset, not equality: other tests may register plug-in stages.
        assert {"criterion", "herding"} <= set(registry.target_stages.names())
        assert {"nim", "ilm", "herding"} <= set(registry.other_stages.names())

    @pytest.mark.parametrize(
        "alias, canonical",
        [("unified", "criterion"), ("ppr", "nim"), ("influence", "nim"), ("synthesis", "ilm")],
    )
    def test_stage_aliases(self, alias, canonical):
        reg = (
            registry.target_stages
            if canonical in registry.target_stages.names()
            else registry.other_stages
        )
        assert reg.canonical(alias) == canonical

    def test_baseline_registry_consistency(self):
        # Every legacy baseline is also reachable through the unified registry.
        for name in BASELINE_REGISTRY:
            assert name in registry.condensers


class TestCondenseFacade:
    def test_condense_graph(self, toy_graph):
        condensed = repro.condense(toy_graph, 0.2, seed=0)
        assert isinstance(condensed, HeteroGraph)
        condensed.validate()
        assert condensed.metadata["method"] == "FreeHGC"

    def test_condense_matches_explicit_freehgc(self, toy_graph):
        facade = repro.condense(toy_graph, 0.2, seed=0, max_hops=2, max_paths=8)
        explicit = FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.2, seed=0)
        assert np.array_equal(facade.labels, explicit.labels)
        assert facade.total_edges == explicit.total_edges

    def test_condense_dataset_by_name(self):
        condensed = repro.condense("acm", 0.1, scale=0.2, seed=1)
        assert isinstance(condensed, HeteroGraph)
        condensed.validate()

    def test_condense_method_alias_and_overrides(self, toy_graph):
        condensed = repro.condense(
            toy_graph, 0.25, method="herding", max_hops=2
        )
        assert condensed.metadata["method"] == "Herding-HG"

    def test_condense_strategy_overrides(self, tiny_dblp):
        condensed = repro.condense(
            tiny_dblp, 0.15, max_hops=2, max_paths=8, target_strategy="herding"
        )
        assert condensed.metadata["target_strategy"] == "herding"

    def test_condense_feature_set_method(self, toy_graph):
        result = repro.condense(toy_graph, 0.2, method="gcond", seed=0)
        assert isinstance(result, CondensedFeatureSet)

    def test_condense_unknown_method(self, toy_graph):
        with pytest.raises(RegistryError):
            repro.condense(toy_graph, 0.2, method="magic")

    def test_condense_unknown_dataset(self):
        with pytest.raises(RegistryError):
            repro.condense("cora", 0.2)

    def test_condense_generator_seed_reaches_loader(self):
        # A Generator seed must flow through to the dataset generator, not
        # be silently replaced by 0.
        a = repro.condense("acm", 0.1, scale=0.2, seed=np.random.default_rng(1))
        b = repro.condense("acm", 0.1, scale=0.2, seed=np.random.default_rng(1))
        c = repro.condense("acm", 0.1, scale=0.2, seed=0)
        assert np.array_equal(a.labels, b.labels)
        features_equal = all(
            np.array_equal(a.features[t], c.features[t])
            for t in a.features
            if a.features[t].shape == c.features[t].shape
        ) and a.num_nodes == c.num_nodes
        assert not features_equal, "Generator seed must not collapse to seed=0"
