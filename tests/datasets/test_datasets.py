"""Tests for the synthetic dataset configurations, generator and registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    NodeTypeSpec,
    RelationSpec,
    SyntheticHINConfig,
    available_datasets,
    dataset_config,
    generate_hin,
    load_dataset,
    schema_from_config,
)
from repro.errors import DatasetError


def tiny_config() -> SyntheticHINConfig:
    return SyntheticHINConfig(
        name="tiny",
        target_type="a",
        num_classes=3,
        node_types=(
            NodeTypeSpec("a", count=60, feature_dim=8),
            NodeTypeSpec("b", count=40, feature_dim=6),
        ),
        relations=(RelationSpec("ab", "a", "b", avg_degree=2.0, affinity=0.8),),
    )


class TestConfigValidation:
    def test_valid(self):
        assert tiny_config().num_classes == 3

    def test_duplicate_node_types(self):
        with pytest.raises(DatasetError):
            SyntheticHINConfig(
                name="x",
                target_type="a",
                num_classes=2,
                node_types=(NodeTypeSpec("a", 10), NodeTypeSpec("a", 10)),
                relations=(),
            )

    def test_unknown_target(self):
        with pytest.raises(DatasetError):
            SyntheticHINConfig(
                name="x",
                target_type="zzz",
                num_classes=2,
                node_types=(NodeTypeSpec("a", 10),),
                relations=(),
            )

    def test_relation_references_unknown_type(self):
        with pytest.raises(DatasetError):
            SyntheticHINConfig(
                name="x",
                target_type="a",
                num_classes=2,
                node_types=(NodeTypeSpec("a", 10),),
                relations=(RelationSpec("r", "a", "zzz"),),
            )

    def test_bad_fractions(self):
        with pytest.raises(DatasetError):
            SyntheticHINConfig(
                name="x",
                target_type="a",
                num_classes=2,
                node_types=(NodeTypeSpec("a", 10),),
                relations=(),
                train_fraction=0.8,
                val_fraction=0.3,
            )

    def test_node_spec_validation(self):
        with pytest.raises(DatasetError):
            NodeTypeSpec("a", count=0)
        with pytest.raises(DatasetError):
            NodeTypeSpec("a", count=5, feature_dim=0)

    def test_relation_spec_validation(self):
        with pytest.raises(DatasetError):
            RelationSpec("r", "a", "b", avg_degree=0.0)
        with pytest.raises(DatasetError):
            RelationSpec("r", "a", "b", affinity=1.5)

    def test_scaled_counts(self):
        counts = tiny_config().scaled_counts(0.5)
        assert counts == {"a": 30, "b": 20}

    def test_scaled_counts_minimum(self):
        counts = tiny_config().scaled_counts(0.01)
        assert min(counts.values()) >= 4

    def test_scaled_counts_invalid(self):
        with pytest.raises(DatasetError):
            tiny_config().scaled_counts(0.0)

    def test_node_type_lookup(self):
        assert tiny_config().node_type("b").count == 40
        with pytest.raises(DatasetError):
            tiny_config().node_type("zzz")


class TestGenerator:
    def test_schema_from_config(self):
        schema = schema_from_config(tiny_config())
        assert schema.target_type == "a"
        assert len(schema.relations) == 1

    def test_generation_deterministic(self):
        g1 = generate_hin(tiny_config(), seed=5)
        g2 = generate_hin(tiny_config(), seed=5)
        assert g1.total_edges == g2.total_edges
        assert np.array_equal(g1.labels, g2.labels)

    def test_different_seeds_differ(self):
        g1 = generate_hin(tiny_config(), seed=1)
        g2 = generate_hin(tiny_config(), seed=2)
        assert not np.array_equal(g1.features["a"], g2.features["a"])

    def test_labels_cover_all_classes(self):
        graph = generate_hin(tiny_config(), seed=0)
        assert set(np.unique(graph.labels)) == {0, 1, 2}

    def test_splits_partition_target(self):
        graph = generate_hin(tiny_config(), seed=0)
        total = len(graph.splits.train) + len(graph.splits.val) + len(graph.splits.test)
        assert total == graph.num_nodes["a"]

    def test_hgb_split_fractions(self):
        graph = generate_hin(tiny_config(), seed=0)
        train_fraction = len(graph.splits.train) / graph.num_nodes["a"]
        assert 0.15 < train_fraction < 0.35

    def test_edges_respect_shapes(self):
        graph = generate_hin(tiny_config(), seed=0)
        matrix = graph.adjacency["ab"]
        assert matrix.shape == (graph.num_nodes["a"], graph.num_nodes["b"])

    def test_assortative_structure(self):
        """Same-topic edges should dominate thanks to the affinity parameter."""
        config = tiny_config()
        graph = generate_hin(config, seed=0)
        matrix = graph.adjacency["ab"].tocoo()
        # topics of type b are not stored, but labels of a are; check edges of
        # nodes in the same class share destinations more often than chance.
        same_dst: dict[int, set[int]] = {}
        for src, dst in zip(matrix.row, matrix.col):
            same_dst.setdefault(int(graph.labels[src]), set()).add(int(dst))
        overlap = len(same_dst.get(0, set()) & same_dst.get(1, set()))
        union = len(same_dst.get(0, set()) | same_dst.get(1, set()))
        assert union == 0 or overlap / union < 0.9

    def test_scale_changes_size(self):
        small = generate_hin(tiny_config(), scale=0.5, seed=0)
        large = generate_hin(tiny_config(), scale=1.0, seed=0)
        assert small.num_nodes["a"] < large.num_nodes["a"]


class TestRegistry:
    def test_all_registered(self):
        assert set(available_datasets()) == {
            "acm",
            "dblp",
            "imdb",
            "freebase",
            "aminer",
            "mutag",
            "am",
        }

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_configs_buildable(self):
        for name in available_datasets():
            config = dataset_config(name)
            schema = schema_from_config(config)
            assert schema.num_classes >= 2

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_each_dataset_loads_at_tiny_scale(self, name):
        graph = load_dataset(name, scale=0.1, seed=0)
        graph.validate()
        assert graph.total_nodes > 0
        assert graph.splits.train.size > 0
        entry = DATASETS[name]
        assert graph.schema.target_type == dataset_config(name).target_type
        assert len(entry.paper_ratios) >= 3

    def test_schema_matches_paper_shape(self):
        acm = dataset_config("acm")
        assert acm.num_classes == 3 and acm.target_type == "paper"
        dblp = dataset_config("dblp")
        assert dblp.num_classes == 4 and dblp.target_type == "author"
        imdb = dataset_config("imdb")
        assert imdb.num_classes == 5 and imdb.target_type == "movie"
        freebase = dataset_config("freebase")
        assert freebase.num_classes == 7 and len(freebase.node_types) == 8
        aminer = dataset_config("aminer")
        assert aminer.num_classes == 8 and len(aminer.node_types) == 3
        mutag = dataset_config("mutag")
        assert mutag.num_classes == 2
        am = dataset_config("am")
        assert am.num_classes == 11
