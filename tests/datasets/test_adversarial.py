"""Tests for the adversarial churn-regime library (repro.datasets.adversarial)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_acm
from repro.datasets.adversarial import (
    ADVERSARIAL_REGIMES,
    churn_regimes,
    generate_adversarial_schedule,
)
from repro.datasets.generators import generate_delta_schedule
from repro.errors import DatasetError
from repro.streaming.apply import DeltaApplier


@pytest.fixture(scope="module")
def graph():
    return load_acm(scale=0.1, seed=0)


def _replay(graph, schedule):
    state = graph.copy()
    applier = DeltaApplier()
    for delta in schedule:
        delta.validate_against(state)
        applier.apply(state, delta)
    return state


class TestRegistry:
    def test_churn_regimes_lists_steady_first(self):
        regimes = churn_regimes()
        assert regimes[0] == "steady"
        assert set(regimes[1:]) == set(ADVERSARIAL_REGIMES)
        assert len(regimes) >= 5  # steady + the four adversarial regimes

    def test_unknown_regime_raises_with_known_list(self, graph):
        with pytest.raises(DatasetError, match="steady"):
            generate_adversarial_schedule(graph, regime="nope", steps=1)

    def test_zero_steps_rejected(self, graph):
        with pytest.raises(DatasetError):
            generate_adversarial_schedule(graph, regime="hub-deletion", steps=0)

    def test_generate_delta_schedule_dispatches_regimes(self, graph):
        via_dispatch = generate_delta_schedule(
            graph, steps=2, seed=5, regime="hub-deletion"
        )
        direct = generate_adversarial_schedule(
            graph, regime="hub-deletion", steps=2, seed=5
        )
        assert [d.to_payload() for d in via_dispatch] == [
            d.to_payload() for d in direct
        ]

    def test_steady_dispatch_unchanged(self, graph):
        legacy = generate_delta_schedule(graph, steps=2, seed=3, edge_churn=0.01)
        routed = generate_delta_schedule(
            graph, steps=2, seed=3, regime="steady", regime_params={"edge_churn": 0.01}
        )
        assert [d.to_payload() for d in legacy] == [d.to_payload() for d in routed]


@pytest.mark.parametrize("regime", sorted(ADVERSARIAL_REGIMES))
class TestEveryRegime:
    def test_deterministic_under_seed(self, graph, regime):
        a = generate_adversarial_schedule(graph, regime=regime, steps=3, seed=11)
        b = generate_adversarial_schedule(graph, regime=regime, steps=3, seed=11)
        assert [d.to_payload() for d in a] == [d.to_payload() for d in b]

    def test_metadata_stamped_and_valid_replay(self, graph, regime):
        schedule = generate_adversarial_schedule(graph, regime=regime, steps=3, seed=1)
        assert [d.step for d in schedule] == [1, 2, 3]
        assert all(d.metadata == {"regime": regime} for d in schedule)
        state = _replay(graph, schedule)  # validate_against must not raise
        assert state.schema.node_types == graph.schema.node_types

    def test_source_graph_not_mutated(self, graph, regime):
        before = {t: int(n) for t, n in graph.num_nodes.items()}
        nnz = {name: m.nnz for name, m in graph.adjacency.items()}
        generate_adversarial_schedule(graph, regime=regime, steps=2, seed=0)
        assert {t: int(n) for t, n in graph.num_nodes.items()} == before
        assert {name: m.nnz for name, m in graph.adjacency.items()} == nnz


class TestHubDeletion:
    def test_removes_highest_degree_non_target_nodes(self, graph):
        schedule = generate_adversarial_schedule(
            graph, regime="hub-deletion", steps=1, seed=0
        )
        delta = schedule[0]
        target = graph.schema.target_type
        assert target not in delta.remove_nodes
        assert delta.remove_nodes  # at least one non-target type hit
        for node_type, removed in delta.remove_nodes.items():
            degrees = np.zeros(graph.num_nodes[node_type], dtype=np.int64)
            for name, matrix in graph.adjacency.items():
                rel = graph.schema.relation(name)
                if rel.src == node_type:
                    degrees += np.diff(matrix.indptr)
                if rel.dst == node_type:
                    coo = matrix.tocoo()
                    degrees += np.bincount(coo.col, minlength=matrix.shape[1])
            assert degrees[int(removed[0])] == degrees.max()


class TestDirtyMaximizer:
    def test_fallback_steps_exceed_threshold(self, graph):
        threshold = 0.05
        schedule = generate_adversarial_schedule(
            graph,
            regime="dirty-maximizer",
            steps=3,
            seed=0,
            params={"recondense_threshold": threshold, "fallback_every": 3},
        )
        state = graph.copy()
        applier = DeltaApplier()
        fractions = []
        for delta in schedule:
            fractions.append(delta.edge_fraction(state))
            applier.apply(state, delta)
        # Steps 1-2 stay under the threshold, step 3 forces the full path.
        assert fractions[0] < threshold
        assert fractions[1] < threshold
        assert fractions[2] > threshold

    def test_edits_concentrate_on_hubs(self, graph):
        hub_count = 4
        schedule = generate_adversarial_schedule(
            graph,
            regime="dirty-maximizer",
            steps=1,
            seed=0,
            params={"hubs": hub_count},
        )
        delta = schedule[0]
        for name, (_, dst) in delta.add_edges.items():
            matrix = graph.adjacency[name]
            coo = matrix.tocoo()
            in_degrees = np.bincount(coo.col, minlength=matrix.shape[1])
            hubs = set(np.argsort(-in_degrees, kind="stable")[:hub_count].tolist())
            assert set(np.asarray(dst).tolist()) <= hubs


class TestBurstArrival:
    def test_bursts_add_nodes_quiet_steps_do_not(self, graph):
        schedule = generate_adversarial_schedule(
            graph,
            regime="burst-arrival",
            steps=4,
            seed=0,
            params={"burst_every": 2},
        )
        burst_steps = [bool(d.add_nodes) for d in schedule]
        assert burst_steps == [False, True, False, True]
        burst = schedule[1]
        target = graph.schema.target_type
        assert target not in burst.add_nodes
        for node_type, feats in burst.add_nodes.items():
            assert feats.shape[0] >= 4
            assert feats.shape[1] == graph.features[node_type].shape[1]

    def test_node_counts_grow_after_replay(self, graph):
        schedule = generate_adversarial_schedule(
            graph, regime="burst-arrival", steps=2, seed=0
        )
        state = _replay(graph, schedule)
        grew = [
            t
            for t in graph.schema.node_types
            if state.num_nodes[t] > graph.num_nodes[t]
        ]
        assert grew  # at least one type actually received arrivals


class TestSkewedTypes:
    def test_all_added_edges_hit_the_magnet(self, graph):
        schedule = generate_adversarial_schedule(
            graph, regime="skewed-types", steps=1, seed=0
        )
        delta = schedule[0]
        names = sorted(
            graph.adjacency, key=lambda n: (-graph.adjacency[n].nnz, n)
        )
        magnet_rel = names[0]
        assert set(delta.add_edges) == {magnet_rel}
        coo = graph.adjacency[magnet_rel].tocoo()
        in_degrees = np.bincount(coo.col, minlength=graph.adjacency[magnet_rel].shape[1])
        magnet = int(np.argmax(in_degrees))
        _, dst = delta.add_edges[magnet_rel]
        assert np.all(np.asarray(dst) == magnet)

    def test_other_relations_only_drain(self, graph):
        schedule = generate_adversarial_schedule(
            graph, regime="skewed-types", steps=1, seed=0
        )
        delta = schedule[0]
        names = sorted(
            graph.adjacency, key=lambda n: (-graph.adjacency[n].nnz, n)
        )
        assert set(delta.remove_edges) <= set(names[1:])
        assert delta.remove_edges  # the drain actually happens

    def test_unknown_relation_param_raises(self, graph):
        with pytest.raises(DatasetError, match="unknown relation"):
            generate_adversarial_schedule(
                graph,
                regime="skewed-types",
                steps=1,
                seed=0,
                params={"relation": "no-such-relation"},
            )
