"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.herding import herding_select
from repro.baselines.kcenter import kcenter_select
from repro.core.coverage_kernels import (
    PackedAdjacency,
    greedy_max_coverage_decremental,
    greedy_max_coverage_packed,
    greedy_max_coverage_reference,
)
from repro.core.receptive_field import greedy_max_coverage, receptive_field_size
from repro.core.similarity import metapath_similarity_scores, pairwise_jaccard
from repro.hetero.sparse import boolean_csr, row_normalize
from repro.nn.autograd import Tensor


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@st.composite
def boolean_matrices(draw, max_rows=12, max_cols=15):
    rows = draw(st.integers(2, max_rows))
    cols = draw(st.integers(2, max_cols))
    data = draw(
        arrays(np.int8, (rows, cols), elements=st.integers(0, 1))
    )
    return sp.csr_matrix(data.astype(float))


small_floats = st.floats(-10, 10, allow_nan=False, allow_infinity=False, width=32)


# --------------------------------------------------------------------------- #
# Sparse helpers
# --------------------------------------------------------------------------- #
class TestSparseProperties:
    @given(boolean_matrices())
    @settings(max_examples=30, deadline=None)
    def test_row_normalize_rows_sum_to_one_or_zero(self, matrix):
        normalized = row_normalize(matrix)
        sums = np.asarray(normalized.sum(axis=1)).ravel()
        assert np.all((np.abs(sums - 1.0) < 1e-9) | (np.abs(sums) < 1e-12))

    @given(boolean_matrices())
    @settings(max_examples=30, deadline=None)
    def test_boolean_csr_idempotent(self, matrix):
        once = boolean_csr(matrix)
        twice = boolean_csr(once)
        assert (once != twice).nnz == 0


# --------------------------------------------------------------------------- #
# Jaccard similarity
# --------------------------------------------------------------------------- #
class TestJaccardProperties:
    @given(boolean_matrices())
    @settings(max_examples=30, deadline=None)
    def test_self_similarity_is_one(self, matrix):
        values = pairwise_jaccard(matrix, matrix)
        assert np.allclose(values, 1.0)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_symmetry_and_range(self, seed):
        rng = np.random.default_rng(seed)
        a = sp.csr_matrix((rng.random((8, 12)) < 0.3).astype(float))
        b = sp.csr_matrix((rng.random((8, 12)) < 0.3).astype(float))
        ab = pairwise_jaccard(a, b)
        ba = pairwise_jaccard(b, a)
        assert np.allclose(ab, ba)
        assert np.all(ab >= 0.0) and np.all(ab <= 1.0)


# --------------------------------------------------------------------------- #
# Submodularity of the receptive-field coverage function
# --------------------------------------------------------------------------- #
class TestCoverageProperties:
    @given(boolean_matrices(max_rows=10, max_cols=12), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_monotonicity(self, matrix, seed):
        """|RF(S ∪ {v})| >= |RF(S)| — coverage never decreases."""
        rng = np.random.default_rng(seed)
        nodes = rng.permutation(matrix.shape[0])
        sizes = [receptive_field_size(matrix, nodes[:k]) for k in range(len(nodes) + 1)]
        assert all(sizes[i] <= sizes[i + 1] for i in range(len(sizes) - 1))

    @given(boolean_matrices(max_rows=10, max_cols=12), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_diminishing_returns(self, matrix, seed):
        """f(S + v) - f(S) >= f(W + v) - f(W) for S ⊆ W (submodularity)."""
        rng = np.random.default_rng(seed)
        nodes = rng.permutation(matrix.shape[0])
        v = int(nodes[-1])
        small = nodes[:2]
        large = nodes[: max(3, matrix.shape[0] // 2)]
        gain_small = receptive_field_size(matrix, np.append(small, v)) - receptive_field_size(
            matrix, small
        )
        gain_large = receptive_field_size(matrix, np.append(large, v)) - receptive_field_size(
            matrix, large
        )
        assert gain_small >= gain_large

    @given(boolean_matrices(max_rows=10, max_cols=12), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_greedy_gains_sorted_and_budget_respected(self, matrix, budget):
        result = greedy_max_coverage(matrix, np.arange(matrix.shape[0]), budget)
        assert result.selected.size <= budget
        gains = result.gains
        assert all(gains[i] >= gains[i + 1] for i in range(len(gains) - 1))
        assert result.covered <= matrix.shape[1]

    @given(boolean_matrices(max_rows=10, max_cols=12), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_greedy_achieves_at_least_best_single_node(self, matrix, budget):
        """Greedy coverage with budget >= 1 is at least the best single node."""
        result = greedy_max_coverage(matrix, np.arange(matrix.shape[0]), budget)
        best_single = max(
            receptive_field_size(matrix, np.array([node]))
            for node in range(matrix.shape[0])
        )
        assert result.covered >= best_single


# --------------------------------------------------------------------------- #
# Kernel equivalence: lazy CELF == eager greedy == packed bitset == decremental
# --------------------------------------------------------------------------- #
class TestCoverageKernelEquivalence:
    """Every coverage strategy must return the byte-identical greedy run."""

    @given(
        boolean_matrices(max_rows=16, max_cols=40),
        st.integers(1, 10),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_strategies_identical(self, matrix, budget, seed):
        rng = np.random.default_rng(seed)
        pool_size = int(rng.integers(1, matrix.shape[0] + 1))
        pool = rng.choice(matrix.shape[0], size=pool_size, replace=bool(rng.integers(2)))
        reference = greedy_max_coverage_reference(matrix, pool, budget, lazy=True)
        packed = PackedAdjacency.from_csr(matrix)
        others = [
            greedy_max_coverage_reference(matrix, pool, budget, lazy=False),
            greedy_max_coverage_decremental(matrix, pool, budget),
            greedy_max_coverage_packed(packed, pool, budget, lazy=True, batch_size=2),
            greedy_max_coverage_packed(packed, pool, budget, lazy=False),
            greedy_max_coverage(matrix, pool, budget),
        ]
        for result in others:
            np.testing.assert_array_equal(result.selected, reference.selected)
            np.testing.assert_array_equal(result.gains, reference.gains)
            assert result.covered == reference.covered

    @given(boolean_matrices(max_rows=14, max_cols=30), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_packed_union_matches_csr_union(self, matrix, seed):
        rng = np.random.default_rng(seed)
        nodes = rng.choice(matrix.shape[0], size=int(rng.integers(0, matrix.shape[0] + 1)))
        packed = PackedAdjacency.from_csr(matrix)
        assert receptive_field_size(packed, nodes) == receptive_field_size(matrix, nodes)

    @given(boolean_matrices(max_rows=12, max_cols=20), st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_similarity_scores_symmetric_pair_rewrite(self, matrix, copies):
        """The single-multiply-per-pair rewrite equals the naive double loop."""
        rng = np.random.default_rng(matrix.nnz)
        adjacencies = [matrix]
        for _ in range(copies - 1):
            perm = rng.permutation(matrix.shape[0])
            adjacencies.append(matrix[perm])
        scores = metapath_similarity_scores(adjacencies)
        naive = np.zeros_like(scores)
        for i in range(copies):
            for j in range(copies):
                if i != j:
                    naive[:, i] += pairwise_jaccard(adjacencies[i], adjacencies[j])
        naive /= copies - 1
        np.testing.assert_allclose(scores, naive)


# --------------------------------------------------------------------------- #
# Coreset selection primitives
# --------------------------------------------------------------------------- #
class TestSelectionProperties:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(2, 25),
        st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_herding_unique_and_bounded(self, seed, count, budget):
        points = np.random.default_rng(seed).standard_normal((count, 4))
        chosen = herding_select(points, budget)
        assert len(chosen) == min(budget, count)
        assert len(set(chosen.tolist())) == len(chosen)
        assert chosen.max(initial=-1) < count

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(2, 25),
        st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_kcenter_unique_and_bounded(self, seed, count, budget):
        rng = np.random.default_rng(seed)
        points = rng.standard_normal((count, 3))
        chosen = kcenter_select(points, budget, rng)
        assert len(chosen) == min(budget, count)
        assert len(set(chosen.tolist())) == len(chosen)


# --------------------------------------------------------------------------- #
# Autograd engine
# --------------------------------------------------------------------------- #
class TestAutogradProperties:
    @given(
        arrays(np.float64, (4, 3), elements=st.floats(-5, 5, allow_nan=False)),
        arrays(np.float64, (4, 3), elements=st.floats(-5, 5, allow_nan=False)),
    )
    @settings(max_examples=30, deadline=None)
    def test_addition_gradient_is_ones(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta + tb).sum().backward()
        assert np.allclose(ta.grad, 1.0)
        assert np.allclose(tb.grad, 1.0)

    @given(arrays(np.float64, (3, 4), elements=st.floats(-5, 5, allow_nan=False)))
    @settings(max_examples=30, deadline=None)
    def test_mul_gradient_matches_operand(self, a):
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(a.copy() + 1.0, requires_grad=True)
        (ta * tb).sum().backward()
        assert np.allclose(ta.grad, tb.data)
        assert np.allclose(tb.grad, ta.data)

    @given(arrays(np.float64, (5, 3), elements=st.floats(-8, 8, allow_nan=False)))
    @settings(max_examples=30, deadline=None)
    def test_softmax_rows_are_distributions(self, logits):
        probs = Tensor(logits).softmax(axis=-1).numpy()
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    @given(arrays(np.float64, (6,), elements=st.floats(-3, 3, allow_nan=False)))
    @settings(max_examples=30, deadline=None)
    def test_relu_gradient_zero_one(self, values):
        tensor = Tensor(values, requires_grad=True)
        tensor.relu().sum().backward()
        assert set(np.unique(tensor.grad)).issubset({0.0, 1.0})
