"""The gate: the repo's own ``src/`` tree lints clean.

This is the in-suite twin of the ``lint-smoke`` CI job — if a PR
introduces a non-baselined finding, this test names it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "tools" / "reprolint_baseline.json"


@pytest.fixture(scope="module")
def report():
    baseline = BASELINE if BASELINE.exists() else None
    return run_lint([str(SRC)], baseline=baseline, root=REPO_ROOT)


def test_src_has_no_nonbaselined_findings(report):
    assert report.findings == [], "\n".join(f.render() for f in report.findings)


def test_src_baseline_has_no_expired_entries(report):
    assert report.expired == [], [e.to_dict() for e in report.expired]


def test_src_coverage_is_real(report):
    """The clean result comes from actually walking the tree."""
    assert report.files > 100
    assert len(report.rules) >= 9


def test_every_suppression_in_src_carries_a_reason(report):
    """Reason-less suppressions surface as findings, so clean == reasoned."""
    for finding, suppression in report.suppressed:
        assert suppression.reason, finding.render()
