"""Anchor-fragment validation in tools/check_links.py."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_links = _load_check_links()


class TestSlugify:
    def test_basic_github_slug(self):
        assert check_links.slugify("Adding a rule") == "adding-a-rule"

    def test_punctuation_dropped_and_case_folded(self):
        assert check_links.slugify("What's new? (v2)") == "whats-new-v2"

    def test_markdown_decoration_stripped(self):
        assert check_links.slugify("The `--json` reporter") == "the---json-reporter"
        assert check_links.slugify("See [docs](docs/x.md) here") == "see-docs-here"


class TestHeadingAnchors:
    def test_collects_all_levels(self):
        text = "# Top\n\n## Section One\n\n### Deep dive\n"
        assert check_links.heading_anchors(text) == {"top", "section-one", "deep-dive"}

    def test_duplicates_get_numbered_suffixes(self):
        text = "## Same\n\n## Same\n\n## Same\n"
        assert check_links.heading_anchors(text) == {"same", "same-1", "same-2"}

    def test_headings_inside_code_fences_ignored(self):
        text = "# Real\n\n```\n# not a heading\n```\n"
        assert check_links.heading_anchors(text) == {"real"}


class TestCheckFile:
    def write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def run(self, tmp_path):
        errors = []
        cache = {}
        for path in check_links.markdown_files(tmp_path):
            errors.extend(check_links.check_file(path, tmp_path, cache))
        return errors

    def test_valid_same_file_anchor(self, tmp_path):
        self.write(tmp_path, "a.md", "# Guide\n\nSee [below](#details).\n\n## Details\n")
        assert self.run(tmp_path) == []

    def test_broken_same_file_anchor(self, tmp_path):
        self.write(tmp_path, "a.md", "# Guide\n\nSee [below](#missing).\n")
        errors = self.run(tmp_path)
        assert len(errors) == 1 and "#missing" in errors[0]

    def test_valid_cross_file_anchor(self, tmp_path):
        self.write(tmp_path, "a.md", "[rules](b.md#rule-catalogue)\n")
        self.write(tmp_path, "b.md", "# Doc\n\n## Rule catalogue\n")
        assert self.run(tmp_path) == []

    def test_broken_cross_file_anchor(self, tmp_path):
        self.write(tmp_path, "a.md", "[rules](b.md#nope)\n")
        self.write(tmp_path, "b.md", "# Doc\n")
        errors = self.run(tmp_path)
        assert len(errors) == 1 and "broken anchor" in errors[0]

    def test_missing_file_still_reported(self, tmp_path):
        self.write(tmp_path, "a.md", "[gone](missing.md)\n")
        errors = self.run(tmp_path)
        assert len(errors) == 1 and "broken link" in errors[0]

    def test_external_links_skipped(self, tmp_path):
        self.write(tmp_path, "a.md", "[x](https://example.com#frag) [y](mailto:a@b)\n")
        assert self.run(tmp_path) == []

    def test_links_inside_fences_skipped(self, tmp_path):
        self.write(tmp_path, "a.md", "```\n[x](#nope)\n```\n")
        assert self.run(tmp_path) == []

    def test_anchor_on_non_markdown_target_not_checked(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        self.write(tmp_path, "a.md", "[src](mod.py#L1)\n")
        assert self.run(tmp_path) == []


def test_repo_docs_pass(capsys):
    """The repo's own markdown — including docs/linting.md — stays anchor-clean."""
    assert check_links.main([str(REPO_ROOT), str(REPO_ROOT)]) == 0


def test_main_reports_failures(tmp_path, capsys):
    (tmp_path / "a.md").write_text("[x](#missing)\n", encoding="utf-8")
    assert check_links.main(["check_links", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "broken anchor" in out
