"""Baseline add/expire round-trip and validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import LintError
from repro.lint import Baseline, BaselineEntry, run_lint

BAD_RNG = "import numpy as np\nrng = np.random.default_rng()\n"


def write_module(tmp_path, name="mod.py", source=BAD_RNG):
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return target


def test_baseline_round_trip_add_then_clean(tmp_path):
    """finding → --update-baseline → the same lint run exits clean."""
    write_module(tmp_path)
    baseline_path = tmp_path / "baseline.json"

    first = run_lint([str(tmp_path)], rules=["REP-D101"], root=tmp_path)
    assert first.exit_code == 1 and len(first.findings) == 1

    first.updated_baseline().save(baseline_path)
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert payload["version"] == 1 and len(payload["entries"]) == 1
    assert payload["entries"][0]["reason"]  # placeholder reason is non-empty

    second = run_lint(
        [str(tmp_path)], rules=["REP-D101"], baseline=baseline_path, root=tmp_path
    )
    assert second.exit_code == 0
    assert second.findings == []
    assert len(second.baselined) == 1
    assert second.expired == []


def test_baseline_survives_line_drift(tmp_path):
    """Unrelated edits above the finding keep the baseline entry matching."""
    module = write_module(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    run_lint([str(tmp_path)], rules=["REP-D101"], root=tmp_path).updated_baseline().save(
        baseline_path
    )

    module.write_text(
        "import numpy as np\n\n\nUNRELATED = 1\nrng = np.random.default_rng()\n",
        encoding="utf-8",
    )
    report = run_lint(
        [str(tmp_path)], rules=["REP-D101"], baseline=baseline_path, root=tmp_path
    )
    assert report.exit_code == 0 and len(report.baselined) == 1


def test_baseline_expires_when_finding_is_fixed(tmp_path):
    module = write_module(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    run_lint([str(tmp_path)], rules=["REP-D101"], root=tmp_path).updated_baseline().save(
        baseline_path
    )

    module.write_text(
        "from repro.utils.rng import ensure_rng\nrng = ensure_rng(0)\n",
        encoding="utf-8",
    )
    report = run_lint(
        [str(tmp_path)], rules=["REP-D101"], baseline=baseline_path, root=tmp_path
    )
    assert report.exit_code == 0
    assert len(report.expired) == 1

    # --update-baseline prunes the expired entry
    report.updated_baseline().save(baseline_path)
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert payload["entries"] == []


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    source = (
        "import numpy as np\n"
        "a = np.random.default_rng()\n"
        "b = 1\n"
        "a = np.random.default_rng()\n"
    )
    write_module(tmp_path, source=source)
    report = run_lint([str(tmp_path)], rules=["REP-D101"], root=tmp_path)
    prints = [f.fingerprint for f in report.findings]
    assert len(prints) == 2 and prints[0] != prints[1]


@pytest.mark.parametrize(
    "payload",
    [
        "not json",
        json.dumps({"version": 2, "entries": []}),
        json.dumps({"version": 1}),
        json.dumps({"version": 1, "entries": [{"fingerprint": "x"}]}),
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"fingerprint": "x", "rule": "REP-D101", "path": "a.py", "reason": ""}
                ],
            }
        ),
    ],
    ids=["bad-json", "bad-version", "no-entries", "missing-fields", "empty-reason"],
)
def test_malformed_baseline_raises_lint_error(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload, encoding="utf-8")
    with pytest.raises(LintError):
        Baseline.load(path)


def test_missing_baseline_file_raises_lint_error(tmp_path):
    with pytest.raises(LintError):
        Baseline.load(tmp_path / "absent.json")


def test_baseline_entries_sorted_and_stable(tmp_path):
    entries = [
        BaselineEntry("ff", "REP-U201", "z.py", "why"),
        BaselineEntry("aa", "REP-D101", "a.py", "why"),
    ]
    path = tmp_path / "baseline.json"
    Baseline(entries).save(path)
    loaded = Baseline.load(path)
    assert [e.fingerprint for e in loaded.entries()] == ["aa", "ff"]
    assert "aa" in loaded and loaded.get("aa").rule == "REP-D101"
