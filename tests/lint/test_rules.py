"""Per-rule fixture tests: every rule fires on bad, stays silent on good.

The bad/good snippets live on the rule classes themselves (they also power
``python -m repro lint --selftest``), so this module is automatically
parametrized over every registered rule — a new rule without working
fixtures fails here on the day it lands.
"""

from __future__ import annotations

import pytest

from repro.lint import all_rules, lint_source, selftest

RULES = all_rules()
RULE_IDS = [rule.id for rule in RULES]


def findings_for(rule, source):
    return [
        f
        for f in lint_source(source, path=rule.example_path, rules=[rule.id])
        if f.rule == rule.id
    ]


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_rule_fires_on_bad_example(rule):
    hits = findings_for(rule, rule.bad_example)
    assert hits, f"{rule.id} did not fire on its bad example"
    assert all(f.severity == rule.severity for f in hits)
    assert all(f.path == rule.example_path for f in hits)


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_rule_silent_on_good_example(rule):
    assert findings_for(rule, rule.good_example) == []


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_good_examples_are_fully_clean(rule):
    """Good fixtures model the sanctioned idiom — no *other* rule may fire."""
    hits = lint_source(rule.good_example, path=rule.example_path)
    assert hits == [], [f.render() for f in hits]


@pytest.mark.parametrize("rule", RULES, ids=RULE_IDS)
def test_rule_metadata_complete(rule):
    assert rule.id.startswith("REP-")
    assert rule.invariant, f"{rule.id} must document its invariant"
    assert rule.severity in ("error", "warning")
    described = rule.describe()
    assert described["id"] == rule.id
    assert described["invariant"] == rule.invariant


def test_selftest_passes():
    assert selftest() == []


def test_rule_scope_respected():
    """A scoped rule never fires outside its directories."""
    for rule in RULES:
        if not rule.scope:
            continue
        hits = lint_source(
            rule.bad_example, path="repro/elsewhere/example.py", rules=[rule.id]
        )
        assert hits == [], f"{rule.id} fired outside its scope"


def test_determinism_exemption_for_rng_module():
    """utils/rng.py is the sanctioned RNG funnel — REP-D101 skips it."""
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert lint_source(source, path="repro/utils/rng.py", rules=["REP-D101"]) == []
    assert lint_source(source, path="repro/core/x.py", rules=["REP-D101"]) != []


def test_rules_resolve_by_alias():
    from repro.lint.rules import resolve_rules

    by_alias = resolve_rules(["unseeded-rng"])
    assert [r.id for r in by_alias] == ["REP-D101"]
    # case-insensitive id lookup, deduplicated with its alias
    both = resolve_rules(["rep-d101", "UNSEEDED-RNG"])
    assert [r.id for r in both] == ["REP-D101"]


def test_unknown_rule_raises_registry_error():
    from repro.errors import ReproError
    from repro.lint.rules import resolve_rules

    with pytest.raises(ReproError):
        resolve_rules(["no-such-rule"])
