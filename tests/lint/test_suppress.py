"""Suppression-comment semantics: same-line, disable-next, mandatory reasons."""

from __future__ import annotations

from repro.lint import lint_source
from repro.lint.suppress import SuppressionTable

BAD_RNG = "import numpy as np\nrng = np.random.default_rng()\n"


def test_same_line_suppression_mutes_finding():
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # reprolint: disable=REP-D101 exploratory notebook port\n"
    )
    assert lint_source(source, rules=["REP-D101"]) == []


def test_disable_next_targets_following_line():
    source = (
        "import numpy as np\n"
        "# reprolint: disable-next=REP-D101 exploratory notebook port\n"
        "rng = np.random.default_rng()\n"
    )
    assert lint_source(source, rules=["REP-D101"]) == []


def test_disable_next_does_not_leak_past_one_line():
    source = (
        "import numpy as np\n"
        "# reprolint: disable-next=REP-D101 only the next line\n"
        "x = 1\n"
        "rng = np.random.default_rng()\n"
    )
    hits = lint_source(source, rules=["REP-D101"])
    assert [f.line for f in hits] == [4]


def test_reasonless_suppression_is_invalid_and_annotated():
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # reprolint: disable=REP-D101\n"
    )
    hits = lint_source(source, rules=["REP-D101"])
    assert len(hits) == 1
    assert "suppression missing reason" in hits[0].message


def test_suppression_only_covers_listed_rules():
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # reprolint: disable=REP-U201 wrong rule listed\n"
    )
    assert len(lint_source(source, rules=["REP-D101"])) == 1


def test_multiple_rules_comma_separated():
    table = SuppressionTable.from_source(
        "x = 1  # reprolint: disable=REP-A401,REP-U201 replayed under the WAL lock\n"
    )
    assert table.lookup(1, "REP-A401") is not None
    assert table.lookup(1, "REP-U201") is not None
    assert table.lookup(1, "REP-D101") is None


def test_directive_inside_string_literal_is_ignored():
    table = SuppressionTable.from_source(
        "x = '# reprolint: disable=REP-D101 not a comment'\n"
    )
    assert table.all() == []


def test_case_insensitive_rule_ids():
    table = SuppressionTable.from_source(
        "x = 1  # reprolint: disable=rep-d101 lowercase id\n"
    )
    assert table.lookup(1, "REP-D101") is not None


def test_unparseable_source_yields_empty_table():
    assert SuppressionTable.from_source("def broken(:\n").all() == []


def test_suppressions_counted_in_report(tmp_path):
    from repro.lint import run_lint

    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # reprolint: disable=REP-D101 fixture\n",
        encoding="utf-8",
    )
    report = run_lint([str(target)], rules=["REP-D101"], root=tmp_path)
    assert report.findings == []
    assert len(report.suppressed) == 1
    finding, suppression = report.suppressed[0]
    assert finding.rule == "REP-D101"
    assert suppression.reason == "fixture"
    assert report.per_rule_stats()["REP-D101"]["suppressed"] == 1
