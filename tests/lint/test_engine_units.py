"""Engine/context behaviors the rules rely on, pinned against the repo's idioms."""

from __future__ import annotations

from repro.lint import lint_source
from repro.lint.context import ModuleContext


def test_nested_def_belongs_to_enclosing_function():
    """The run_in_executor pattern: a nested closure's os.replace counts as
    part of the enclosing handler, so the handler's sync_dir keeps it clean."""
    source = (
        "import os\n"
        "from repro.serving.integrity import sync_dir\n"
        "def publish(tmp, final):\n"
        "    def commit():\n"
        "        os.replace(tmp, final)\n"
        "    commit()\n"
        "    sync_dir(os.path.dirname(final))\n"
    )
    assert lint_source(source, rules=["REP-U201"]) == []


def test_blocking_call_inside_executor_closure_is_exempt():
    """REP-A401 analyses only the *direct* async body: a nested def shipped
    to an executor may block freely."""
    source = (
        "import asyncio\n"
        "import os\n"
        "async def handler(path):\n"
        "    loop = asyncio.get_running_loop()\n"
        "    def swap():\n"
        "        os.fsync(3)\n"
        "    await loop.run_in_executor(None, swap)\n"
    )
    assert lint_source(source, path="repro/serving/x.py", rules=["REP-A401"]) == []


def test_nested_async_def_gets_its_own_unit():
    source = (
        "import time\n"
        "def make_handler():\n"
        "    async def handler():\n"
        "        time.sleep(1)\n"
        "    return handler\n"
    )
    hits = lint_source(source, path="repro/serving/x.py", rules=["REP-A401"])
    assert [f.line for f in hits] == [4]
    assert hits[0].symbol.endswith("handler")


def test_shutdown_wait_false_not_flagged():
    source = (
        "async def close(pool):\n"
        "    pool.shutdown(wait=False)\n"
    )
    assert lint_source(source, path="repro/serving/x.py", rules=["REP-A401"]) == []
    blocking = source.replace("wait=False", "wait=True")
    assert len(lint_source(blocking, path="repro/serving/x.py", rules=["REP-A401"])) == 1


def test_cache_guard_resolves_setattr_with_module_constant():
    """hetero/sparse-style: setattr(m, _TOKEN, v) where _TOKEN is a module
    string constant naming a _repro_* attribute."""
    source = (
        "_TOKEN = '_repro_cache_token'\n"
        "def stamp(matrix, value):\n"
        "    setattr(matrix, _TOKEN, value)\n"
    )
    hits = lint_source(source, rules=["REP-C301"])
    assert [f.line for f in hits] == [3]
    guarded = (
        "from repro.hetero.sparse import validate_attribute_caches\n"
        "_TOKEN = '_repro_cache_token'\n"
        "def stamp(matrix, value):\n"
        "    validate_attribute_caches(matrix)\n"
        "    setattr(matrix, _TOKEN, value)\n"
    )
    assert lint_source(guarded, rules=["REP-C301"]) == []


def test_import_alias_resolution():
    """numpy aliased to anything still resolves for the determinism rules."""
    source = "import numpy.random as nr\nrng = nr.default_rng()\n"
    assert len(lint_source(source, rules=["REP-D101"])) == 1
    source = "from numpy.random import default_rng\nrng = default_rng()\n"
    assert len(lint_source(source, rules=["REP-D101"])) == 1


def test_broad_except_with_handling_not_flagged():
    source = (
        "def run(task):\n"
        "    try:\n"
        "        task()\n"
        "    except Exception as exc:\n"
        "        print(exc)\n"
        "        raise\n"
    )
    assert lint_source(source, rules=["REP-E601"]) == []
    bare = (
        "def run(task):\n"
        "    try:\n"
        "        task()\n"
        "    except:\n"
        "        pass\n"
    )
    assert len(lint_source(bare, rules=["REP-E601"])) == 1


def test_sorted_set_iteration_is_clean():
    source = "def order(xs):\n    return [x for x in sorted(set(xs))]\n"
    assert lint_source(source, path="repro/core/x.py", rules=["REP-D102"]) == []
    raw = "def order(xs):\n    return [x for x in set(xs)]\n"
    assert len(lint_source(raw, path="repro/core/x.py", rules=["REP-D102"])) == 1


def test_stable_hashlib_seed_is_clean():
    source = (
        "import hashlib\n"
        "import numpy as np\n"
        "def rng_for(name):\n"
        "    seed = int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], 'big')\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert lint_source(source, rules=["REP-D103"]) == []


def test_unstable_seed_via_keyword():
    source = (
        "from repro.utils.rng import ensure_rng\n"
        "import time\n"
        "rng = ensure_rng(seed=int(time.time()))\n"
    )
    hits = lint_source(source, rules=["REP-D103"])
    assert len(hits) == 1 and "time.time" in hits[0].message


def test_symbol_attribution_uses_qualnames():
    source = (
        "import numpy as np\n"
        "class Store:\n"
        "    def pick(self):\n"
        "        return np.random.default_rng()\n"
    )
    hits = lint_source(source, rules=["REP-D101"])
    assert hits[0].symbol == "Store.pick"


def test_module_level_findings_report_module_symbol():
    hits = lint_source("import numpy as np\nr = np.random.default_rng()\n", rules=["REP-D101"])
    assert hits[0].symbol == "<module>"


def test_module_context_helpers():
    ctx = ModuleContext(
        "pkg/mod.py",
        "import numpy as np\nNAME = 'value'\nx = np.zeros(3)\n",
    )
    import ast

    call = next(n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call))
    assert ctx.qualified(call.func) == "numpy.zeros"
    assert ctx.constants["NAME"] == "value"
    assert ctx.line_text(2) == "NAME = 'value'"
    assert ctx.line_text(99) == ""


def test_process_pool_submission_shapes():
    bad = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def run(items):\n"
        "    def local(x):\n"
        "        return x\n"
        "    pool = ProcessPoolExecutor()\n"
        "    return pool.submit(local, items)\n"
    )
    hits = lint_source(bad, rules=["REP-P501"])
    assert len(hits) == 1 and "local" in hits[0].message
    # thread pools may take closures — only process pools are flagged
    threads = bad.replace("ProcessPoolExecutor", "ThreadPoolExecutor")
    assert lint_source(threads, rules=["REP-P501"]) == []
