"""CLI surface of ``python -m repro lint`` (and the ``list`` integration)."""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import main

BAD_RNG = "import numpy as np\nrng = np.random.default_rng()\n"
CLEAN = "x = 1\n"


@pytest.fixture()
def bad_tree(tmp_path, monkeypatch):
    (tmp_path / "mod.py").write_text(BAD_RNG, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_lint_clean_tree_exits_zero(tmp_path, monkeypatch, capsys):
    (tmp_path / "mod.py").write_text(CLEAN, encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "."]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_lint_findings_exit_one_with_location(bad_tree, capsys):
    assert main(["lint", "."]) == 1
    out = capsys.readouterr().out
    assert "REP-D101" in out and "mod.py:2:" in out


def test_lint_json_matches_schema(bad_tree, capsys):
    assert main(["lint", ".", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["stats"]["findings"] == 1
    assert payload["findings"][0]["rule"] == "REP-D101"


def test_lint_rules_filter(bad_tree, capsys):
    # U201 alone does not fire on this tree
    assert main(["lint", ".", "--rules", "REP-U201"]) == 0
    # alias works and finds the RNG call
    assert main(["lint", ".", "--rules", "unseeded-rng"]) == 1


def test_lint_unknown_rule_exits_two(bad_tree, capsys):
    assert main(["lint", ".", "--rules", "no-such-rule"]) == 2
    assert "error:" in capsys.readouterr().err


def test_lint_missing_target_exits_two(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "absent-dir"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_lint_stats_table(bad_tree, capsys):
    assert main(["lint", ".", "--stats"]) == 1
    out = capsys.readouterr().out
    assert out.splitlines()[0].split()[0] == "rule"
    assert any(line.startswith("REP-D101") for line in out.splitlines())


def test_lint_selftest_ok(bad_tree, capsys):
    from repro.lint.rules import all_rules

    assert main(["lint", "--selftest"]) == 0
    assert f"all {len(all_rules())} rules" in capsys.readouterr().out


def test_lint_list_rules(bad_tree, capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "REP-D101" in out and "REP-U202" in out


def test_lint_list_rules_json(bad_tree, capsys):
    assert main(["lint", "--list-rules", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    ids = [rule["id"] for rule in payload["rules"]]
    assert "REP-D101" in ids and len(ids) >= 9


def test_lint_update_baseline_round_trip(bad_tree, capsys):
    baseline = bad_tree / "baseline.json"
    assert main(["lint", ".", "--baseline", str(baseline), "--update-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()
    # with the baseline in place the same tree lints clean
    assert main(["lint", ".", "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_lint_default_baseline_discovered(bad_tree, capsys):
    """tools/reprolint_baseline.json is picked up from the cwd when present."""
    tools = bad_tree / "tools"
    tools.mkdir()
    assert main(["lint", ".", "--update-baseline"]) == 0
    assert (tools / "reprolint_baseline.json").exists()
    capsys.readouterr()
    assert main(["lint", "."]) == 0


def test_lint_explicit_missing_baseline_exits_two(bad_tree, capsys):
    assert main(["lint", ".", "--baseline", "absent.json"]) == 2
    assert "baseline" in capsys.readouterr().err


def test_list_includes_lint_section(capsys):
    assert main(["list", "lint"]) == 0
    assert "REP-D101" in capsys.readouterr().out


def test_list_json_includes_lint_rules(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["lint"]["subcommand"] == "python -m repro lint"
    assert "REP-U201" in payload["lint"]["rules"]
    assert payload["lint"]["rules"]["REP-U201"]["severity"] == "error"
