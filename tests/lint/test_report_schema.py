"""``--json`` schema stability: the contract the lint-smoke CI job parses."""

from __future__ import annotations

import json

from repro.lint import run_lint
from repro.lint.report import SCHEMA_VERSION, render_human, render_json, render_stats, to_payload

BAD_RNG = "import numpy as np\nrng = np.random.default_rng()\n"


def make_report(tmp_path, source=BAD_RNG):
    (tmp_path / "mod.py").write_text(source, encoding="utf-8")
    return run_lint([str(tmp_path)], root=tmp_path)


def test_payload_top_level_keys_are_stable(tmp_path):
    payload = to_payload(make_report(tmp_path))
    assert sorted(payload) == ["baseline", "exit_code", "findings", "stats", "version"]
    assert payload["version"] == SCHEMA_VERSION == 1


def test_finding_keys_are_stable(tmp_path):
    payload = to_payload(make_report(tmp_path))
    assert len(payload["findings"]) == 1
    finding = payload["findings"][0]
    assert sorted(finding) == [
        "col", "fingerprint", "line", "message", "path", "rule", "severity", "symbol",
    ]
    assert finding["rule"] == "REP-D101"
    assert finding["path"] == "mod.py"
    assert finding["line"] == 2
    assert len(finding["fingerprint"]) == 16


def test_stats_and_baseline_sections(tmp_path):
    payload = to_payload(make_report(tmp_path))
    stats = payload["stats"]
    assert sorted(stats) == ["baselined", "files", "findings", "per_rule", "suppressed"]
    assert stats["files"] == 1 and stats["findings"] == 1
    assert sorted(stats["per_rule"]["REP-D101"]) == [
        "baselined", "findings", "suppressed",
    ]
    assert sorted(payload["baseline"]) == ["entries", "expired", "matched", "path"]
    assert payload["baseline"]["path"] is None
    assert payload["exit_code"] == 1


def test_render_json_is_deterministic(tmp_path):
    report = make_report(tmp_path)
    assert render_json(report) == render_json(report)
    parsed = json.loads(render_json(report))
    assert parsed == to_payload(report)


def test_human_rendering_mentions_location_and_rule(tmp_path):
    text = render_human(make_report(tmp_path))
    assert "mod.py:2:" in text
    assert "REP-D101" in text
    assert "1 file checked: 1 finding" in text


def test_stats_rendering_has_per_rule_rows(tmp_path):
    text = render_stats(make_report(tmp_path))
    assert text.splitlines()[0].split() == ["rule", "findings", "baselined", "suppressed"]
    assert any(line.startswith("REP-D101") for line in text.splitlines())
    assert text.splitlines()[-1].startswith("total")


def test_clean_run_exit_code_zero(tmp_path):
    report = make_report(tmp_path, source="x = 1\n")
    payload = to_payload(report)
    assert payload["exit_code"] == 0 and report.exit_code == 0
    assert "0 findings" in render_human(report)


def test_parse_failure_surfaces_as_engine_finding(tmp_path):
    report = make_report(tmp_path, source="def broken(:\n")
    assert report.exit_code == 1
    assert [f.rule for f in report.findings] == ["REP-E000"]
    assert "does not parse" in report.findings[0].message
