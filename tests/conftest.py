"""Shared fixtures for the test suite.

The fixtures build small, deterministic heterogeneous graphs so every test
runs in milliseconds: a hand-built "toy" graph with a known structure (root /
father / leaf hierarchy), plus tiny instances of the synthetic benchmark
datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_acm, load_dblp, load_imdb
from repro.hetero import HeteroGraphBuilder, HeteroSchema, Relation


def build_toy_schema() -> HeteroSchema:
    """Paper / author / venue / term schema with a root→father→leaf chain."""
    return HeteroSchema(
        node_types=("paper", "author", "venue", "term"),
        relations=(
            Relation("writes", "author", "paper"),
            Relation("published", "paper", "venue"),
            Relation("mentions", "paper", "term"),
            Relation("cites", "paper", "paper"),
        ),
        target_type="paper",
        num_classes=2,
        name="toy",
    )


def build_toy_graph(seed: int = 0, n_paper: int = 40):
    """Small deterministic graph with planted 2-class structure."""
    rng = np.random.default_rng(seed)
    schema = build_toy_schema()
    builder = HeteroGraphBuilder(schema)

    n_author, n_venue, n_term = 30, 6, 20
    labels = np.arange(n_paper) % 2
    author_topic = np.arange(n_author) % 2
    venue_topic = np.arange(n_venue) % 2
    term_topic = np.arange(n_term) % 2

    def features(topics: np.ndarray, dim: int, noise: float) -> np.ndarray:
        means = np.stack([np.ones(dim), -np.ones(dim)])
        return means[topics] + noise * rng.standard_normal((topics.shape[0], dim))

    builder.add_nodes("paper", n_paper, features(labels, 8, 0.8))
    builder.add_nodes("author", n_author, features(author_topic, 6, 0.5))
    builder.add_nodes("venue", n_venue, features(venue_topic, 4, 0.3))
    builder.add_nodes("term", n_term, features(term_topic, 4, 0.5))

    def sample_edges(src_topics, dst_topics, per_src, affinity=0.85):
        src_list, dst_list = [], []
        dst_index = np.arange(dst_topics.shape[0])
        for src in range(src_topics.shape[0]):
            for _ in range(per_src):
                if rng.random() < affinity:
                    pool = dst_index[dst_topics == src_topics[src]]
                else:
                    pool = dst_index
                dst_list.append(int(rng.choice(pool)))
                src_list.append(src)
        return np.array(src_list), np.array(dst_list)

    a_src, a_dst = sample_edges(author_topic, labels, 3)
    builder.add_edges("writes", a_src, a_dst)
    v_src, v_dst = sample_edges(labels, venue_topic, 1)
    builder.add_edges("published", v_src, v_dst)
    t_src, t_dst = sample_edges(labels, term_topic, 2)
    builder.add_edges("mentions", t_src, t_dst)
    c_src, c_dst = sample_edges(labels, labels, 2)
    builder.add_edges("cites", c_src, c_dst)

    builder.set_labels(labels)
    order = rng.permutation(n_paper)
    n_train = max(4, int(0.3 * n_paper))
    n_val = max(2, int(0.1 * n_paper))
    builder.set_splits(order[:n_train], order[n_train : n_train + n_val], order[n_train + n_val :])
    builder.set_metadata(name="toy")
    return builder.build()


@pytest.fixture(scope="session")
def toy_schema() -> HeteroSchema:
    return build_toy_schema()


@pytest.fixture(scope="session")
def toy_graph():
    return build_toy_graph(seed=0)


@pytest.fixture(scope="session")
def tiny_acm():
    return load_acm(scale=0.25, seed=1)


@pytest.fixture(scope="session")
def tiny_dblp():
    return load_dblp(scale=0.25, seed=1)


@pytest.fixture(scope="session")
def tiny_imdb():
    return load_imdb(scale=0.25, seed=1)
