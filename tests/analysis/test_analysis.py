"""Tests for the embedding and coverage analysis utilities (Fig. 9)."""

import numpy as np

from repro.analysis import captured_nodes, coverage_report, pca, tsne
from repro.core import FreeHGC


class TestPCA:
    def test_shape(self):
        points = np.random.default_rng(0).standard_normal((30, 10))
        assert pca(points, 2).shape == (30, 2)

    def test_dim_clamped(self):
        points = np.random.default_rng(0).standard_normal((10, 3))
        assert pca(points, 5).shape == (10, 3)

    def test_captures_variance_direction(self):
        rng = np.random.default_rng(0)
        direction = np.array([1.0, 0.0, 0.0])
        points = np.outer(rng.standard_normal(50) * 10, direction)
        points += 0.01 * rng.standard_normal(points.shape)
        embedded = pca(points, 1)
        assert np.std(embedded) > 5.0


class TestTSNE:
    def test_shape(self):
        points = np.random.default_rng(0).standard_normal((40, 8))
        embedding = tsne(points, 2, iterations=50, seed=0)
        assert embedding.shape == (40, 2)
        assert np.isfinite(embedding).all()

    def test_tiny_input_falls_back(self):
        points = np.random.default_rng(0).standard_normal((2, 4))
        assert tsne(points, 2).shape == (2, 2)

    def test_separates_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((20, 5))
        b = rng.standard_normal((20, 5)) + 30.0
        embedding = tsne(np.vstack([a, b]), 2, iterations=120, seed=0)
        dist_within = np.linalg.norm(embedding[:20] - embedding[:20].mean(0), axis=1).mean()
        dist_between = np.linalg.norm(embedding[:20].mean(0) - embedding[20:].mean(0))
        assert dist_between > dist_within


class TestCoverage:
    def test_captured_nodes_include_selection(self, toy_graph):
        selected = toy_graph.splits.train[:5]
        captured = captured_nodes(toy_graph, selected, max_hops=2, max_paths=8)
        assert set(selected.tolist()) <= set(captured["paper"].tolist())

    def test_captured_nodes_every_type_present(self, toy_graph):
        captured = captured_nodes(toy_graph, toy_graph.splits.train[:5], max_hops=2)
        assert set(captured) == set(toy_graph.schema.node_types)

    def test_empty_selection(self, toy_graph):
        captured = captured_nodes(toy_graph, np.array([], dtype=int), max_hops=2)
        assert all(nodes.size == 0 for nodes in captured.values())

    def test_coverage_report_fields(self, toy_graph):
        report = coverage_report(
            toy_graph, toy_graph.splits.train[:5], method="demo", max_hops=2
        )
        assert report.method == "demo"
        assert report.num_selected == 5
        assert 0.0 <= report.coverage_fraction <= 1.0
        assert report.dispersion >= 0.0
        row = report.as_row()
        assert {"method", "selected", "captured", "coverage_%"} <= set(row)

    def test_freehgc_covers_more_than_random(self, toy_graph):
        """The Fig. 9 claim: FreeHGC's criterion activates more nodes."""
        rng = np.random.default_rng(0)
        budget = 6
        condenser = FreeHGC(max_hops=2, max_paths=8)
        condenser.condense(toy_graph, budget / toy_graph.num_nodes["paper"], seed=0)
        freehgc_selected = condenser.last_target_selection.selected
        random_selected = rng.choice(toy_graph.splits.train, size=budget, replace=False)
        freehgc_report = coverage_report(toy_graph, freehgc_selected, max_hops=2)
        random_report = coverage_report(toy_graph, random_selected, max_hops=2)
        assert freehgc_report.total_captured >= random_report.total_captured
