"""Warm-started coverage must be byte-identical to from-scratch greedy."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.receptive_field import greedy_max_coverage
from repro.streaming import changed_rows, warm_start_coverage


def random_boolean_csr(rng, n_rows=60, n_cols=120, density=0.08):
    matrix = sp.csr_matrix((rng.random((n_rows, n_cols)) < density).astype(float))
    matrix.sum_duplicates()
    return matrix


def perturb(matrix, rng, flips=6):
    """Flip a handful of entries; returns (new_matrix, true_changed_rows)."""
    dense = matrix.toarray().astype(bool)
    rows = rng.integers(0, dense.shape[0], size=flips)
    cols = rng.integers(0, dense.shape[1], size=flips)
    for r, c in zip(rows, cols):
        dense[r, c] = ~dense[r, c]
    new = sp.csr_matrix(dense.astype(float))
    new.sum_duplicates()
    return new, np.unique(rows)


class TestChangedRows:
    def test_exact_diff(self):
        rng = np.random.default_rng(0)
        old = random_boolean_csr(rng)
        new, rows = perturb(old, rng)
        np.testing.assert_array_equal(changed_rows(old, new), rows)

    def test_identical_matrices(self):
        rng = np.random.default_rng(1)
        old = random_boolean_csr(rng)
        assert changed_rows(old, old.copy()).size == 0

    def test_row_growth_marks_new_rows(self):
        rng = np.random.default_rng(2)
        old = random_boolean_csr(rng, n_rows=10)
        grown = sp.vstack([old, random_boolean_csr(rng, n_rows=3)]).tocsr()
        grown.sum_duplicates()
        diff = changed_rows(old, grown)
        assert set(range(10, 13)) <= set(diff.tolist())

    def test_same_lengths_different_columns(self):
        old = sp.csr_matrix(np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]))
        new = sp.csr_matrix(np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 0.0]]))
        for m in (old, new):
            m.sum_duplicates()
        np.testing.assert_array_equal(changed_rows(old, new), [0])


class TestWarmStartCoverage:
    @pytest.mark.parametrize("seed", range(12))
    def test_byte_identical_to_fresh_greedy(self, seed):
        rng = np.random.default_rng(seed)
        old = random_boolean_csr(rng)
        pool = np.unique(rng.integers(0, old.shape[0], size=35))
        budget = int(rng.integers(1, 18))
        previous = greedy_max_coverage(old, pool, budget)
        new, dirty = perturb(old, rng, flips=int(rng.integers(1, 10)))
        warm = warm_start_coverage(new, pool, budget, previous, dirty)
        fresh = greedy_max_coverage(new, pool, budget)
        np.testing.assert_array_equal(warm.selected, fresh.selected)
        np.testing.assert_array_equal(warm.gains, fresh.gains)
        assert warm.covered == fresh.covered

    @pytest.mark.parametrize("seed", range(6))
    def test_overapproximated_dirty_is_safe(self, seed):
        rng = np.random.default_rng(100 + seed)
        old = random_boolean_csr(rng)
        pool = np.arange(old.shape[0])
        previous = greedy_max_coverage(old, pool, 12)
        new, dirty = perturb(old, rng, flips=4)
        superset = np.union1d(dirty, rng.integers(0, old.shape[0], size=20))
        warm = warm_start_coverage(new, pool, 12, previous, superset)
        fresh = greedy_max_coverage(new, pool, 12)
        np.testing.assert_array_equal(warm.selected, fresh.selected)
        np.testing.assert_array_equal(warm.gains, fresh.gains)

    def test_no_dirty_candidates_reuses_previous(self):
        rng = np.random.default_rng(7)
        old = random_boolean_csr(rng)
        pool = np.arange(0, 20)
        previous = greedy_max_coverage(old, pool, 8)
        # Rows 40+ are dirty but outside the pool: result must be reused.
        warm = warm_start_coverage(old, pool, 8, previous, np.arange(40, 50))
        assert warm is previous

    def test_budget_growth_extends_selection(self):
        # Previous run exhausted the budget; the warm start must continue
        # selecting when dirty rows open new coverage.
        dense = np.zeros((4, 8))
        dense[0, :3] = 1.0
        dense[1, 3:5] = 1.0
        matrix = sp.csr_matrix(dense)
        matrix.sum_duplicates()
        pool = np.arange(4)
        previous = greedy_max_coverage(matrix, pool, 3)
        new = dense.copy()
        new[2, 5:8] = 1.0
        new_matrix = sp.csr_matrix(new)
        new_matrix.sum_duplicates()
        warm = warm_start_coverage(new_matrix, pool, 3, previous, np.array([2]))
        fresh = greedy_max_coverage(new_matrix, pool, 3)
        np.testing.assert_array_equal(warm.selected, fresh.selected)
        np.testing.assert_array_equal(warm.gains, fresh.gains)
