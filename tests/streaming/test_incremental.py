"""End-to-end incremental condensation: byte-identical to full recondense."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FreeHGC
from repro.datasets import load_acm
from repro.datasets.generators import generate_delta_schedule
from repro.streaming import (
    DeltaApplier,
    GraphDelta,
    IncrementalCondenser,
    assert_graphs_equal,
    graphs_equal,
)


def make_pair(scale=0.3, seed=0):
    graph = load_acm(scale=scale, seed=seed)
    return graph, graph.copy()


class TestByteIdentical:
    def test_schedule_with_edges_nodes_and_removals(self):
        graph, replica = make_pair()
        schedule = generate_delta_schedule(
            graph,
            steps=6,
            seed=3,
            edge_churn=0.004,
            node_arrival_every=3,
            arrival_count=3,
            removal_every=5,
            removal_count=2,
        )
        condenser = FreeHGC(max_hops=2)
        incremental = IncrementalCondenser(
            graph, condenser=condenser, ratio=0.1, recondense_threshold=0.2, seed=0
        )
        incremental.condense()
        applier = DeltaApplier()
        for delta in schedule:
            report = incremental.step(delta)
            applier.apply(replica, delta)
            full = FreeHGC(max_hops=2).condense(replica, 0.1, seed=0)
            assert_graphs_equal(report.condensed, full)
            assert report.mode in ("incremental", "full")

    def test_target_node_churn(self):
        graph, replica = make_pair()
        dim = graph.features["paper"].shape[1]
        deltas = [
            GraphDelta(
                add_nodes={"paper": np.full((2, dim), 0.5)},
                add_labels=np.array([0, 2]),
                add_split="train",
                step=1,
            ),
            GraphDelta(
                remove_nodes={"paper": graph.splits.train[:2].copy()}, step=2
            ),
        ]
        incremental = IncrementalCondenser(
            graph, condenser=FreeHGC(max_hops=2), ratio=0.15, seed=0
        )
        incremental.condense()
        applier = DeltaApplier()
        for delta in deltas:
            report = incremental.step(delta)
            applier.apply(replica, delta)
            full = FreeHGC(max_hops=2).condense(replica, 0.15, seed=0)
            assert_graphs_equal(report.condensed, full)


class TestThresholdFallback:
    def test_zero_threshold_forces_full(self):
        graph, _ = make_pair()
        incremental = IncrementalCondenser(
            graph, condenser=FreeHGC(max_hops=2), ratio=0.1, recondense_threshold=0.0
        )
        incremental.condense()
        coo = graph.adjacency["paper-author"].tocoo()
        delta = GraphDelta(
            remove_edges={"paper-author": (coo.row[:3], coo.col[:3])}, step=1
        )
        report = incremental.step(delta)
        assert report.mode == "full"

    def test_small_delta_stays_incremental(self):
        graph, _ = make_pair()
        incremental = IncrementalCondenser(
            graph, condenser=FreeHGC(max_hops=2), ratio=0.1, recondense_threshold=0.05
        )
        incremental.condense()
        coo = graph.adjacency["paper-author"].tocoo()
        delta = GraphDelta(
            remove_edges={"paper-author": (coo.row[:2], coo.col[:2])}, step=1
        )
        report = incremental.step(delta)
        assert report.mode == "incremental"
        assert report.edge_fraction <= 0.05

    def test_invalid_threshold_rejected(self):
        graph, _ = make_pair()
        with pytest.raises(ValueError):
            IncrementalCondenser(
                graph, condenser=FreeHGC(), ratio=0.1, recondense_threshold=1.5
            )


class TestMemoBehaviour:
    def test_unrelated_stage_results_are_reused(self):
        graph, _ = make_pair(scale=0.4)
        incremental = IncrementalCondenser(
            graph, condenser=FreeHGC(max_hops=2), ratio=0.1, recondense_threshold=0.1
        )
        incremental.condense()
        # Two consecutive steps churning only paper-term: the author/subject
        # coverage paths are identity-cached, so the selection memo must
        # record hits.
        rng = np.random.default_rng(0)
        for step in (1, 2):
            coo = graph.adjacency["paper-term"].tocoo()
            picked = rng.choice(coo.nnz, size=2, replace=False)
            incremental.step(
                GraphDelta(
                    remove_edges={"paper-term": (coo.row[picked], coo.col[picked])},
                    step=step,
                )
            )
        stats = incremental.selection_memo.stats
        assert stats["hits"] > 0
        assert stats["warm_starts"] + stats["misses"] > 0

    def test_graphs_equal_detects_differences(self):
        graph, replica = make_pair()
        assert graphs_equal(graph, replica)
        replica.labels = replica.labels.copy()
        replica.labels[0] = (replica.labels[0] + 1) % graph.schema.num_classes
        assert not graphs_equal(graph, replica)

    def test_selection_drift_reported(self):
        graph, _ = make_pair()
        incremental = IncrementalCondenser(
            graph, condenser=FreeHGC(max_hops=2), ratio=0.1
        )
        incremental.condense()
        coo = graph.adjacency["paper-subject"].tocoo()
        report = incremental.step(
            GraphDelta(
                remove_edges={"paper-subject": (coo.row[:4], coo.col[:4])}, step=1
            )
        )
        assert report.selection_drift >= 0
        assert report.condense_seconds > 0
