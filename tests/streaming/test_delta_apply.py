"""GraphDelta semantics and DeltaApplier graph mutation / context refresh."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CondensationContext
from repro.core.metapaths import metapath_adjacency
from repro.datasets import load_acm
from repro.streaming import DeltaApplier, DeltaValidationError, GraphDelta


@pytest.fixture()
def graph():
    return load_acm(scale=0.3, seed=0)


def edge_delta(graph, relation, n=5, seed=0, add=True, remove=True, step=1):
    rng = np.random.default_rng(seed)
    rel = graph.schema.relation(relation)
    add_edges, remove_edges = {}, {}
    if add:
        add_edges[relation] = (
            rng.integers(0, graph.num_nodes[rel.src], n),
            rng.integers(0, graph.num_nodes[rel.dst], n),
        )
    if remove:
        coo = graph.adjacency[relation].tocoo()
        picked = rng.choice(coo.nnz, size=min(n, coo.nnz), replace=False)
        remove_edges[relation] = (coo.row[picked], coo.col[picked])
    return GraphDelta(add_edges=add_edges, remove_edges=remove_edges, step=step)


class TestGraphDelta:
    def test_empty_delta(self, graph):
        delta = GraphDelta()
        assert delta.is_empty
        assert delta.edge_fraction(graph) == 0.0
        assert delta.touched_type_pairs(graph) == set()

    def test_edge_counting_includes_removed_node_incidents(self, graph):
        delta = GraphDelta(remove_nodes={"author": np.array([0])})
        incident = int(graph.adjacency["paper-author"].tocsc()[:, 0].nnz)
        assert delta.num_edge_changes(graph) == incident

    def test_validation_rejects_out_of_range(self, graph):
        bad = GraphDelta(
            add_edges={"paper-author": (np.array([10**6]), np.array([0]))}
        )
        with pytest.raises(DeltaValidationError):
            bad.validate_against(graph)

    def test_validation_rejects_unknown_type(self, graph):
        with pytest.raises(DeltaValidationError):
            GraphDelta(remove_nodes={"nope": np.array([0])}).validate_against(graph)

    def test_target_addition_requires_labels(self, graph):
        delta = GraphDelta(add_nodes={"paper": np.zeros((2, graph.features["paper"].shape[1]))})
        with pytest.raises(DeltaValidationError):
            delta.validate_against(graph)

    def test_summary_mentions_counts(self, graph):
        delta = edge_delta(graph, "paper-author", n=3)
        text = delta.summary()
        assert "+3" in text and "-3" in text

    def test_edge_counting_with_same_delta_added_then_removed_node(self, graph):
        """Removing a node that this same delta adds must not crash the
        edge-count estimate (the new id has no incident edges yet)."""
        dim = graph.features["author"].shape[1]
        new_id = graph.num_nodes["author"]
        delta = GraphDelta(
            add_nodes={"author": np.zeros((2, dim))},
            remove_nodes={"author": np.array([new_id + 1, 0])},
        )
        delta.validate_against(graph)
        incident = int(graph.adjacency["paper-author"].tocsc()[:, 0].nnz)
        assert delta.num_edge_changes(graph) == incident
        report = DeltaApplier().apply(graph, delta)
        assert report.nodes_removed == 2


class TestDeltaApplier:
    def test_edge_add_remove_set_semantics(self, graph):
        before = graph.adjacency["paper-author"].copy()
        delta = edge_delta(graph, "paper-author", n=7, seed=1)
        report = DeltaApplier().apply(graph, delta)
        after = graph.adjacency["paper-author"]
        assert report.edges_removed >= 1
        assert after.nnz == before.nnz + report.edges_added - report.edges_removed
        assert after.nnz == 0 or bool((after.data == 1.0).all())
        # idempotent: reapplying the additions changes nothing
        again = DeltaApplier().apply(
            graph, GraphDelta(add_edges=dict(delta.add_edges), step=2)
        )
        assert again.edges_added == 0

    def test_node_addition_extends_everything(self, graph):
        dim = graph.features["author"].shape[1]
        count = graph.num_nodes["author"]
        delta = GraphDelta(add_nodes={"author": np.ones((3, dim))})
        DeltaApplier().apply(graph, delta)
        assert graph.num_nodes["author"] == count + 3
        assert graph.features["author"].shape[0] == count + 3
        assert graph.adjacency["paper-author"].shape[1] == count + 3
        graph.validate()

    def test_target_addition_labels_and_split(self, graph):
        dim = graph.features["paper"].shape[1]
        n = graph.num_nodes["paper"]
        delta = GraphDelta(
            add_nodes={"paper": np.zeros((2, dim))},
            add_labels=np.array([0, 1]),
            add_split="test",
        )
        DeltaApplier().apply(graph, delta)
        assert graph.labels.shape == (n + 2,)
        assert {n, n + 1} <= set(graph.splits.test.tolist())

    def test_tombstone_removal(self, graph):
        target = graph.schema.target_type
        victim = int(graph.splits.train[0])
        delta = GraphDelta(remove_nodes={target: np.array([victim])})
        DeltaApplier().apply(graph, delta)
        assert graph.labels[victim] == -1
        assert victim not in graph.splits.train.tolist()
        assert np.all(graph.features[target][victim] == 0.0)
        for name, matrix in graph.adjacency.items():
            rel = graph.schema.relation(name)
            if rel.src == target:
                assert matrix[victim].nnz == 0
            if rel.dst == target:
                assert matrix.tocsc()[:, victim].nnz == 0
        # node count unchanged: ids stay stable
        assert graph.num_nodes[target] == graph.labels.shape[0]

    def test_edges_to_new_nodes_in_same_delta(self, graph):
        dim = graph.features["author"].shape[1]
        new_id = graph.num_nodes["author"]
        delta = GraphDelta(
            add_nodes={"author": np.zeros((1, dim))},
            add_edges={"paper-author": (np.array([0]), np.array([new_id]))},
        )
        report = DeltaApplier().apply(graph, delta)
        assert report.edges_added == 1
        assert graph.adjacency["paper-author"][0, new_id] == 1.0


class TestContextRefresh:
    """The applier must leave the shared context exactly consistent."""

    def _context_with_all_paths(self, graph):
        context = CondensationContext(graph, max_hops=2, max_paths=16)
        for path in context.metapaths():
            context.receptive_field(path)
        return context

    def test_untouched_paths_survive(self, graph):
        context = self._context_with_all_paths(graph)
        survivors = {
            path.node_types: context.cached_adjacency(path.node_types)
            for path in context.metapaths()
            if not any({"paper", "term"} == set(hop) for hop in path.hops())
        }
        delta = edge_delta(graph, "paper-term", n=5)
        DeltaApplier().apply(graph, delta, context=context)
        for key, matrix in survivors.items():
            assert context.cached_adjacency(key) is matrix

    def test_refreshed_paths_match_recomposition(self, graph):
        context = self._context_with_all_paths(graph)
        delta = edge_delta(graph, "paper-term", n=8, seed=3)
        report = DeltaApplier().apply(graph, delta, context=context)
        assert report.patched_paths or report.invalidated_paths
        for path in context.metapaths():
            served = context.receptive_field(path)
            fresh = metapath_adjacency(graph, path, normalize=False)
            assert served.shape == fresh.shape
            assert served.nnz == fresh.nnz
            assert (served != fresh).nnz == 0

    def test_refresh_after_node_changes(self, graph):
        context = self._context_with_all_paths(graph)
        dim = graph.features["term"].shape[1]
        delta = GraphDelta(
            add_nodes={"term": np.zeros((2, dim))},
            remove_nodes={"author": np.array([1, 4])},
            step=1,
        )
        DeltaApplier().apply(graph, delta, context=context)
        for path in context.metapaths():
            served = context.receptive_field(path)
            fresh = metapath_adjacency(graph, path, normalize=False)
            assert served.shape == fresh.shape
            assert (served != fresh).nnz == 0

    def test_patched_packed_words_are_correct(self, graph):
        from repro.core.coverage_kernels import PackedAdjacency

        context = self._context_with_all_paths(graph)
        # Force packing so the patcher has words to transplant.
        for path in context.metapaths():
            context.packed_receptive_field(path)
        delta = edge_delta(graph, "paper-term", n=6, seed=5)
        report = DeltaApplier().apply(graph, delta, context=context)
        for key in report.patched_paths:
            matrix = context.cached_adjacency(key)
            packed = getattr(matrix, "_repro_packed", None)
            if packed is None:
                continue
            np.testing.assert_array_equal(
                packed.unpack(), matrix.toarray().astype(bool)
            )
            fresh = PackedAdjacency.from_csr(matrix.copy())
            np.testing.assert_array_equal(packed.words, fresh.words)


class TestPayloadRoundTrip:
    """The JSON wire format: POST /delta bodies and WAL records."""

    def roundtrip(self, delta):
        payload = json.loads(json.dumps(delta.to_payload()))
        return GraphDelta.from_payload(payload)

    def assert_deltas_equal(self, left, right):
        assert left.step == right.step
        assert left.add_split == right.add_split
        assert left.metadata == right.metadata
        for attr in ("add_edges", "remove_edges"):
            lhs, rhs = getattr(left, attr), getattr(right, attr)
            assert set(lhs) == set(rhs)
            for name in lhs:
                np.testing.assert_array_equal(lhs[name][0], rhs[name][0])
                np.testing.assert_array_equal(lhs[name][1], rhs[name][1])
        assert set(left.add_nodes) == set(right.add_nodes)
        for t in left.add_nodes:
            np.testing.assert_array_equal(left.add_nodes[t], right.add_nodes[t])
        assert set(left.remove_nodes) == set(right.remove_nodes)
        for t in left.remove_nodes:
            np.testing.assert_array_equal(left.remove_nodes[t], right.remove_nodes[t])
        if left.add_labels is None:
            assert right.add_labels is None
        else:
            np.testing.assert_array_equal(left.add_labels, right.add_labels)

    def test_empty_delta(self):
        delta = GraphDelta()
        back = self.roundtrip(delta)
        assert back.is_empty
        self.assert_deltas_equal(delta, back)
        # an empty delta keeps the historical payload shape: no metadata key
        assert "metadata" not in delta.to_payload()

    def test_tombstone_only_removals(self):
        delta = GraphDelta(
            remove_nodes={"paper": np.array([4, 1, 1, 9]), "author": np.array([], dtype=np.int64)},
            step=7,
        )
        back = self.roundtrip(delta)
        self.assert_deltas_equal(delta, back)
        # ids were deduplicated and sorted on construction, and stay that way
        np.testing.assert_array_equal(back.remove_nodes["paper"], [1, 4, 9])
        assert back.remove_nodes["author"].size == 0
        assert not back.is_empty

    def test_node_arrivals_with_unicode_metadata(self, graph):
        dim = graph.features["paper"].shape[1]
        delta = GraphDelta(
            add_nodes={"paper": np.ones((2, dim))},
            add_labels=np.array([0, 2]),
            add_split="val",
            metadata={"source": "crawl-α", "operator": "Ünïcode ✓ 测试", "batch": 12},
            step=3,
        )
        back = self.roundtrip(delta)
        self.assert_deltas_equal(delta, back)
        assert back.metadata["operator"] == "Ünïcode ✓ 测试"
        assert back.add_labels is not None and back.add_labels.tolist() == [0, 2]
        assert back.add_split == "val"
        back.validate_against(graph)

    def test_edge_delta_roundtrip(self, graph):
        delta = edge_delta(graph, "paper-author", n=4)
        self.assert_deltas_equal(delta, self.roundtrip(delta))

    def test_metadata_rejects_non_dict(self):
        with pytest.raises(DeltaValidationError):
            GraphDelta(metadata=["not", "a", "dict"])

    def test_payload_must_be_object(self):
        with pytest.raises(DeltaValidationError):
            GraphDelta.from_payload([1, 2, 3])
