"""Property tests for GraphDelta.to_payload / from_payload under adversarial inputs.

The JSON wire format feeds the serving server's ``POST /delta`` body and the
replicated tier's write-ahead log, so the round trip must be *exact*: any
asymmetry becomes replica divergence after a WAL replay.  These tests attack
the encoder with the shapes real producers emit in the corners — empty
deltas, non-ASCII metadata, duplicate insert+remove of one edge, zero-row
node additions — plus randomized round-trip trials.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.streaming.delta import DeltaValidationError, GraphDelta


def wire_round_trip(delta: GraphDelta) -> GraphDelta:
    """to_payload -> actual JSON text -> from_payload, like the WAL does."""
    return GraphDelta.from_payload(json.loads(json.dumps(delta.to_payload())))


def assert_payload_fixpoint(delta: GraphDelta) -> None:
    """The wire form must be a fixpoint: re-encoding reproduces it exactly."""
    once = delta.to_payload()
    again = wire_round_trip(delta).to_payload()
    assert once == again


class TestEmptyDelta:
    def test_empty_delta_round_trips(self):
        delta = GraphDelta()
        back = wire_round_trip(delta)
        assert back.is_empty
        assert back.to_payload() == delta.to_payload()

    def test_empty_containers_survive(self):
        delta = GraphDelta(add_edges={}, remove_edges={}, add_nodes={}, remove_nodes={})
        back = wire_round_trip(delta)
        assert back.add_edges == {}
        assert back.remove_edges == {}
        assert back.add_nodes == {}
        assert back.remove_nodes == {}
        assert back.add_labels is None

    def test_zero_row_add_nodes_equivalent_to_absent(self):
        # (0, d) feature matrices lose their dimension as JSON [] — the
        # payload must omit them so encode(decode(x)) == x.
        delta = GraphDelta(add_nodes={"author": np.zeros((0, 7))})
        payload = delta.to_payload()
        assert payload["add_nodes"] == {}
        back = wire_round_trip(delta)
        assert back.add_nodes == {}
        assert_payload_fixpoint(delta)


class TestAdversarialMetadata:
    def test_non_ascii_metadata_keys_and_values(self):
        metadata = {
            "producteur-données": "café ☕",
            "検証": {"キー": [1, 2, 3]},
            "emoji \U0001f9ea": "ßå",
        }
        delta = GraphDelta(step=3, metadata=metadata)
        back = wire_round_trip(delta)
        assert back.metadata == metadata
        assert_payload_fixpoint(delta)

    def test_empty_metadata_omitted_from_payload(self):
        # Older producers never wrote the key; keep their payload shape.
        assert "metadata" not in GraphDelta().to_payload()
        assert "metadata" in GraphDelta(metadata={"k": "v"}).to_payload()

    def test_non_dict_metadata_rejected(self):
        with pytest.raises(DeltaValidationError):
            GraphDelta(metadata=["not", "a", "dict"])  # type: ignore[arg-type]


class TestDuplicateEdgeOps:
    def test_same_edge_inserted_and_removed_survives_round_trip(self):
        delta = GraphDelta(
            add_edges={"paper-author": ([5, 5], [9, 9])},
            remove_edges={"paper-author": ([5], [9])},
        )
        back = wire_round_trip(delta)
        np.testing.assert_array_equal(back.add_edges["paper-author"][0], [5, 5])
        np.testing.assert_array_equal(back.add_edges["paper-author"][1], [9, 9])
        np.testing.assert_array_equal(back.remove_edges["paper-author"][0], [5])
        assert_payload_fixpoint(delta)

    def test_duplicate_remove_node_ids_dedupe_consistently(self):
        # __post_init__ uniques remove_nodes; the payload carries the
        # deduped ids, so decode(encode(x)) is already normalized.
        delta = GraphDelta(remove_nodes={"term": [4, 4, 2, 4]})
        np.testing.assert_array_equal(delta.remove_nodes["term"], [2, 4])
        back = wire_round_trip(delta)
        np.testing.assert_array_equal(back.remove_nodes["term"], [2, 4])
        assert_payload_fixpoint(delta)


class TestLabeledArrivals:
    def test_target_arrivals_with_labels_round_trip(self):
        delta = GraphDelta(
            add_nodes={"paper": np.arange(6, dtype=np.float64).reshape(2, 3)},
            add_labels=np.array([1, -1]),
            add_split="val",
            step=9,
        )
        back = wire_round_trip(delta)
        np.testing.assert_array_equal(back.add_nodes["paper"], delta.add_nodes["paper"])
        np.testing.assert_array_equal(back.add_labels, [1, -1])
        assert back.add_split == "val"
        assert back.step == 9
        assert_payload_fixpoint(delta)

    def test_bad_split_rejected(self):
        with pytest.raises(DeltaValidationError):
            GraphDelta(add_split="production")


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_deltas_are_wire_fixpoints(self, seed):
        rng = np.random.default_rng(seed)
        relations = ["paper-author", "paper-subject", "a-b"]
        types = ["paper", "author", "subject"]

        def edges():
            out = {}
            for name in relations:
                if rng.random() < 0.7:
                    k = int(rng.integers(0, 5))
                    out[name] = (
                        rng.integers(0, 50, size=k),
                        rng.integers(0, 50, size=k),
                    )
            return out

        add_nodes = {}
        for t in types:
            if rng.random() < 0.5:
                add_nodes[t] = rng.standard_normal((int(rng.integers(0, 4)), 5))
        delta = GraphDelta(
            add_edges=edges(),
            remove_edges=edges(),
            add_nodes=add_nodes,
            remove_nodes={
                t: rng.integers(0, 50, size=int(rng.integers(0, 4)))
                for t in types
                if rng.random() < 0.5
            },
            step=int(rng.integers(0, 1000)),
            metadata={} if rng.random() < 0.5 else {"seed": seed, "nøte": "✓"},
        )
        back = wire_round_trip(delta)
        assert_payload_fixpoint(delta)
        # Semantics too, not just payload bytes: every array matches.
        for name, (src, dst) in delta.add_edges.items():
            np.testing.assert_array_equal(back.add_edges[name][0], src)
            np.testing.assert_array_equal(back.add_edges[name][1], dst)
        for t, feats in delta.add_nodes.items():
            if feats.shape[0]:
                np.testing.assert_array_equal(back.add_nodes[t], feats)
            else:
                assert t not in back.add_nodes
        assert back.metadata == delta.metadata
