"""Warm-start certificate divergence under adversarial churn regimes.

The steady-schedule byte-identity tests (test_incremental.py) exercise warm
starts where the dirty set is small and certificates mostly replay.  The
adversarial regimes break exactly those assumptions — hub deletion
invalidates the most cached coverage state per step, burst arrivals grow the
id space mid-certificate — so this file pins the hard guarantee where it is
most likely to crack: a warm-started greedy must stay *byte-identical* to a
fresh condensation of the same graph, on the incremental path, not via the
full-recondense escape hatch.
"""

from __future__ import annotations

import pytest

from repro.core import FreeHGC
from repro.datasets import load_acm
from repro.datasets.adversarial import generate_adversarial_schedule
from repro.streaming import DeltaApplier, IncrementalCondenser, assert_graphs_equal


def run_schedule(regime, *, params=None, scale=0.12, steps=3, seed=0):
    """Drive IncrementalCondenser through an adversarial schedule.

    A 0.5 recondense threshold keeps even hostile deltas on the
    incremental/warm-start path — the code under test — instead of the
    full-recondense fallback.  Returns the per-step modes after asserting
    byte identity against a fresh condensation at every step.
    """
    graph = load_acm(scale=scale, seed=seed)
    replica = graph.copy()
    schedule = generate_adversarial_schedule(
        graph, regime=regime, steps=steps, seed=seed, params=params
    )
    incremental = IncrementalCondenser(
        graph,
        condenser=FreeHGC(max_hops=2),
        ratio=0.2,
        recondense_threshold=0.5,
        seed=0,
    )
    incremental.condense()
    applier = DeltaApplier()
    modes = []
    for delta in schedule:
        report = incremental.step(delta)
        modes.append(report.mode)
        applier.apply(replica, delta)
        fresh = FreeHGC(max_hops=2).condense(replica, 0.2, seed=0)
        assert_graphs_equal(report.condensed, fresh)
    return modes


class TestHubDeletion:
    def test_byte_identical_and_stays_incremental(self):
        modes = run_schedule("hub-deletion", params={"edge_churn": 0.001})
        # The whole point: hub deletions must be absorbable without the
        # full-recondense escape hatch, and still match fresh greedy.
        assert "incremental" in modes

    def test_byte_identical_with_heavier_churn(self):
        run_schedule(
            "hub-deletion",
            params={"hubs_per_step": 2, "edge_churn": 0.004},
            seed=3,
        )


class TestBurstArrival:
    def test_byte_identical_and_stays_incremental(self):
        modes = run_schedule("burst-arrival")
        assert "incremental" in modes
        # At least one step is a burst (nodes arrived) — guaranteed by the
        # regime's default burst_every=2 over 3 steps.

    def test_byte_identical_with_large_bursts(self):
        run_schedule(
            "burst-arrival",
            params={"burst_every": 1, "burst_fraction": 0.05},
            steps=2,
            seed=5,
        )


class TestDirtyMaximizer:
    def test_byte_identical_when_dirty_set_is_maximal(self):
        # fallback_every=0 disables the forced-full steps: every delta stays
        # incremental while dirtying as many targets as the hubs allow.
        modes = run_schedule(
            "dirty-maximizer",
            params={"fallback_every": 0, "edge_churn": 0.003},
        )
        assert modes == ["incremental"] * len(modes)
