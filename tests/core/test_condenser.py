"""Tests for the FreeHGC condenser facade and condensed-graph assembly."""

import numpy as np
import pytest

from repro.core import FreeHGC, assemble_condensed_graph, classify_node_types
from repro.core.synthesis import InformationLossMinimizer
from repro.errors import BudgetError, CondensationError


class TestFreeHGCOnToyGraph:
    def test_condensed_counts_respect_ratio(self, toy_graph):
        condensed = FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.2, seed=0)
        for node_type, count in condensed.num_nodes.items():
            original = toy_graph.num_nodes[node_type]
            assert count <= max(1, round(0.2 * original)) + 1

    def test_condensed_graph_valid(self, toy_graph):
        condensed = FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.25, seed=0)
        condensed.validate()
        assert condensed.schema is toy_graph.schema

    def test_target_nodes_from_train_pool(self, toy_graph):
        condenser = FreeHGC(max_hops=2, max_paths=8)
        condensed = condenser.condense(toy_graph, 0.2, seed=0)
        assert condensed.splits.train.size == condensed.num_nodes["paper"]
        selected = condenser.last_target_selection.selected
        assert set(selected.tolist()) <= set(toy_graph.splits.train.tolist())

    def test_all_classes_present(self, toy_graph):
        condensed = FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.25, seed=0)
        assert set(np.unique(condensed.labels)) == {0, 1}

    def test_metadata_records_method(self, toy_graph):
        condensed = FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.2, seed=0)
        assert condensed.metadata["method"] == "FreeHGC"
        assert condensed.metadata["ratio"] == 0.2

    def test_invalid_ratio_rejected(self, toy_graph):
        with pytest.raises(BudgetError):
            FreeHGC().condense(toy_graph, 0.0)

    def test_deterministic_given_seed(self, toy_graph):
        a = FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.2, seed=3)
        b = FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.2, seed=3)
        assert np.array_equal(a.labels, b.labels)
        assert a.total_edges == b.total_edges


class TestFreeHGCStrategies:
    @pytest.mark.parametrize("target_strategy", ["criterion", "herding"])
    @pytest.mark.parametrize("father_strategy", ["nim", "herding", "ilm"])
    def test_strategy_combinations_produce_valid_graphs(
        self, tiny_dblp, target_strategy, father_strategy
    ):
        condenser = FreeHGC(
            max_hops=2,
            max_paths=8,
            target_strategy=target_strategy,
            father_strategy=father_strategy,
        )
        condensed = condenser.condense(tiny_dblp, 0.15, seed=0)
        condensed.validate()
        assert condensed.num_nodes[tiny_dblp.schema.target_type] >= 1

    @pytest.mark.parametrize("leaf_strategy", ["ilm", "herding", "nim"])
    def test_leaf_strategies(self, tiny_dblp, leaf_strategy):
        condenser = FreeHGC(max_hops=2, max_paths=8, leaf_strategy=leaf_strategy)
        condensed = condenser.condense(tiny_dblp, 0.15, seed=0)
        condensed.validate()
        # DBLP has leaf types term and venue; they must exist in the output
        assert condensed.num_nodes["term"] >= 1
        assert condensed.num_nodes["venue"] >= 1

    def test_invalid_strategy_names(self):
        with pytest.raises(ValueError):
            FreeHGC(target_strategy="magic")
        with pytest.raises(ValueError):
            FreeHGC(father_strategy="magic")
        with pytest.raises(ValueError):
            FreeHGC(leaf_strategy="magic")

    def test_degree_importance_variant(self, toy_graph):
        condensed = FreeHGC(max_hops=2, max_paths=8, importance="degree").condense(
            toy_graph, 0.2, seed=0
        )
        condensed.validate()

    def test_leaf_types_synthesised_on_structure2(self, tiny_dblp):
        hierarchy = classify_node_types(tiny_dblp.schema)
        assert set(hierarchy.leaves) == {"term", "venue"}
        condensed = FreeHGC(max_hops=2, max_paths=8).condense(tiny_dblp, 0.15, seed=0)
        # synthesised leaf nodes connect to selected father (paper) nodes
        rel = tiny_dblp.schema.relations_between("paper", "term")[0]
        assert condensed.adjacency[rel.name].nnz > 0


class TestSyntheticFatherProviders:
    """Regression: father_strategy="ilm" must feed leaf synthesis.

    Synthesised father hyper-nodes used to be silently dropped from the
    provider set, so leaf synthesis fell back to target-only providers and
    (with no direct target-leaf relation) produced isolated leaves.
    """

    def test_synthetic_fathers_connect_to_synthetic_leaves(self, tiny_dblp):
        condenser = FreeHGC(max_hops=2, max_paths=8, father_strategy="ilm")
        condensed = condenser.condense(tiny_dblp, 0.15, seed=0)
        condensed.validate()
        for leaf in ("term", "venue"):
            rel = tiny_dblp.schema.relations_between("paper", leaf)[0]
            assert condensed.adjacency[rel.name].nnz > 0, (
                f"synthetic father 'paper' must stay connected to leaf {leaf!r}"
            )

    def test_leaf_budget_respected_with_synthetic_fathers(self, tiny_dblp):
        condensed = FreeHGC(max_hops=2, max_paths=8, father_strategy="ilm").condense(
            tiny_dblp, 0.15, seed=0
        )
        for node_type, count in condensed.num_nodes.items():
            original = tiny_dblp.num_nodes[node_type]
            assert count <= max(1, round(0.15 * original)) + 1

    @pytest.mark.parametrize("leaf_strategy", ["nim", "herding"])
    def test_synthetic_fathers_connect_to_selected_leaves(self, tiny_dblp, leaf_strategy):
        # father ilm + selection-based leaves: connectivity is recovered by
        # projecting the father hyper-nodes' member sets onto the relation.
        condenser = FreeHGC(
            max_hops=2, max_paths=8, father_strategy="ilm", leaf_strategy=leaf_strategy
        )
        condensed = condenser.condense(tiny_dblp, 0.15, seed=0)
        condensed.validate()
        for leaf in ("term", "venue"):
            rel = tiny_dblp.schema.relations_between("paper", leaf)[0]
            assert condensed.adjacency[rel.name].nnz > 0

    def test_synthesize_accepts_hyper_node_providers(self, tiny_dblp):
        fathers = InformationLossMinimizer().synthesize(
            tiny_dblp, "paper", 6, {"author": tiny_dblp.splits.train[:10]}
        )
        assert fathers.num_nodes <= 6
        leaves = InformationLossMinimizer().synthesize(
            tiny_dblp, "term", 5, {"paper": fathers}
        )
        assert leaves.num_nodes <= 5
        assert "paper" in leaves.hyper_provider_types
        # edges reference father hyper-node indices (condensed space)
        father_indices = [edge[0] for edge in leaves.edges.get("paper", [])]
        assert father_indices, "leaf hyper-nodes must connect to father hyper-nodes"
        assert max(father_indices) < fathers.num_nodes


class TestAssembly:
    def test_overlapping_types_rejected(self, toy_graph):
        synthetic = InformationLossMinimizer().synthesize(
            toy_graph, "term", 3, {"paper": np.arange(5)}
        )
        with pytest.raises(CondensationError):
            assemble_condensed_graph(
                toy_graph,
                {"paper": np.arange(5), "term": np.arange(3), "author": np.arange(3),
                 "venue": np.arange(2)},
                {"term": synthetic},
            )

    def test_target_must_be_selected(self, toy_graph):
        synthetic = InformationLossMinimizer().synthesize(
            toy_graph, "paper", 3, {"author": np.arange(5)}
        )
        with pytest.raises(CondensationError):
            assemble_condensed_graph(
                toy_graph,
                {"author": np.arange(5), "venue": np.arange(2), "term": np.arange(2)},
                {"paper": synthetic},
            )

    def test_missing_type_rejected(self, toy_graph):
        with pytest.raises(CondensationError):
            assemble_condensed_graph(toy_graph, {"paper": np.arange(5)}, {})

    def test_selected_only_assembly(self, toy_graph):
        selected = {
            node_type: np.arange(min(5, toy_graph.num_nodes[node_type]))
            for node_type in toy_graph.schema.node_types
        }
        condensed = assemble_condensed_graph(toy_graph, selected, {})
        condensed.validate()
        assert condensed.num_nodes["paper"] == 5

    def test_synthetic_leaf_assembly(self, toy_graph):
        selected = {
            "paper": toy_graph.splits.train[:8],
            "author": np.arange(6),
            "venue": np.arange(3),
        }
        synthetic = {
            "term": InformationLossMinimizer().synthesize(
                toy_graph, "term", 4, {"paper": selected["paper"]}
            )
        }
        condensed = assemble_condensed_graph(toy_graph, selected, synthetic)
        condensed.validate()
        assert condensed.num_nodes["term"] == synthetic["term"].num_nodes
        # the paper-term relation must carry the synthesised edges
        assert condensed.adjacency["mentions"].shape == (
            len(np.unique(selected["paper"])),
            synthetic["term"].num_nodes,
        )
