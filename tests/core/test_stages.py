"""Tests for the first-class stage API (protocols, plug-ins, results)."""

import numpy as np
import pytest

from repro import registry
from repro.core import (
    CondensationContext,
    ConfigurableStage,
    CriterionTargetStage,
    FreeHGC,
    HerdingOtherStage,
    HerdingTargetStage,
    NeighborInfluenceStage,
    OtherTypeStage,
    StageResult,
    SynthesisStage,
    TargetStage,
)
from repro.core.criterion import TargetSelectionResult
from repro.errors import CondensationError


class TestStageProtocols:
    def test_builtin_stages_satisfy_protocols(self):
        assert isinstance(CriterionTargetStage(), TargetStage)
        assert isinstance(HerdingTargetStage(), TargetStage)
        for stage_cls in (NeighborInfluenceStage, SynthesisStage, HerdingOtherStage):
            assert isinstance(stage_cls(), OtherTypeStage)

    def test_stage_result_requires_exactly_one_payload(self):
        with pytest.raises(CondensationError):
            StageResult("author")
        with pytest.raises(CondensationError):
            StageResult(
                "author",
                selected=np.arange(3),
                synthetic=object(),  # type: ignore[arg-type]
            )
        result = StageResult("author", selected=[2, 0, 1])
        assert result.selected.dtype == np.int64

    def test_from_options_filters_to_consumed_keys(self):
        stage = NeighborInfluenceStage.from_options(
            {"alpha": 0.3, "importance": "degree", "use_similarity": False, "junk": 1}
        )
        assert stage.alpha == 0.3
        assert stage.importance == "degree"
        stage = SynthesisStage.from_options({"add_reverse_edges": False, "alpha": 0.3})
        assert stage.add_reverse_edges is False

    def test_synthesis_requires_providers(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        with pytest.raises(CondensationError):
            SynthesisStage().condense_type(ctx, "term", 3, providers=None)


class TestStageExecution:
    def test_criterion_stage_returns_rich_result(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        outcome = CriterionTargetStage().select_target(ctx, 6)
        assert isinstance(outcome, TargetSelectionResult)
        assert outcome.selected.size > 0

    def test_herding_stage_respects_train_pool(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        selected = HerdingTargetStage().select_target(ctx, 6)
        assert set(selected.tolist()) <= set(toy_graph.splits.train.tolist())

    def test_nim_stage_selects_within_type(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        result = NeighborInfluenceStage().condense_type(ctx, "author", 5)
        assert result.selected.size == 5
        assert result.selected.max() < toy_graph.num_nodes["author"]

    def test_synthesis_stage_builds_hyper_nodes(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        providers = {"paper": toy_graph.splits.train[:8]}
        result = SynthesisStage().condense_type(ctx, "term", 4, providers=providers)
        assert result.synthetic is not None
        assert result.synthetic.num_nodes <= 4


class TestCustomStagePlugin:
    def test_registered_custom_stage_drives_freehgc(self, toy_graph):
        name = "test-first-k"
        if name not in registry.other_stages:

            @registry.other_stages.register(name)
            class FirstKStage(ConfigurableStage):
                """Toy plug-in: keep the first ``budget`` nodes of the type."""

                name = "test-first-k"

                def condense_type(
                    self, context, node_type, budget, *, anchor=None, providers=None
                ):
                    return StageResult(node_type, selected=np.arange(budget))

        condenser = FreeHGC(max_hops=2, max_paths=8, father_strategy=name)
        assert condenser.father_strategy == name
        condensed = condenser.condense(toy_graph, 0.25, seed=0)
        condensed.validate()
        assert condensed.metadata["father_strategy"] == name
        # the plug-in keeps exactly the first author nodes
        expected = max(1, round(0.25 * toy_graph.num_nodes["author"]))
        assert condensed.num_nodes["author"] == expected
