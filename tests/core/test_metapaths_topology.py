"""Tests for meta-path enumeration/composition and topology classification."""

import numpy as np
import pytest

from repro.core import (
    MetaPath,
    TypeHierarchy,
    classify_node_types,
    enumerate_metapaths,
    metapath_adjacency,
    metapaths_to_type,
)
from repro.datasets import dataset_config, schema_from_config
from repro.errors import SchemaError


class TestMetaPath:
    def test_properties(self):
        path = MetaPath(("paper", "author", "paper"))
        assert path.length == 2
        assert path.start == "paper" and path.end == "paper"
        assert path.abbreviation == "PAP"
        assert str(path) == "paper-author-paper"
        assert path.hops() == [("paper", "author"), ("author", "paper")]

    def test_too_short_rejected(self):
        with pytest.raises(SchemaError):
            MetaPath(("paper",))


class TestEnumeration:
    def test_one_hop_paths(self, toy_schema):
        paths = enumerate_metapaths(toy_schema, "paper", 1)
        ends = {p.end for p in paths}
        assert ends == {"author", "venue", "term", "paper"}

    def test_hop_limit_respected(self, toy_schema):
        paths = enumerate_metapaths(toy_schema, "paper", 3)
        assert max(p.length for p in paths) <= 3

    def test_classic_pap_pattern_present(self, toy_schema):
        paths = enumerate_metapaths(toy_schema, "paper", 2)
        assert any(str(p) == "paper-author-paper" for p in paths)

    def test_max_paths_cap(self, toy_schema):
        paths = enumerate_metapaths(toy_schema, "paper", 4, max_paths=5)
        assert len(paths) == 5

    def test_no_revisit_option(self, toy_schema):
        paths = enumerate_metapaths(toy_schema, "paper", 3, allow_revisit=False)
        for path in paths:
            # the anchor may appear only once when revisits are disabled
            assert list(path.node_types).count("paper") == 1

    def test_unknown_start_rejected(self, toy_schema):
        with pytest.raises(SchemaError):
            enumerate_metapaths(toy_schema, "alien", 2)

    def test_invalid_hops_rejected(self, toy_schema):
        with pytest.raises(ValueError):
            enumerate_metapaths(toy_schema, "paper", 0)

    def test_metapaths_to_type(self, toy_schema):
        paths = metapaths_to_type(toy_schema, "paper", "venue", 3)
        assert paths and all(p.end == "venue" for p in paths)

    def test_enumeration_over_all_benchmark_schemas(self):
        for name in ("acm", "dblp", "imdb", "freebase", "mutag", "am", "aminer"):
            config = dataset_config(name)
            schema = schema_from_config(config)
            paths = enumerate_metapaths(schema, config.target_type, 2, max_paths=40)
            assert paths, f"no meta-paths for {name}"


class TestAdjacency:
    def test_normalized_rows(self, toy_graph):
        path = MetaPath(("paper", "author"))
        adjacency = metapath_adjacency(toy_graph, path, normalize=True)
        sums = np.asarray(adjacency.sum(axis=1)).ravel()
        nonzero = sums > 0
        np.testing.assert_allclose(sums[nonzero], 1.0)

    def test_boolean_mode(self, toy_graph):
        path = MetaPath(("paper", "author", "paper"))
        adjacency = metapath_adjacency(toy_graph, path, normalize=False)
        assert set(np.unique(adjacency.data)) <= {1.0}

    def test_shape(self, toy_graph):
        path = MetaPath(("paper", "author", "paper"))
        adjacency = metapath_adjacency(toy_graph, path, normalize=False)
        n = toy_graph.num_nodes["paper"]
        assert adjacency.shape == (n, n)

    def test_two_hop_reaches_more_than_one_hop(self, toy_graph):
        one = metapath_adjacency(toy_graph, MetaPath(("paper", "author")), normalize=False)
        two = metapath_adjacency(
            toy_graph, MetaPath(("paper", "author", "paper")), normalize=False
        )
        assert two.nnz >= one.shape[0]  # 2-hop fan-out is at least self-reachability


class TestTopology:
    def test_toy_hierarchy(self, toy_schema):
        hierarchy = classify_node_types(toy_schema)
        assert hierarchy.root == "paper"
        assert set(hierarchy.fathers) == {"author", "venue", "term"}
        assert hierarchy.leaves == ()
        assert hierarchy.structure == 1

    def test_dblp_structure_two(self):
        schema = schema_from_config(dataset_config("dblp"))
        hierarchy = classify_node_types(schema)
        assert hierarchy.root == "author"
        assert hierarchy.fathers == ("paper",)
        assert set(hierarchy.leaves) == {"term", "venue"}
        assert hierarchy.structure == 2

    def test_freebase_structure_three(self):
        schema = schema_from_config(dataset_config("freebase"))
        hierarchy = classify_node_types(schema)
        assert hierarchy.structure == 3
        assert len(hierarchy.leaves) >= 1

    def test_role_of(self):
        hierarchy = TypeHierarchy("a", ("b",), ("c",))
        assert hierarchy.role_of("a") == "root"
        assert hierarchy.role_of("b") == "father"
        assert hierarchy.role_of("c") == "leaf"
        with pytest.raises(KeyError):
            hierarchy.role_of("zzz")

    def test_every_benchmark_type_classified(self):
        for name in ("acm", "dblp", "imdb", "freebase", "mutag", "am", "aminer"):
            schema = schema_from_config(dataset_config(name))
            hierarchy = classify_node_types(schema)
            covered = {hierarchy.root} | set(hierarchy.fathers) | set(hierarchy.leaves)
            assert covered == set(schema.node_types)
