"""Tests for the shared :class:`~repro.core.context.CondensationContext`."""

import numpy as np
import pytest

import repro.core.context as context_module
import repro.core.criterion as criterion_module
import repro.core.neighbor_influence as nim_module
from repro.core import CondensationContext, FreeHGC
from repro.core.criterion import TargetNodeSelector
from repro.core.metapaths import enumerate_metapaths, metapath_adjacency
from repro.core.neighbor_influence import NeighborInfluenceMaximizer


def _install_adjacency_spy(monkeypatch, calls):
    """Count every real meta-path adjacency composition, cached or not."""

    def spy(graph, metapath, *, normalize=True):
        calls.append((metapath.node_types, bool(normalize)))
        return metapath_adjacency(graph, metapath, normalize=normalize)

    for module in (context_module, criterion_module, nim_module):
        monkeypatch.setattr(module, "metapath_adjacency", spy)


def _install_enumeration_spy(monkeypatch, calls):
    def spy(schema, start_type, max_hops, **kwargs):
        calls.append((start_type, max_hops))
        return enumerate_metapaths(schema, start_type, max_hops, **kwargs)

    monkeypatch.setattr(context_module, "enumerate_metapaths", spy)
    monkeypatch.setattr(criterion_module, "enumerate_metapaths", spy)


class TestMemoization:
    def test_adjacency_computed_once(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        path = ctx.metapaths()[0]
        first = ctx.adjacency(path)
        second = ctx.adjacency(path)
        assert first is second
        assert ctx.stats["adjacency_builds"] == 1
        assert ctx.stats["adjacency_hits"] == 1

    def test_normalized_and_boolean_cached_separately(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        path = ctx.metapaths()[0]
        boolean = ctx.adjacency(path, normalize=False)
        normalized = ctx.adjacency(path, normalize=True)
        assert boolean is not normalized
        assert ctx.stats["adjacency_builds"] == 2

    def test_enumeration_memoized(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        assert ctx.metapaths() is ctx.metapaths()
        assert ctx.stats["metapath_enumerations"] == 1

    def test_metapaths_to_filters_enumeration(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=16)
        for path in ctx.metapaths_to("author"):
            assert path.end == "author"
        assert ctx.stats["metapath_enumerations"] == 1

    def test_embeddings_memoized(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        assert ctx.target_embeddings() is ctx.target_embeddings()
        assert ctx.other_type_embeddings("author") is ctx.other_type_embeddings("author")

    def test_clear_resets_memo(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        path = ctx.metapaths()[0]
        ctx.adjacency(path)
        ctx.clear()
        ctx.adjacency(path)
        assert ctx.stats["adjacency_builds"] == 2

    def test_invalid_settings_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            CondensationContext(toy_graph, max_hops=0)
        with pytest.raises(ValueError):
            CondensationContext(toy_graph, max_paths=0)


class TestCondenseBuildsEachArtifactOnce:
    def test_adjacency_built_at_most_once_per_condense(self, monkeypatch, toy_graph):
        calls: list[tuple] = []
        _install_adjacency_spy(monkeypatch, calls)
        FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.2, seed=0)
        assert calls, "condense() must compose meta-path adjacencies"
        assert len(calls) == len(set(calls)), (
            "each (metapath, normalize) adjacency must be composed at most once "
            f"per condense() call, got duplicates in {calls}"
        )

    def test_enumeration_runs_once_per_condense(self, monkeypatch, toy_graph):
        calls: list[tuple] = []
        _install_enumeration_spy(monkeypatch, calls)
        FreeHGC(max_hops=2, max_paths=8).condense(toy_graph, 0.2, seed=0)
        assert len(calls) == 1

    def test_adjacency_built_once_across_all_strategies(self, monkeypatch, tiny_dblp):
        calls: list[tuple] = []
        _install_adjacency_spy(monkeypatch, calls)
        FreeHGC(
            max_hops=2,
            max_paths=8,
            target_strategy="herding",
            father_strategy="nim",
            leaf_strategy="herding",
        ).condense(tiny_dblp, 0.15, seed=0)
        assert len(calls) == len(set(calls))

    def test_condense_shares_context_across_stages(self, toy_graph):
        condenser = FreeHGC(max_hops=2, max_paths=8)
        condenser.condense(toy_graph, 0.2, seed=0)
        stats = condenser.last_context.stats
        assert stats["metapath_enumerations"] == 1
        assert stats["adjacency_hits"] > 0, "stages must share cached adjacencies"


class TestCachedResultsIdentical:
    def test_condense_identical_with_and_without_cache(self, toy_graph):
        condenser = FreeHGC(max_hops=2, max_paths=8)
        cached = condenser.condense(toy_graph, 0.2, seed=0)
        cold = condenser.condense(
            toy_graph,
            0.2,
            seed=0,
            context=CondensationContext(toy_graph, max_hops=2, max_paths=8, cache=False),
        )
        assert np.array_equal(cached.labels, cold.labels)
        assert cached.num_nodes == cold.num_nodes
        for name in cached.adjacency:
            assert (cached.adjacency[name] != cold.adjacency[name]).nnz == 0

    def test_selector_identical_with_and_without_context(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        selector = TargetNodeSelector(max_hops=2, max_paths=8)
        with_ctx = selector.select(toy_graph, 6, context=ctx)
        without_ctx = selector.select(toy_graph, 6)
        assert np.array_equal(with_ctx.selected, without_ctx.selected)
        assert np.allclose(with_ctx.scores, without_ctx.scores)

    def test_nim_identical_with_and_without_context(self, toy_graph):
        ctx = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        maximizer = NeighborInfluenceMaximizer(max_hops=2, max_paths=8)
        with_ctx = maximizer.select(toy_graph, "author", 5, context=ctx)
        without_ctx = maximizer.select(toy_graph, "author", 5)
        assert np.array_equal(with_ctx.selected, without_ctx.selected)
        assert np.allclose(with_ctx.influence, without_ctx.influence)

    def test_mismatched_context_ignored_by_selector(self, toy_graph):
        # A context with different hop settings must not poison the result.
        ctx = CondensationContext(toy_graph, max_hops=1, max_paths=4)
        selector = TargetNodeSelector(max_hops=2, max_paths=8)
        with_bad_ctx = selector.select(toy_graph, 6, context=ctx)
        reference = selector.select(toy_graph, 6)
        assert np.array_equal(with_bad_ctx.selected, reference.selected)

    def test_condense_rejects_foreign_context(self, toy_graph, tiny_acm):
        from repro.errors import CondensationError

        condenser = FreeHGC(max_hops=2, max_paths=8)
        foreign = CondensationContext(tiny_acm, max_hops=2, max_paths=8)
        with pytest.raises(CondensationError):
            condenser.condense(toy_graph, 0.2, seed=0, context=foreign)
