"""Tests for receptive-field maximisation, similarity, criterion, NIM, synthesis."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.base import per_type_budgets
from repro.core import (
    InformationLossMinimizer,
    NeighborInfluenceMaximizer,
    TargetNodeSelector,
    classify_node_types,
    greedy_max_coverage,
    jaccard_between_sets,
    metapath_similarity_scores,
    pairwise_jaccard,
    personalized_pagerank,
    receptive_field_size,
)
from repro.errors import BudgetError


def toy_coverage_matrix():
    """5 target rows covering subsets of 6 columns."""
    rows = [
        [0, 1, 2],        # node 0: large RF
        [0, 1],           # node 1: subset of node 0
        [3, 4],           # node 2: disjoint
        [5],              # node 3: small
        [2, 3],           # node 4: overlaps 0 and 2
    ]
    matrix = np.zeros((5, 6))
    for row, cols in enumerate(rows):
        matrix[row, cols] = 1.0
    return sp.csr_matrix(matrix)


class TestReceptiveField:
    def test_receptive_field_size(self):
        adjacency = toy_coverage_matrix()
        assert receptive_field_size(adjacency, np.array([0])) == 3
        assert receptive_field_size(adjacency, np.array([0, 1])) == 3
        assert receptive_field_size(adjacency, np.array([0, 2])) == 5
        assert receptive_field_size(adjacency, np.array([])) == 0

    def test_greedy_prefers_disjoint_coverage(self):
        adjacency = toy_coverage_matrix()
        result = greedy_max_coverage(adjacency, np.arange(5), 2)
        assert set(result.selected.tolist()) == {0, 2}
        assert result.covered == 5

    def test_greedy_respects_budget(self):
        adjacency = toy_coverage_matrix()
        result = greedy_max_coverage(adjacency, np.arange(5), 3)
        assert len(result.selected) <= 3

    def test_greedy_respects_pool(self):
        adjacency = toy_coverage_matrix()
        result = greedy_max_coverage(adjacency, np.array([1, 3]), 2)
        assert set(result.selected.tolist()) <= {1, 3}

    def test_gains_non_increasing(self):
        adjacency = toy_coverage_matrix()
        result = greedy_max_coverage(adjacency, np.arange(5), 5)
        gains = result.gains
        assert all(gains[i] >= gains[i + 1] for i in range(len(gains) - 1))

    def test_lazy_matches_naive(self):
        rng = np.random.default_rng(0)
        adjacency = sp.random(40, 60, density=0.08, random_state=0, format="csr")
        adjacency.data[:] = 1.0
        pool = np.arange(40)
        lazy = greedy_max_coverage(adjacency, pool, 8, lazy=True)
        naive = greedy_max_coverage(adjacency, pool, 8, lazy=False)
        assert lazy.covered == naive.covered
        del rng

    def test_zero_budget(self):
        result = greedy_max_coverage(toy_coverage_matrix(), np.arange(5), 0)
        assert result.selected.size == 0


class TestSimilarity:
    def test_jaccard_between_sets(self):
        assert jaccard_between_sets({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard_between_sets(set(), set()) == 1.0
        assert jaccard_between_sets({1}, {1}) == 1.0

    def test_pairwise_jaccard_identical(self):
        matrix = toy_coverage_matrix()
        np.testing.assert_allclose(pairwise_jaccard(matrix, matrix), 1.0)

    def test_pairwise_jaccard_disjoint(self):
        a = sp.csr_matrix(np.array([[1.0, 0.0, 0.0]]))
        b = sp.csr_matrix(np.array([[0.0, 1.0, 1.0]]))
        assert pairwise_jaccard(a, b)[0] == 0.0

    def test_pairwise_jaccard_empty_rows_are_one(self):
        a = sp.csr_matrix((2, 3))
        assert np.allclose(pairwise_jaccard(a, a), 1.0)

    def test_pairwise_jaccard_range(self):
        rng = np.random.default_rng(0)
        a = sp.csr_matrix((rng.random((10, 20)) < 0.3).astype(float))
        b = sp.csr_matrix((rng.random((10, 20)) < 0.3).astype(float))
        values = pairwise_jaccard(a, b)
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pairwise_jaccard(sp.csr_matrix((2, 3)), sp.csr_matrix((2, 4)))

    def test_similarity_scores_shape(self):
        matrices = [toy_coverage_matrix(), toy_coverage_matrix()]
        scores = metapath_similarity_scores(matrices)
        assert scores.shape == (5, 2)
        np.testing.assert_allclose(scores, 1.0)  # identical meta-paths

    def test_single_metapath_zero_similarity(self):
        scores = metapath_similarity_scores([toy_coverage_matrix()])
        np.testing.assert_allclose(scores, 0.0)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            metapath_similarity_scores([])


class TestTargetSelector:
    def test_selects_budget_from_train_pool(self, toy_graph):
        selector = TargetNodeSelector(max_hops=2, max_paths=8)
        result = selector.select(toy_graph, 8)
        assert 1 <= result.selected.size <= 8
        assert set(result.selected.tolist()) <= set(toy_graph.splits.train.tolist())

    def test_class_balance(self, toy_graph):
        selector = TargetNodeSelector(max_hops=2, max_paths=8)
        result = selector.select(toy_graph, 8)
        labels = toy_graph.labels[result.selected]
        assert set(np.unique(labels)) == {0, 1}

    def test_ablation_variants_differ(self, toy_graph):
        full = TargetNodeSelector(max_hops=2, max_paths=8).select(toy_graph, 6)
        rf_only = TargetNodeSelector(
            max_hops=2, max_paths=8, use_similarity=False
        ).select(toy_graph, 6)
        sim_only = TargetNodeSelector(
            max_hops=2, max_paths=8, use_receptive_field=False
        ).select(toy_graph, 6)
        assert full.selected.size == rf_only.selected.size == sim_only.selected.size
        assert not np.array_equal(np.sort(rf_only.scores), np.zeros_like(rf_only.scores))
        del sim_only

    def test_both_terms_disabled_rejected(self):
        with pytest.raises(ValueError):
            TargetNodeSelector(use_receptive_field=False, use_similarity=False)

    def test_invalid_budget_rejected(self, toy_graph):
        with pytest.raises(BudgetError):
            TargetNodeSelector().select(toy_graph, 0)

    def test_diagnostics_present(self, toy_graph):
        result = TargetNodeSelector(max_hops=2, max_paths=8).select(toy_graph, 4)
        assert result.diagnostics["num_metapaths"] > 0
        assert "class_budgets" in result.diagnostics


class TestPersonalizedPageRank:
    def test_distribution_sums_to_one_ish(self):
        adjacency = sp.csr_matrix(np.ones((4, 4)) - np.eye(4))
        scores = personalized_pagerank(adjacency, np.array([1.0, 0, 0, 0]))
        assert scores.shape == (4,)
        assert np.all(scores >= 0)

    def test_restart_node_has_high_score(self):
        adjacency = sp.csr_matrix(np.ones((5, 5)) - np.eye(5))
        scores = personalized_pagerank(adjacency, np.array([1.0, 0, 0, 0, 0]), alpha=0.5)
        assert scores[0] == scores.max()

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            personalized_pagerank(sp.csr_matrix((2, 3)), np.ones(2))

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            personalized_pagerank(sp.eye(3, format="csr"), np.ones(3), alpha=1.5)

    def test_zero_restart_falls_back_to_uniform(self):
        scores = personalized_pagerank(sp.eye(3, format="csr"), np.zeros(3))
        assert np.allclose(scores, scores[0])


class TestNeighborInfluence:
    def test_selects_budget(self, toy_graph):
        maximizer = NeighborInfluenceMaximizer(max_hops=2, max_paths=8)
        result = maximizer.select(toy_graph, "author", 5)
        assert result.selected.size == 5
        assert result.influence.shape == (toy_graph.num_nodes["author"],)

    def test_anchored_selection_prefers_anchor_neighbors(self, toy_graph):
        anchor = toy_graph.splits.train[:5]
        maximizer = NeighborInfluenceMaximizer(max_hops=1, max_paths=4)
        result = maximizer.select(toy_graph, "author", 5, anchor_nodes=anchor)
        # selected authors should be connected to at least one anchor paper
        adjacency = toy_graph.typed_adjacency("paper", "author")
        connected = np.unique(adjacency[anchor].nonzero()[1])
        assert len(set(result.selected.tolist()) & set(connected.tolist())) > 0

    def test_degree_importance_variant(self, toy_graph):
        maximizer = NeighborInfluenceMaximizer(importance="degree", max_hops=1)
        result = maximizer.select(toy_graph, "venue", 2)
        assert result.selected.size == 2

    def test_invalid_importance(self):
        with pytest.raises(ValueError):
            NeighborInfluenceMaximizer(importance="random")

    def test_target_type_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            NeighborInfluenceMaximizer().select(toy_graph, "paper", 3)

    def test_budget_clamped_to_type_size(self, toy_graph):
        maximizer = NeighborInfluenceMaximizer(max_hops=1)
        result = maximizer.select(toy_graph, "venue", 100)
        assert result.selected.size == toy_graph.num_nodes["venue"]


class TestSynthesis:
    def test_budget_respected(self, toy_graph):
        hierarchy = classify_node_types(toy_graph.schema)
        fathers = {"author": np.arange(10)}
        synthesizer = InformationLossMinimizer()
        result = synthesizer.synthesize(toy_graph, "term", 4, fathers)
        assert result.num_nodes <= 4
        assert result.features.shape[1] == toy_graph.features["term"].shape[1]
        del hierarchy

    def test_features_are_member_means(self, toy_graph):
        synthesizer = InformationLossMinimizer(add_reverse_edges=False)
        result = synthesizer.synthesize(toy_graph, "venue", 100, {"paper": np.arange(8)})
        for hyper_index, members in enumerate(result.members):
            expected = toy_graph.features["venue"][members].mean(axis=0)
            np.testing.assert_allclose(result.features[hyper_index], expected)

    def test_edges_reference_selected_fathers(self, toy_graph):
        selected = {"paper": np.arange(6)}
        result = InformationLossMinimizer().synthesize(toy_graph, "venue", 3, selected)
        for father_type, edges in result.edges.items():
            assert father_type == "paper"
            for father, hyper in edges:
                assert father in set(selected["paper"].tolist())
                assert 0 <= hyper < result.num_nodes

    def test_reverse_edges_add_connectivity(self, toy_graph):
        selected = {"paper": np.arange(12)}
        with_reverse = InformationLossMinimizer(add_reverse_edges=True).synthesize(
            toy_graph, "venue", 6, selected
        )
        without = InformationLossMinimizer(add_reverse_edges=False).synthesize(
            toy_graph, "venue", 6, selected
        )
        assert sum(len(e) for e in with_reverse.edges.values()) >= sum(
            len(e) for e in without.edges.values()
        )

    def test_invalid_budget_rejected(self, toy_graph):
        with pytest.raises(BudgetError):
            InformationLossMinimizer().synthesize(toy_graph, "venue", 0, {"paper": np.arange(3)})

    def test_disconnected_father_fallback(self, toy_graph):
        # venue nodes are not connected to authors directly -> fallback hyper-node
        result = InformationLossMinimizer().synthesize(
            toy_graph, "venue", 3, {"term": np.arange(3)}
        )
        assert result.num_nodes == 1

    def test_invalid_aggregator(self):
        with pytest.raises(ValueError):
            InformationLossMinimizer(aggregator="median")


class TestBudgets:
    def test_per_type_budgets(self, toy_graph):
        budgets = per_type_budgets(toy_graph, 0.1)
        assert budgets["paper"] == max(1, round(0.1 * toy_graph.num_nodes["paper"]))
        assert all(v >= 1 for v in budgets.values())

    def test_invalid_ratio(self, toy_graph):
        with pytest.raises(BudgetError):
            per_type_budgets(toy_graph, 1.5)
