"""Tests for the packed-bitset / decremental coverage kernels."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import CondensationContext, TargetNodeSelector
from repro.core.coverage_kernels import (
    PackedAdjacency,
    bit_count,
    greedy_max_coverage_decremental,
    greedy_max_coverage_packed,
    greedy_max_coverage_reference,
)
from repro.core.receptive_field import greedy_max_coverage, receptive_field_size


def random_boolean_csr(seed: int, n_rows: int = 30, n_cols: int = 80, density: float = 0.15):
    rng = np.random.default_rng(seed)
    return sp.csr_matrix((rng.random((n_rows, n_cols)) < density).astype(float))


class TestBitCount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 2**63, 2**64 - 1], dtype=np.uint64)
        np.testing.assert_array_equal(bit_count(words).astype(int), [0, 1, 2, 1, 64])

    def test_lut_fallback_matches_bit_count(self):
        """The NumPy<2 byte-LUT fallback must agree with the active popcount
        (np.bitwise_count on NumPy>=2) on random words and edge values."""
        from repro.core.coverage_kernels import _bit_count_lut

        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=(7, 13), dtype=np.uint64)
        words[0, 0], words[-1, -1] = np.uint64(0), np.uint64(2**64 - 1)
        np.testing.assert_array_equal(
            _bit_count_lut(words).astype(np.int64), bit_count(words).astype(np.int64)
        )


class TestPackedAdjacency:
    def test_roundtrip(self):
        matrix = random_boolean_csr(0)
        packed = PackedAdjacency.from_csr(matrix)
        np.testing.assert_array_equal(packed.unpack(), matrix.toarray().astype(bool))

    def test_shape_and_word_count(self):
        packed = PackedAdjacency.from_csr(sp.csr_matrix((5, 130)))
        assert packed.shape == (5, 130)
        assert packed.num_words == 3  # ceil(130 / 64)

    def test_row_sizes_match_nnz(self):
        matrix = random_boolean_csr(1)
        packed = PackedAdjacency.from_csr(matrix)
        rows = np.arange(matrix.shape[0])
        np.testing.assert_array_equal(packed.row_sizes(rows), np.diff(matrix.indptr))

    def test_marginal_gains_against_sets(self):
        matrix = random_boolean_csr(2)
        packed = PackedAdjacency.from_csr(matrix)
        covered = packed.empty_cover()
        packed.add_to_cover(0, covered)
        packed.add_to_cover(3, covered)
        covered_cols = set(matrix[0].indices) | set(matrix[3].indices)
        rows = np.arange(matrix.shape[0])
        expected = [
            len(set(matrix[r].indices) - covered_cols) for r in rows
        ]
        np.testing.assert_array_equal(packed.marginal_gains(rows, covered), expected)

    def test_union_count_matches_receptive_field_size(self):
        matrix = random_boolean_csr(3)
        packed = PackedAdjacency.from_csr(matrix)
        nodes = np.array([1, 4, 7, 7, 2])
        assert packed.union_count(nodes) == receptive_field_size(matrix, nodes)
        assert receptive_field_size(packed, nodes) == receptive_field_size(matrix, nodes)

    def test_source_retained(self):
        matrix = random_boolean_csr(4)
        assert PackedAdjacency.from_csr(matrix).source is matrix

    def test_empty_matrix(self):
        packed = PackedAdjacency.from_csr(sp.csr_matrix((3, 0)))
        assert packed.union_count(np.array([0, 1])) == 0


def assert_same_result(result, reference):
    np.testing.assert_array_equal(result.selected, reference.selected)
    np.testing.assert_array_equal(result.gains, reference.gains)
    assert result.covered == reference.covered


class TestKernelEquivalence:
    """All strategies must return byte-identical selections."""

    @pytest.mark.parametrize("seed", range(8))
    def test_all_strategies_agree(self, seed):
        matrix = random_boolean_csr(seed)
        rng = np.random.default_rng(seed)
        pool = rng.choice(matrix.shape[0], size=20, replace=False)
        budget = int(rng.integers(1, 12))
        reference = greedy_max_coverage_reference(matrix, pool, budget, lazy=True)
        packed = PackedAdjacency.from_csr(matrix)
        for result in [
            greedy_max_coverage_reference(matrix, pool, budget, lazy=False),
            greedy_max_coverage_decremental(matrix, pool, budget),
            greedy_max_coverage_packed(packed, pool, budget, lazy=True),
            greedy_max_coverage_packed(packed, pool, budget, lazy=False),
            greedy_max_coverage(matrix, pool, budget),
            greedy_max_coverage(packed, pool, budget, method="celf"),
            greedy_max_coverage(packed, pool, budget, method="eager"),
        ]:
            assert_same_result(result, reference)

    @pytest.mark.parametrize("batch_size", [1, 2, 7, 1024])
    def test_celf_batch_size_invariant(self, batch_size):
        matrix = random_boolean_csr(11)
        packed = PackedAdjacency.from_csr(matrix)
        pool = np.arange(matrix.shape[0])
        reference = greedy_max_coverage_reference(matrix, pool, 10)
        result = greedy_max_coverage_packed(packed, pool, 10, batch_size=batch_size)
        assert_same_result(result, reference)

    def test_tie_breaking_lowest_node_id(self):
        # Rows 1 and 3 are identical; both orders of evaluation must pick 1.
        dense = np.zeros((5, 8))
        dense[1, [0, 1, 2]] = 1.0
        dense[3, [0, 1, 2]] = 1.0
        dense[4, [5]] = 1.0
        matrix = sp.csr_matrix(dense)
        for method in ("decremental", "celf", "eager"):
            result = greedy_max_coverage(matrix, np.arange(5), 2, method=method)
            assert result.selected.tolist() == [1, 4]

    def test_eager_branch_deterministic_ties(self):
        # Regression: the eager reference used Python set iteration order.
        dense = np.zeros((6, 4))
        for row in (5, 2, 4):
            dense[row, :2] = 1.0
        matrix = sp.csr_matrix(dense)
        eager = greedy_max_coverage_reference(matrix, np.arange(6), 1, lazy=False)
        lazy = greedy_max_coverage_reference(matrix, np.arange(6), 1, lazy=True)
        assert eager.selected.tolist() == lazy.selected.tolist() == [2]

    def test_duplicate_pool_entries(self):
        matrix = random_boolean_csr(5)
        pool = np.array([3, 3, 1, 7, 1])
        reference = greedy_max_coverage_reference(matrix, pool, 4)
        assert_same_result(greedy_max_coverage(matrix, pool, 4), reference)

    def test_zero_budget_and_empty_pool(self):
        matrix = random_boolean_csr(6)
        for pool, budget in [(np.arange(5), 0), (np.empty(0, dtype=np.int64), 3)]:
            result = greedy_max_coverage(matrix, pool, budget)
            assert result.selected.size == 0
            assert result.covered == 0

    def test_all_zero_gain_selects_single_node(self):
        matrix = sp.csr_matrix((4, 6))
        reference = greedy_max_coverage_reference(matrix, np.arange(4), 3)
        for method in ("decremental", "celf", "eager"):
            result = greedy_max_coverage(matrix, np.arange(4), 3, method=method)
            assert_same_result(result, reference)
        assert reference.selected.tolist() == [0]

    def test_non_canonical_input_not_mutated_and_set_semantics(self):
        # Duplicate stored entry: col 2 appears twice in row 0.
        matrix = sp.csr_matrix(
            (np.ones(3), np.array([2, 2, 3]), np.array([0, 2, 3])), shape=(2, 5)
        )
        data_before = matrix.data.copy()
        result = greedy_max_coverage_decremental(matrix, np.arange(2), 2)
        np.testing.assert_array_equal(matrix.data, data_before)  # caller untouched
        assert matrix.nnz == 3
        # Set semantics: the duplicate counts once, like the packed kernels.
        packed = greedy_max_coverage_packed(
            PackedAdjacency.from_csr(matrix), np.arange(2), 2
        )
        assert_same_result(result, packed)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            greedy_max_coverage(random_boolean_csr(7), np.arange(3), 2, method="magic")

    def test_decremental_requires_source(self):
        packed = PackedAdjacency.from_csr(random_boolean_csr(8))
        packed.source = None
        with pytest.raises(ValueError):
            greedy_max_coverage(packed, np.arange(3), 2, method="decremental")
        # but auto falls back to batched CELF
        result = greedy_max_coverage(packed, np.arange(3), 2)
        assert result.selected.size > 0


class TestKernelCacheStaleness:
    """Kernel index caches must refresh when the matrix mutates in place."""

    def test_packed_cache_refreshes_after_mutation(self):
        matrix = random_boolean_csr(20)
        stale = PackedAdjacency.from_csr_cached(matrix)
        emptied = sp.csr_matrix(matrix.shape)
        matrix.indptr, matrix.indices, matrix.data = (
            emptied.indptr, emptied.indices, emptied.data.astype(matrix.data.dtype),
        )
        fresh = PackedAdjacency.from_csr_cached(matrix)
        assert fresh is not stale
        assert fresh.words.sum() == 0

    def test_decremental_csc_refreshes_after_mutation(self):
        matrix = random_boolean_csr(21)
        pool = np.arange(matrix.shape[0])
        greedy_max_coverage_decremental(matrix, pool, 5)  # caches _repro_csc
        dense = matrix.toarray()
        dense[:, :] = 0.0
        dense[0, 0] = 1.0
        replacement = sp.csr_matrix(dense)
        matrix.indptr, matrix.indices, matrix.data = (
            replacement.indptr, replacement.indices, replacement.data,
        )
        result = greedy_max_coverage_decremental(matrix, pool, 5)
        reference = greedy_max_coverage_reference(replacement, pool, 5)
        np.testing.assert_array_equal(result.selected, reference.selected)
        assert result.covered == reference.covered == 1

    def test_unmutated_matrix_keeps_caches(self):
        matrix = random_boolean_csr(22)
        packed = PackedAdjacency.from_csr_cached(matrix)
        greedy_max_coverage_decremental(matrix, np.arange(5), 2)
        csc = matrix._repro_csc
        assert PackedAdjacency.from_csr_cached(matrix) is packed
        greedy_max_coverage_decremental(matrix, np.arange(5), 2)
        assert matrix._repro_csc is csc


class TestContextPackedCache:
    def test_packed_receptive_field_memoized(self, toy_graph):
        context = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        path = context.metapaths()[0]
        packed = context.packed_receptive_field(path)
        assert context.packed_receptive_field(path) is packed
        assert context.stats["packed_builds"] == 1
        assert context.stats["packed_hits"] == 1
        np.testing.assert_array_equal(
            packed.unpack(), context.receptive_field(path).toarray().astype(bool)
        )

    def test_clear_drops_packed(self, toy_graph):
        context = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        path = context.metapaths()[0]
        first = context.packed_receptive_field(path)
        builds = context.stats["packed_builds"]
        context.clear()
        # The context-level memo is gone (a fresh lookup is a build, not a
        # hit); the words themselves may be served from the graph-level
        # caches when the underlying adjacency is unchanged — either way
        # they must be identical.
        again = context.packed_receptive_field(path)
        assert context.stats["packed_builds"] == builds + 1
        np.testing.assert_array_equal(again.words, first.words)

    def test_criterion_scores_unchanged_by_context_hoist(self, toy_graph):
        """Per-class criterion scores are identical with and without the
        context-level adjacency hoist."""
        selector = TargetNodeSelector(max_hops=2, max_paths=8)
        context = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        cold = selector.select(toy_graph, 8)
        warm = selector.select(toy_graph, 8, context=context)
        np.testing.assert_array_equal(cold.selected, warm.selected)
        np.testing.assert_array_equal(cold.scores, warm.scores)
        for cls in cold.per_class:
            np.testing.assert_array_equal(cold.per_class[cls], warm.per_class[cls])

    def test_criterion_selector_reuses_kernel_indices(self, toy_graph):
        """The greedy kernels attach their index caches to the context's
        memoized adjacencies, so repeated select() calls rebuild nothing."""
        selector = TargetNodeSelector(max_hops=2, max_paths=8)
        context = CondensationContext(toy_graph, max_hops=2, max_paths=8)
        selector.select(toy_graph, 8, context=context)

        def kernel_index(path):
            adjacency = context.receptive_field(path)
            for attr in ("_repro_csc", "_repro_canonical", "_repro_packed"):
                cached = getattr(adjacency, attr, None)
                if cached is not None:
                    return cached
            return None

        cached = [kernel_index(path) for path in context.metapaths()]
        assert all(index is not None for index in cached)
        selector.select(toy_graph, 8, context=context)
        for path, index in zip(context.metapaths(), cached):
            assert kernel_index(path) is index
