"""Test-session bootstrap.

Makes the ``repro`` package importable directly from ``src/`` so that the
test and benchmark suites run even when the package has not been installed
(useful in offline environments where ``pip install -e .`` cannot download
its build dependencies).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
