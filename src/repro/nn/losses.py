"""Loss functions for the NumPy NN substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor

__all__ = ["cross_entropy", "mse_loss", "gradient_matching_distance"]


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy between ``logits`` and integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.shape[0] != labels.shape[0]:
        raise ValueError(
            f"logits have {logits.shape[0]} rows but labels have {labels.shape[0]} entries"
        )
    log_probs = logits.log_softmax(axis=-1)
    one_hot = np.zeros(logits.shape, dtype=np.float64)
    one_hot[np.arange(labels.shape[0]), labels] = 1.0
    picked = log_probs * Tensor(one_hot)
    return -(picked.sum() * (1.0 / labels.shape[0]))


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target_tensor = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_tensor
    return (diff * diff).mean()


def gradient_matching_distance(
    grads_real: list[np.ndarray], grads_syn: list[Tensor | np.ndarray]
) -> Tensor:
    """Gradient-matching distance used by GCond/HGCond.

    Sum over parameters of ``1 - cosine`` between the real-graph gradient and
    the synthetic-graph gradient.  Synthetic gradients may be tensors (so the
    distance stays differentiable w.r.t. synthetic data) or plain arrays.
    """
    if len(grads_real) != len(grads_syn):
        raise ValueError("gradient lists must have equal length")
    total: Tensor | None = None
    for real, syn in zip(grads_real, grads_syn):
        syn_tensor = syn if isinstance(syn, Tensor) else Tensor(syn)
        real_flat = np.asarray(real, dtype=np.float64).reshape(-1)
        syn_flat = syn_tensor.reshape(-1)
        real_norm = float(np.linalg.norm(real_flat)) + 1e-10
        syn_norm = ((syn_flat * syn_flat).sum() + 1e-10) ** 0.5
        cosine = (syn_flat * Tensor(real_flat)).sum() / (syn_norm * real_norm)
        term = 1.0 - cosine
        total = term if total is None else total + term
    assert total is not None
    return total
