"""Standard layers built on the autograd substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.init import xavier_uniform, zeros
from repro.nn.module import Module
from repro.utils.rng import ensure_rng

__all__ = ["Linear", "ReLU", "Dropout", "LayerNorm", "MLP"]


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", xavier_uniform(in_features, out_features, ensure_rng(rng))
        )
        self.bias = self.register_parameter("bias", zeros(out_features)) if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output


class ReLU(Module):
    """Element-wise rectified linear unit."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, rate: float = 0.5, *, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(rng)

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.dropout(self.rate, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, *, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gain = self.register_parameter("gain", np.ones(dim))
        self.shift = self.register_parameter("shift", np.zeros(dim))

    def forward(self, inputs: Tensor) -> Tensor:
        mean = inputs.mean(axis=-1, keepdims=True)
        centered = inputs - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / ((variance + self.eps) ** 0.5)
        return normalised * self.gain + self.shift


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and dropout."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        *,
        num_layers: int = 2,
        dropout: float = 0.5,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("MLP needs at least one layer")
        rng = ensure_rng(rng)
        self._layers: list[Module] = []
        dims = (
            [in_features]
            + [hidden_features] * (num_layers - 1)
            + [out_features]
        )
        for index in range(num_layers):
            layer = Linear(dims[index], dims[index + 1], rng=rng)
            self.register_module(f"linear_{index}", layer)
            self._layers.append(layer)
        self.dropout = Dropout(dropout, rng=rng)
        self.num_layers = num_layers

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for index, layer in enumerate(self._layers):
            output = layer(output)
            if index < self.num_layers - 1:
                output = output.relu()
                output = self.dropout(output)
        return output
