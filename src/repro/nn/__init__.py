"""Minimal NumPy neural-network substrate (autograd, layers, optimisers)."""

from repro.nn.autograd import Tensor, concat, is_grad_enabled, no_grad, stack
from repro.nn.init import kaiming_uniform, xavier_normal, xavier_uniform, zeros
from repro.nn.layers import MLP, Dropout, LayerNorm, Linear, ReLU
from repro.nn.losses import cross_entropy, gradient_matching_distance, mse_loss
from repro.nn.metrics import accuracy, confusion_matrix, macro_f1, micro_f1
from repro.nn.module import Module, Sequential
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.trainer import TrainConfig, Trainer, TrainResult

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Sequential",
    "Linear",
    "ReLU",
    "Dropout",
    "LayerNorm",
    "MLP",
    "cross_entropy",
    "mse_loss",
    "gradient_matching_distance",
    "SGD",
    "Adam",
    "Optimizer",
    "accuracy",
    "micro_f1",
    "macro_f1",
    "confusion_matrix",
    "TrainConfig",
    "Trainer",
    "TrainResult",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "zeros",
]
