"""Generic full-batch training loop with early stopping.

All HGNN models in :mod:`repro.models` produce logits for every target-type
node from pre-computed inputs, so training is a simple full-batch loop:
forward → cross-entropy on the train split → Adam step, with early stopping
on validation accuracy.  The trainer is model-agnostic: anything with a
``forward(inputs) -> Tensor`` method and parameters works.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.autograd import Tensor, no_grad
from repro.nn.losses import cross_entropy
from repro.nn.metrics import accuracy
from repro.nn.module import Module
from repro.nn.optim import Adam

__all__ = ["TrainConfig", "TrainResult", "Trainer"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the training loop (paper defaults)."""

    lr: float = 0.01
    weight_decay: float = 5e-4
    epochs: int = 200
    patience: int = 30
    verbose: bool = False


@dataclass
class TrainResult:
    """Outcome of one training run."""

    best_val_accuracy: float
    best_epoch: int
    epochs_run: int
    train_seconds: float
    history: list[dict[str, float]] = field(default_factory=list)


class Trainer:
    """Full-batch trainer with validation-accuracy early stopping."""

    def __init__(self, model: Module, config: TrainConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainConfig()

    def fit(
        self,
        inputs: object,
        labels: np.ndarray,
        train_idx: np.ndarray,
        val_idx: np.ndarray | None = None,
    ) -> TrainResult:
        """Train ``self.model`` and restore the best-validation parameters."""
        labels = np.asarray(labels, dtype=np.int64)
        train_idx = np.asarray(train_idx, dtype=np.int64)
        if train_idx.size == 0:
            raise ValueError("cannot train with an empty train split")
        val_idx = np.asarray(val_idx, dtype=np.int64) if val_idx is not None else None
        optimizer = Adam(
            self.model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        best_val = -np.inf
        best_accuracy = 0.0
        best_state = self.model.state_dict()
        best_epoch = 0
        patience_left = self.config.patience
        history: list[dict[str, float]] = []
        start = time.perf_counter()
        epoch = 0
        for epoch in range(1, self.config.epochs + 1):
            self.model.train()
            optimizer.zero_grad()
            logits = self.model(inputs)
            loss = cross_entropy(logits.take_rows(train_idx), labels[train_idx])
            loss.backward()
            optimizer.step()

            # Early-stopping monitor: validation accuracy when a validation
            # split exists; otherwise the (negative) training loss.  Tiny
            # condensed graphs have no validation nodes and reach 100% train
            # accuracy immediately, so accuracy alone would stop training at
            # the first epoch with a near-random model.
            has_val = val_idx is not None and val_idx.size > 0
            if has_val:
                val_acc = self._evaluate_accuracy(inputs, labels, val_idx)
                # Tiny validation splits saturate at 100% immediately; the
                # small loss term breaks ties in favour of better-trained
                # states without ever outweighing a real accuracy difference.
                monitor = val_acc - 1e-3 * loss.item()
            else:
                val_acc = self._evaluate_accuracy(inputs, labels, train_idx)
                monitor = -loss.item()
            history.append({"epoch": epoch, "loss": loss.item(), "val_accuracy": val_acc})
            if monitor > best_val:
                best_val = monitor
                best_accuracy = val_acc
                best_state = self.model.state_dict()
                best_epoch = epoch
                patience_left = self.config.patience
            else:
                patience_left -= 1
                if patience_left <= 0:
                    break
        elapsed = time.perf_counter() - start
        self.model.load_state_dict(best_state)
        return TrainResult(
            best_val_accuracy=float(best_accuracy),
            best_epoch=best_epoch,
            epochs_run=epoch,
            train_seconds=elapsed,
            history=history,
        )

    def predict(self, inputs: object) -> np.ndarray:
        """Class predictions for every node described by ``inputs``."""
        self.model.eval()
        with no_grad():
            logits = self.model(inputs)
        return np.argmax(logits.numpy(), axis=-1)

    def _evaluate_accuracy(
        self, inputs: object, labels: np.ndarray, indices: np.ndarray
    ) -> float:
        predictions = self.predict(inputs)
        return accuracy(predictions[indices], labels[indices])
