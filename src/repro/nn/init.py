"""Parameter initialisers for the NumPy NN substrate."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["xavier_uniform", "xavier_normal", "zeros", "kaiming_uniform"]


def xavier_uniform(
    fan_in: int, fan_out: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    rng = ensure_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_normal(
    fan_in: int, fan_out: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Glorot/Xavier normal initialisation for a ``(fan_in, fan_out)`` matrix."""
    rng = ensure_rng(rng)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def kaiming_uniform(
    fan_in: int, fan_out: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """He/Kaiming uniform initialisation (suited to ReLU networks)."""
    rng = ensure_rng(rng)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zero array of the given shape."""
    return np.zeros(shape, dtype=np.float64)
