"""Optimisers for the NumPy NN substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser holding a list of parameters."""

    def __init__(self, parameters: list[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: list[Tensor],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / (1 - self.beta1**self._step)
            v_hat = self._v[index] / (1 - self.beta2**self._step)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
