"""Module base class and container for the NumPy NN substrate.

Mirrors the familiar ``torch.nn.Module`` contract at a much smaller scale:
modules own named :class:`~repro.nn.autograd.Tensor` parameters, can contain
sub-modules, and expose :meth:`Module.parameters` for the optimisers.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import StateDictError
from repro.nn.autograd import Tensor

__all__ = ["Module", "Sequential"]


class Module:
    """Base class for trainable components."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, value: np.ndarray) -> Tensor:
        """Register ``value`` as a trainable parameter called ``name``."""
        tensor = Tensor(value, requires_grad=True)
        self._parameters[name] = tensor
        return tensor

    def register_module(self, name: str, module: "Module") -> "Module":
        """Register a sub-module called ``name``."""
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Module) and name not in ("_modules",):
            object.__setattr__(self, name, value)
            if hasattr(self, "_modules"):
                self._modules[name] = value
            return
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def parameters(self) -> list[Tensor]:
        """All trainable parameters of this module and its children."""
        return [tensor for _, tensor in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(name, tensor)`` pairs recursively."""
        for name, tensor in self._parameters.items():
            yield f"{prefix}{name}", tensor
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Train / eval and gradient management
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        """Switch this module (and children) into training mode."""
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        """Switch this module (and children) into inference mode."""
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    def zero_grad(self) -> None:
        """Clear every parameter gradient."""
        for param in self.parameters():
            param.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter value keyed by its dotted name."""
        return {name: tensor.data.copy() for name, tensor in self.named_parameters()}

    def load_state_dict(
        self, state: dict[str, np.ndarray], *, strict: bool = True
    ) -> None:
        """Load parameter values previously produced by :meth:`state_dict`.

        With ``strict=True`` (the default) the state dict must match the
        module exactly: a missing parameter, an unexpected extra key or a
        shape mismatch raises :class:`~repro.errors.StateDictError` naming
        every offending key.  ``strict=False`` skips the unexpected-key
        check (partial loading still requires every *own* parameter to be
        present with the right shape — silently loading half a model is how
        serving bundles rot).
        """
        own = dict(self.named_parameters())
        missing = sorted(name for name in own if name not in state)
        unexpected = sorted(name for name in state if name not in own)
        if missing:
            raise StateDictError(
                f"missing parameter(s) in state dict: {', '.join(missing)}"
            )
        if strict and unexpected:
            raise StateDictError(
                f"unexpected key(s) in state dict: {', '.join(unexpected)}"
            )
        staged: dict[str, np.ndarray] = {}
        for name, tensor in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != tensor.data.shape:
                raise StateDictError(
                    f"parameter {name!r} has shape {tensor.data.shape}, "
                    f"state provides {value.shape}"
                )
            staged[name] = value
        # All-or-nothing: nothing is written until every key validated.
        for name, value in staged.items():
            own[name].data = value.copy()

    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: list[Module] = []
        for index, module in enumerate(modules):
            self.register_module(f"layer_{index}", module)
            self._ordered.append(module)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for module in self._ordered:
            output = module(output)
        return output

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)
