"""Classification metrics used throughout the evaluation pipeline."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "micro_f1", "macro_f1", "confusion_matrix"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches between ``predictions`` and ``labels``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if labels.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``num_classes x num_classes`` confusion matrix (rows = true class)."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def micro_f1(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Micro-averaged F1 (equals accuracy for single-label classification)."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    true_positive = np.trace(matrix)
    total = matrix.sum()
    if total == 0:
        return 0.0
    return float(true_positive / total)


def macro_f1(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Macro-averaged F1: unweighted mean of per-class F1 scores.

    Every one of the ``num_classes`` classes contributes to the mean.  A
    class absent from both ``predictions`` and ``labels`` — possible on the
    small label sets of heavily condensed graphs — has an undefined
    precision and recall (0/0); its per-class F1 is *defined as 0*, matching
    the evaluation protocol, instead of being skipped (which silently
    shrinks the denominator) or propagating a NaN/warning.
    """
    matrix = confusion_matrix(predictions, labels, num_classes)
    if num_classes < 1:
        return 0.0
    f1_scores = np.zeros(num_classes, dtype=np.float64)
    for cls in range(num_classes):
        tp = matrix[cls, cls]
        fp = matrix[:, cls].sum() - tp
        fn = matrix[cls, :].sum() - tp
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        if precision + recall > 0:
            f1_scores[cls] = 2 * precision * recall / (precision + recall)
    return float(f1_scores.mean())
