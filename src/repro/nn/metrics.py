"""Classification metrics used throughout the evaluation pipeline."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "micro_f1", "macro_f1", "confusion_matrix"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches between ``predictions`` and ``labels``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if labels.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """``num_classes x num_classes`` confusion matrix (rows = true class)."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def micro_f1(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Micro-averaged F1 (equals accuracy for single-label classification)."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    true_positive = np.trace(matrix)
    total = matrix.sum()
    if total == 0:
        return 0.0
    return float(true_positive / total)


def macro_f1(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Macro-averaged F1: unweighted mean of per-class F1 scores."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    f1_scores = []
    for cls in range(num_classes):
        tp = matrix[cls, cls]
        fp = matrix[:, cls].sum() - tp
        fn = matrix[cls, :].sum() - tp
        if tp + fp + fn == 0:
            continue
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        if precision + recall == 0:
            f1_scores.append(0.0)
        else:
            f1_scores.append(2 * precision * recall / (precision + recall))
    if not f1_scores:
        return 0.0
    return float(np.mean(f1_scores))
