"""A small reverse-mode automatic-differentiation engine on NumPy arrays.

The HGNN evaluation models (and the gradient-matching baselines GCond /
HGCond) need trainable neural networks, but no deep-learning framework is
available offline.  This module provides a deliberately small but correct
autograd: a :class:`Tensor` wrapping a ``numpy.ndarray`` plus the operations
required by the models in :mod:`repro.models` — matrix multiplication,
broadcasting arithmetic, ReLU/tanh/sigmoid/exp/log, reductions, softmax,
concatenation/stacking and dropout.

Gradients are accumulated by topologically sorting the computation graph and
calling each node's locally-stored backward closure, exactly like the classic
micrograd design but vectorised over arrays.  Numerical-gradient checks in
``tests/nn/test_autograd.py`` validate every operation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "concat", "stack", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (used for inference)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Whether new operations record gradient information."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # so ndarray op Tensor defers to Tensor

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] | None = None
        self._parents: tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a 0-d / 1-element tensor."""
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset accumulated gradient."""
        self.grad = None

    @staticmethod
    def _ensure(value: "Tensor | np.ndarray | float | int") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[["Tensor"], None] | None,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires and backward is not None:
            out._parents = parents
            out._backward = lambda: backward(out)
        return out

    @staticmethod
    def _accumulate(tensor: "Tensor", grad: np.ndarray) -> None:
        if not tensor.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), tensor.data.shape)
        if tensor.grad is None:
            tensor.grad = grad.copy()
        else:
            tensor.grad = tensor.grad + grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = self._ensure(other)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad)
            self._accumulate(other, out.grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, -out.grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return self + (-self._ensure(other))

    def __rsub__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return self._ensure(other) + (-self)

    def __mul__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = self._ensure(other)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad * other.data)
            self._accumulate(other, out.grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = self._ensure(other)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad / other.data)
            self._accumulate(other, -out.grad * self.data / (other.data**2))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return self._ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad * exponent * np.power(self.data, exponent - 1))

        return self._make(np.power(self.data, exponent), (self,), backward)

    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other = self._ensure(other)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            if self.requires_grad:
                self._accumulate(self, out.grad @ other.data.T)
            if other.requires_grad:
                self._accumulate(other, self.data.T @ out.grad)

        return self._make(self.data @ other.data, (self, other), backward)

    def matmul_sparse(self, matrix) -> "Tensor":
        """Left-multiply by a (fixed) SciPy sparse matrix: ``matrix @ self``."""

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, matrix.T @ out.grad)

        return self._make(matrix @ self.data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Non-linearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad * (1.0 - value**2))

        return self._make(value, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad * value * (1.0 - value))

        return self._make(value, (self,), backward)

    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad * value)

        return self._make(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        factor = np.where(mask, 1.0, slope)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad * factor)

        return self._make(self.data * factor, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions / reshaping
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(self, np.broadcast_to(grad, self.data.shape))

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad.reshape(original))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self) -> "Tensor":
        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad.T)

        return self._make(self.data.T, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mirror numpy naming
        return self.transpose()

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row-gather: ``out[i] = self[indices[i]]`` with scatter-add backward."""
        indices = np.asarray(indices, dtype=np.int64)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            grad = np.zeros_like(self.data)
            np.add.at(grad, indices, out.grad)
            self._accumulate(self, grad)

        return self._make(self.data[indices], (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        value = exp / exp.sum(axis=axis, keepdims=True)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            dot = (out.grad * value).sum(axis=axis, keepdims=True)
            self._accumulate(self, value * (out.grad - dot))

        return self._make(value, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - log_norm
        softmax = np.exp(value)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            total = out.grad.sum(axis=axis, keepdims=True)
            self._accumulate(self, out.grad - softmax * total)

        return self._make(value, (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator, training: bool = True) -> "Tensor":
        """Inverted dropout; identity when ``training`` is False or rate is 0."""
        if not training or rate <= 0.0:
            return self
        if rate >= 1.0:
            raise ValueError("dropout rate must be < 1")
        mask = (rng.random(self.data.shape) >= rate) / (1.0 - rate)

        def backward(out: "Tensor") -> None:
            assert out.grad is not None
            self._accumulate(self, out.grad * mask)

        return self._make(self.data * mask, (self,), backward)

    # ------------------------------------------------------------------ #
    # Backpropagation
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float64).reshape(self.data.shape)

        ordered: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and id(parent) not in seen_on_stack:
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        ordered.append(current)

        visit(self)
        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(out: Tensor) -> None:
        assert out.grad is not None
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * out.grad.ndim
            slicer[axis] = slice(int(start), int(stop))
            Tensor._accumulate(tensor, out.grad[tuple(slicer)])

    return tensors[0]._make(data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(out: Tensor) -> None:
        assert out.grad is not None
        for index, tensor in enumerate(tensors):
            Tensor._accumulate(tensor, np.take(out.grad, index, axis=axis))

    return tensors[0]._make(data, tuple(tensors), backward)
