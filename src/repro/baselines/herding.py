"""Herding-HG — the herding coreset (Welling, ICML 2009) on HGNN embeddings.

Herding greedily picks, for every class, the samples whose running mean best
approximates the class mean in embedding space.  Target-type nodes use the
concatenated meta-path embeddings; other node types are herded in their raw
feature (+degree) space treating the whole type as one "class".
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GraphCondenser, per_class_budgets, per_type_budgets
from repro.baselines.embeddings import other_type_embeddings, target_embeddings
from repro.hetero.graph import HeteroGraph

__all__ = ["HerdingHG", "herding_select"]


def herding_select(embeddings: np.ndarray, budget: int) -> np.ndarray:
    """Indices of ``budget`` rows whose running mean tracks the global mean.

    Classic herding: at each step pick the sample that moves the running sum
    closest to ``(step + 1) * mean``.
    """
    count = embeddings.shape[0]
    budget = min(budget, count)
    if budget <= 0:
        return np.empty(0, dtype=np.int64)
    mean = embeddings.mean(axis=0)
    selected: list[int] = []
    selected_mask = np.zeros(count, dtype=bool)
    running_sum = np.zeros_like(mean)
    for step in range(budget):
        target_sum = mean * (step + 1)
        gap = target_sum - running_sum
        scores = embeddings @ gap - 0.5 * np.einsum("ij,ij->i", embeddings, embeddings)
        scores[selected_mask] = -np.inf
        choice = int(np.argmax(scores))
        selected.append(choice)
        selected_mask[choice] = True
        running_sum = running_sum + embeddings[choice]
    return np.asarray(selected, dtype=np.int64)


class HerdingHG(GraphCondenser):
    """Herding coreset adapted to heterogeneous graphs."""

    name = "Herding-HG"

    def __init__(self, *, max_hops: int = 2, max_paths: int = 16) -> None:
        self.max_hops = max_hops
        self.max_paths = max_paths

    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> HeteroGraph:
        ratio = self._validate_ratio(graph, ratio)
        budgets = per_type_budgets(graph, ratio)
        target = graph.schema.target_type

        context = self.make_context(graph)
        embeddings = target_embeddings(
            graph, max_hops=self.max_hops, max_paths=self.max_paths, context=context
        )
        class_budgets = per_class_budgets(graph, budgets[target])
        train_pool = graph.splits.train
        train_labels = graph.labels[train_pool]
        selected_target: list[np.ndarray] = []
        for cls, budget in class_budgets.items():
            members = train_pool[train_labels == cls]
            if members.size == 0:
                continue
            local = herding_select(embeddings[members], budget)
            selected_target.append(members[local])
        kept: dict[str, np.ndarray] = {
            target: np.concatenate(selected_target) if selected_target else np.empty(0, int)
        }
        for node_type in graph.schema.other_types():
            type_embeddings = other_type_embeddings(graph, node_type, context=context)
            kept[node_type] = herding_select(type_embeddings, budgets[node_type])
        condensed = graph.induced_subgraph(kept)
        condensed.metadata.update({"method": self.name, "ratio": ratio})
        return condensed
