"""Baseline graph-reduction methods the paper compares FreeHGC against."""

from repro.baselines.base import (
    CondensedFeatureSet,
    GraphCondenser,
    per_class_budgets,
    per_type_budgets,
)
from repro.baselines.clustering import kmeans
from repro.baselines.coarsening import CoarseningHG, heavy_edge_matching
from repro.baselines.gcond import GCond
from repro.baselines.herding import HerdingHG, herding_select
from repro.baselines.hgcond import HGCond, orthogonal_parameter_sequence
from repro.baselines.kcenter import KCenterHG, kcenter_select
from repro.baselines.random_hg import RandomHG

BASELINE_REGISTRY: dict[str, type[GraphCondenser]] = {
    "random-hg": RandomHG,
    "herding-hg": HerdingHG,
    "k-center-hg": KCenterHG,
    "coarsening-hg": CoarseningHG,
    "gcond": GCond,
    "hgcond": HGCond,
}


def get_baseline(name: str, **kwargs: object) -> GraphCondenser:
    """Instantiate a registered baseline condenser by name (case-insensitive)."""
    key = name.lower()
    if key not in BASELINE_REGISTRY:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINE_REGISTRY)}")
    return BASELINE_REGISTRY[key](**kwargs)


__all__ = [
    "CondensedFeatureSet",
    "GraphCondenser",
    "per_class_budgets",
    "per_type_budgets",
    "RandomHG",
    "HerdingHG",
    "herding_select",
    "KCenterHG",
    "kcenter_select",
    "CoarseningHG",
    "heavy_edge_matching",
    "GCond",
    "HGCond",
    "orthogonal_parameter_sequence",
    "kmeans",
    "BASELINE_REGISTRY",
    "get_baseline",
]
