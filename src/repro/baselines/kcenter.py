"""K-Center-HG — greedy k-center coreset (Sener & Savarese, ICLR 2018).

Greedy farthest-point selection: repeatedly pick the node farthest from the
already-selected centres, minimising the largest sample-to-centre distance.
Target-type nodes are selected per class in HGNN-embedding space; other node
types in raw feature (+degree) space.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GraphCondenser, per_class_budgets, per_type_budgets
from repro.baselines.embeddings import other_type_embeddings, target_embeddings
from repro.hetero.graph import HeteroGraph

__all__ = ["KCenterHG", "kcenter_select"]


def kcenter_select(
    embeddings: np.ndarray, budget: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy k-center (farthest-first traversal) over ``embeddings``."""
    count = embeddings.shape[0]
    budget = min(budget, count)
    if budget <= 0:
        return np.empty(0, dtype=np.int64)
    start = int(rng.integers(count))
    selected = [start]
    distances = np.linalg.norm(embeddings - embeddings[start], axis=1)
    for _ in range(budget - 1):
        choice = int(np.argmax(distances))
        selected.append(choice)
        new_distances = np.linalg.norm(embeddings - embeddings[choice], axis=1)
        distances = np.minimum(distances, new_distances)
    return np.asarray(selected, dtype=np.int64)


class KCenterHG(GraphCondenser):
    """Greedy k-center coreset adapted to heterogeneous graphs."""

    name = "K-Center-HG"

    def __init__(self, *, max_hops: int = 2, max_paths: int = 16) -> None:
        self.max_hops = max_hops
        self.max_paths = max_paths

    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> HeteroGraph:
        ratio = self._validate_ratio(graph, ratio)
        rng = self._rng(seed)
        budgets = per_type_budgets(graph, ratio)
        target = graph.schema.target_type

        context = self.make_context(graph)
        embeddings = target_embeddings(
            graph, max_hops=self.max_hops, max_paths=self.max_paths, context=context
        )
        class_budgets = per_class_budgets(graph, budgets[target])
        train_pool = graph.splits.train
        train_labels = graph.labels[train_pool]
        selected_target: list[np.ndarray] = []
        for cls, budget in class_budgets.items():
            members = train_pool[train_labels == cls]
            if members.size == 0:
                continue
            local = kcenter_select(embeddings[members], budget, rng)
            selected_target.append(members[local])
        kept: dict[str, np.ndarray] = {
            target: np.concatenate(selected_target) if selected_target else np.empty(0, int)
        }
        for node_type in graph.schema.other_types():
            type_embeddings = other_type_embeddings(graph, node_type, context=context)
            kept[node_type] = kcenter_select(type_embeddings, budgets[node_type], rng)
        condensed = graph.induced_subgraph(kept)
        condensed.metadata.update({"method": self.name, "ratio": ratio})
        return condensed
