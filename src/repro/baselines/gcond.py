"""GCond — gradient-matching graph condensation (Jin et al., ICLR 2022).

The homogeneous condensation baseline the paper compares against for
efficiency (Fig. 2b, Fig. 8) and accuracy on knowledge graphs / AMiner
(Tables V and VI).  Faithful to its design, this implementation:

* ignores heterogeneity — all meta-path feature blocks are concatenated into
  one homogeneous feature matrix (the paper adapts GCond to heterogeneous
  graphs by random-sampling the unlabeled node types, Section III-B);
* fixes synthetic labels class-proportionally and learns synthetic features
  by **gradient matching** against a linear (GCN-style) relay model: the
  synthetic-data gradient of the relay's final layer is expressed
  analytically as a differentiable function of the synthetic features, and a
  cosine gradient-matching loss is minimised with Adam over a nested
  outer/inner loop (the bi-level optimisation that makes GCond slow);
* returns a :class:`~repro.baselines.base.CondensedFeatureSet` (the
  structure-free formulation — see DESIGN.md for the substitution note).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CondensedFeatureSet, GraphCondenser, per_class_budgets
from repro.hetero.graph import HeteroGraph
from repro.models.propagation import propagate_metapath_features, row_normalize_features
from repro.nn.autograd import Tensor
from repro.nn.optim import Adam
from repro.utils.rng import ensure_rng

__all__ = ["GCond"]


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    matrix = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    matrix[np.arange(labels.shape[0]), labels] = 1.0
    return matrix


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GCond(GraphCondenser):
    """Gradient-matching condensation on the homogeneous projection."""

    name = "GCond"
    produces_feature_set = True

    def __init__(
        self,
        *,
        outer_iterations: int = 30,
        inner_steps: int = 5,
        relay_samples: int = 3,
        lr_features: float = 0.05,
        relay_lr: float = 0.1,
        max_hops: int = 2,
        max_paths: int = 16,
    ) -> None:
        self.outer_iterations = outer_iterations
        self.inner_steps = inner_steps
        self.relay_samples = relay_samples
        self.lr_features = lr_features
        self.relay_lr = relay_lr
        self.max_hops = max_hops
        self.max_paths = max_paths

    # ------------------------------------------------------------------ #
    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> CondensedFeatureSet:
        ratio = self._validate_ratio(graph, ratio)
        rng = ensure_rng(seed)
        num_classes = graph.schema.num_classes

        features = row_normalize_features(
            propagate_metapath_features(graph, max_hops=self.max_hops, max_paths=self.max_paths)
        )
        keys = sorted(features)
        dims = [features[key].shape[1] for key in keys]
        real_all = np.concatenate([features[key] for key in keys], axis=1)

        train_idx = graph.splits.train
        real_x = real_all[train_idx]
        real_y = graph.labels[train_idx]

        target_budget = max(1, round(ratio * graph.num_nodes[graph.schema.target_type]))
        class_budgets = per_class_budgets(graph, target_budget)
        syn_labels = np.concatenate(
            [np.full(budget, cls, dtype=np.int64) for cls, budget in class_budgets.items()]
        )

        # Initialise synthetic features from random real samples per class.
        init_rows: list[np.ndarray] = []
        for cls, budget in class_budgets.items():
            members = train_idx[real_y == cls]
            chosen = rng.choice(members, size=budget, replace=members.size < budget)
            init_rows.append(real_all[chosen])
        syn_features = Tensor(np.concatenate(init_rows, axis=0), requires_grad=True)
        syn_one_hot = _one_hot(syn_labels, num_classes)
        real_one_hot = _one_hot(real_y, num_classes)

        optimizer = Adam([syn_features], lr=self.lr_features)
        dim_total = real_all.shape[1]

        for _outer in range(self.outer_iterations):
            for _sample in range(self.relay_samples):
                weight = 0.1 * rng.standard_normal((dim_total, num_classes))
                # Inner loop: briefly train the relay on the synthetic data.
                for _inner in range(self.inner_steps):
                    probs = _softmax(syn_features.numpy() @ weight)
                    grad = syn_features.numpy().T @ (probs - syn_one_hot)
                    grad /= max(syn_labels.shape[0], 1)
                    weight = weight - self.relay_lr * grad
                # Real-data gradient of the relay (constant w.r.t. synthetic data).
                real_probs = _softmax(real_x @ weight)
                real_grad = real_x.T @ (real_probs - real_one_hot) / real_x.shape[0]
                # Synthetic-data gradient expressed differentiably.
                logits = syn_features @ Tensor(weight)
                probs_t = logits.softmax(axis=-1)
                syn_grad = syn_features.T @ (probs_t - Tensor(syn_one_hot))
                syn_grad = syn_grad * (1.0 / max(syn_labels.shape[0], 1))
                loss = _cosine_matching_loss(syn_grad, real_grad)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        synthetic = syn_features.numpy()
        blocks: dict[str, np.ndarray] = {}
        offset = 0
        for key, dim in zip(keys, dims):
            blocks[key] = synthetic[:, offset : offset + dim].copy()
            offset += dim
        return CondensedFeatureSet(
            features=blocks,
            labels=syn_labels,
            num_classes=num_classes,
            metadata={
                "method": self.name,
                "ratio": ratio,
                "outer_iterations": self.outer_iterations,
                "inner_steps": self.inner_steps,
            },
        )


def _cosine_matching_loss(syn_grad: Tensor, real_grad: np.ndarray) -> Tensor:
    """``1 - cosine`` distance between synthetic and real relay gradients."""
    real_flat = real_grad.reshape(-1)
    real_norm = float(np.linalg.norm(real_flat)) + 1e-10
    syn_flat = syn_grad.reshape(-1)
    syn_norm = ((syn_flat * syn_flat).sum() + 1e-10) ** 0.5
    cosine = (syn_flat * Tensor(real_flat)).sum() / (syn_norm * real_norm)
    return 1.0 - cosine
