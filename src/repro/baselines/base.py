"""Condenser interface shared by FreeHGC and every baseline.

Two families of condensation output exist in the paper:

* **Selection-based** methods (FreeHGC, Random-HG, Herding-HG, K-Center-HG,
  Coarsening-HG) return a small :class:`~repro.hetero.graph.HeteroGraph` —
  either an induced subgraph of the original or a synthesised graph with
  hyper-nodes.
* **Optimisation-based** methods (GCond, HGCond) learn synthetic node
  attributes through gradient matching.  In this reproduction they operate in
  the pre-computed meta-path feature space (the structure-free formulation,
  see DESIGN.md) and return a :class:`CondensedFeatureSet` that HGNN models
  can train on directly via
  :meth:`repro.models.base.HGNNClassifier.fit_from_features`.

Both outputs flow through the same evaluation pipeline
(:mod:`repro.evaluation.pipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BudgetError
from repro.hetero.graph import HeteroGraph
from repro.utils.rng import ensure_rng

__all__ = [
    "CondensedFeatureSet",
    "GraphCondenser",
    "per_type_budgets",
    "per_class_budgets",
]


@dataclass
class CondensedFeatureSet:
    """Synthetic condensed data expressed in meta-path feature space.

    Attributes
    ----------
    features:
        Mapping from meta-path key to a ``(num_synthetic_nodes, dim)`` array.
    labels:
        Class label of every synthetic node.
    num_classes:
        Number of target classes.
    metadata:
        Free-form provenance (method name, ratio, iterations, ...).
    """

    features: dict[str, np.ndarray]
    labels: np.ndarray
    num_classes: int
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)
        sizes = {key: block.shape[0] for key, block in self.features.items()}
        if len(set(sizes.values())) > 1:
            raise ValueError(f"feature blocks disagree on node count: {sizes}")
        if self.labels.shape[0] != next(iter(sizes.values()), 0):
            raise ValueError("labels must have one entry per synthetic node")

    @property
    def num_nodes(self) -> int:
        """Number of synthetic target nodes."""
        return int(self.labels.shape[0])

    def storage_bytes(self) -> int:
        """Approximate in-memory size of the synthetic data."""
        return int(
            sum(block.nbytes for block in self.features.values()) + self.labels.nbytes
        )


class GraphCondenser:
    """Base class for all condensation / coreset / coarsening methods."""

    name = "condenser"
    #: Whether :meth:`condense` returns a :class:`CondensedFeatureSet`
    #: instead of a :class:`HeteroGraph`.
    produces_feature_set = False

    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> HeteroGraph | CondensedFeatureSet:
        """Condense ``graph`` down to roughly ``ratio`` of its nodes."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def make_context(self, graph: HeteroGraph) -> "CondensationContext":
        """Build a :class:`~repro.core.context.CondensationContext` for ``graph``.

        The context memoizes meta-path enumeration, meta-path adjacencies
        and embeddings across the stages of one ``condense()`` call; its
        hop settings follow the condenser's own ``max_hops``/``max_paths``
        attributes (with the library defaults when a method has neither).
        """
        from repro.core.context import CondensationContext

        return CondensationContext(
            graph,
            max_hops=int(getattr(self, "max_hops", 2)),
            max_paths=int(getattr(self, "max_paths", 16)),
        )

    @staticmethod
    def _validate_ratio(graph: HeteroGraph, ratio: float) -> float:
        if not 0.0 < ratio < 1.0:
            raise BudgetError(f"condensation ratio must be in (0, 1), got {ratio}")
        return float(ratio)

    @staticmethod
    def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
        return ensure_rng(seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def per_type_budgets(graph: HeteroGraph, ratio: float) -> dict[str, int]:
    """Per-node-type budgets ``B = max(1, round(r * N_type))`` (Section II-A)."""
    if not 0.0 < ratio < 1.0:
        raise BudgetError(f"condensation ratio must be in (0, 1), got {ratio}")
    budgets: dict[str, int] = {}
    for node_type, count in graph.num_nodes.items():
        budgets[node_type] = int(min(count, max(1, round(ratio * count))))
    return budgets


def per_class_budgets(
    graph: HeteroGraph, total_budget: int, *, pool: np.ndarray | None = None
) -> dict[int, int]:
    """Split a target-type budget across classes proportionally to the pool.

    The paper keeps the class distribution of the condensed graph consistent
    with the original graph (Section IV-B); every class with at least one
    pool node receives at least one slot.
    """
    if total_budget < 1:
        raise BudgetError(f"total budget must be >= 1, got {total_budget}")
    pool = graph.splits.train if pool is None else np.asarray(pool, dtype=np.int64)
    if pool.size == 0:
        raise BudgetError("selection pool (train split) is empty")
    labels = graph.labels[pool]
    counts = np.bincount(labels[labels >= 0], minlength=graph.schema.num_classes)
    present = np.flatnonzero(counts)
    if present.size == 0:
        raise BudgetError("selection pool contains no labeled nodes")
    total_budget = min(total_budget, int(counts.sum()))
    raw = counts[present] / counts[present].sum() * total_budget
    allocation = np.maximum(1, np.floor(raw)).astype(int)
    allocation = np.minimum(allocation, counts[present])
    # Distribute any remaining slots to the classes with the largest remainder.
    remaining = total_budget - int(allocation.sum())
    if remaining > 0:
        order = np.argsort(-(raw - allocation))
        for index in order:
            if remaining <= 0:
                break
            headroom = counts[present][index] - allocation[index]
            if headroom > 0:
                boost = min(headroom, remaining)
                allocation[index] += boost
                remaining -= boost
    return {int(cls): int(allocation[i]) for i, cls in enumerate(present)}
