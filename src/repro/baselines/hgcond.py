"""HGCond — heterogeneous graph condensation (Gao et al., TKDE 2024).

The state-of-the-art optimisation-based competitor the paper improves upon.
HGCond learns a small *synthetic heterogeneous graph* (node attributes for
every node type plus typed connections) through gradient matching against a
relay model, with three signature ingredients reproduced here:

* **clustering-based initialisation** — synthetic node attributes of every
  type are initialised from k-means centroids (clustering information
  substitutes for the labels that non-target types lack), and the synthetic
  typed adjacency follows the *sparse connection scheme*: cluster-to-cluster
  edge counts of the original graph;
* **OPS (orthogonal parameter sequences)** — each outer iteration explores a
  sequence of mutually-orthogonal relay parameter matrices (QR decomposition
  of a random matrix) instead of independent random restarts;
* a **nested bi-level loop** — an inner loop trains the relay on the
  synthetic graph, an outer loop updates the synthetic attributes to match
  the relay gradients computed on the real graph.  The relay is restricted to
  the *simplest* heterogeneous model (HeteroSGC: mean semantic fusion of
  one-hop aggregations), which is exactly the limitation FreeHGC removes.

The output is a small :class:`~repro.hetero.graph.HeteroGraph`, so the
evaluation pipeline treats HGCond and the selection-based methods
identically (train the test HGNN on the condensed graph, evaluate on the
full graph).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import GraphCondenser, per_class_budgets, per_type_budgets
from repro.baselines.clustering import kmeans
from repro.hetero.graph import HeteroGraph, NodeSplits
from repro.hetero.sparse import boolean_csr, row_normalize
from repro.nn.autograd import Tensor
from repro.nn.optim import Adam
from repro.utils.rng import ensure_rng

__all__ = ["HGCond", "orthogonal_parameter_sequence"]


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    matrix = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    matrix[np.arange(labels.shape[0]), labels] = 1.0
    return matrix


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def orthogonal_parameter_sequence(
    dim: int, num_classes: int, length: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """OPS: a sequence of relay weight matrices with orthonormal columns.

    A random Gaussian matrix of shape ``(dim, num_classes * length)`` is QR
    decomposed; consecutive column blocks give mutually-orthogonal relay
    parameters, the exploration strategy HGCond introduces to stabilise
    optimisation on heterogeneous graphs.
    """
    columns = num_classes * length
    gaussian = rng.standard_normal((dim, columns))
    if dim >= columns:
        q, _ = np.linalg.qr(gaussian)
        basis = q[:, :columns]
    else:  # fall back to scaled random matrices when dim is too small
        basis = 0.1 * gaussian
    return [
        np.ascontiguousarray(basis[:, i * num_classes : (i + 1) * num_classes])
        for i in range(length)
    ]


class HGCond(GraphCondenser):
    """Optimisation-based heterogeneous graph condensation (graph-space)."""

    name = "HGCond"

    def __init__(
        self,
        *,
        outer_iterations: int = 25,
        inner_steps: int = 6,
        ops_length: int = 4,
        lr_features: float = 0.03,
        relay_lr: float = 0.1,
        cluster_iterations: int = 25,
        connection_threshold: float = 0.0,
    ) -> None:
        self.outer_iterations = outer_iterations
        self.inner_steps = inner_steps
        self.ops_length = ops_length
        self.lr_features = lr_features
        self.relay_lr = relay_lr
        self.cluster_iterations = cluster_iterations
        self.connection_threshold = connection_threshold

    # ------------------------------------------------------------------ #
    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> HeteroGraph:
        ratio = self._validate_ratio(graph, ratio)
        rng = ensure_rng(seed)
        target = graph.schema.target_type
        num_classes = graph.schema.num_classes
        budgets = per_type_budgets(graph, ratio)

        # ------------------------------------------------------------------
        # Clustering-based initialisation of synthetic node attributes.
        # ------------------------------------------------------------------
        class_budgets = per_class_budgets(graph, budgets[target])
        train_idx = graph.splits.train
        train_labels = graph.labels[train_idx]
        syn_labels: list[int] = []
        target_init: list[np.ndarray] = []
        target_assignment = np.zeros(graph.num_nodes[target], dtype=np.int64)
        offset = 0
        for cls, budget in class_budgets.items():
            members = train_idx[train_labels == cls]
            centroids, assignment = kmeans(
                graph.features[target][members],
                budget,
                iterations=self.cluster_iterations,
                seed=rng,
            )
            if centroids.shape[0] < budget:
                reps = int(np.ceil(budget / centroids.shape[0]))
                centroids = np.tile(centroids, (reps, 1))[:budget]
                assignment = assignment % budget
            target_init.append(centroids)
            target_assignment[members] = assignment + offset
            syn_labels.extend([cls] * budget)
            offset += budget
        num_syn_target = offset
        syn_labels_arr = np.asarray(syn_labels, dtype=np.int64)
        # Unlabelled target nodes map to their nearest synthetic node overall.
        unassigned = np.setdiff1d(np.arange(graph.num_nodes[target]), train_idx)
        all_centroids = np.concatenate(target_init, axis=0)
        if unassigned.size:
            distances = np.linalg.norm(
                graph.features[target][unassigned][:, None, :] - all_centroids[None, :, :],
                axis=2,
            )
            target_assignment[unassigned] = distances.argmin(axis=1)

        syn_features: dict[str, Tensor] = {
            target: Tensor(all_centroids.copy(), requires_grad=True)
        }
        assignments: dict[str, np.ndarray] = {target: target_assignment}
        syn_counts: dict[str, int] = {target: num_syn_target}
        for node_type in graph.schema.other_types():
            budget = budgets[node_type]
            centroids, assignment = kmeans(
                graph.features[node_type],
                budget,
                iterations=self.cluster_iterations,
                seed=rng,
            )
            syn_features[node_type] = Tensor(centroids.copy(), requires_grad=True)
            assignments[node_type] = assignment
            syn_counts[node_type] = centroids.shape[0]

        # ------------------------------------------------------------------
        # Sparse connection scheme: cluster-to-cluster edge counts.
        # ------------------------------------------------------------------
        assign_matrices = {
            node_type: sp.csr_matrix(
                (
                    np.ones(graph.num_nodes[node_type]),
                    (np.arange(graph.num_nodes[node_type]), assignments[node_type]),
                ),
                shape=(graph.num_nodes[node_type], syn_counts[node_type]),
            )
            for node_type in graph.schema.node_types
        }
        syn_adjacency: dict[str, sp.csr_matrix] = {}
        for name, matrix in graph.adjacency.items():
            rel = graph.schema.relation(name)
            block = (assign_matrices[rel.src].T @ matrix @ assign_matrices[rel.dst]).tocsr()
            if self.connection_threshold > 0 and block.nnz:
                block.data[block.data <= self.connection_threshold] = 0.0
                block.eliminate_zeros()
            syn_adjacency[name] = boolean_csr(block)

        # ------------------------------------------------------------------
        # Bi-level gradient matching with a HeteroSGC relay.
        # ------------------------------------------------------------------
        relations = self._relay_relations(graph)
        real_aggregates = {
            name: np.asarray(row_normalize(matrix) @ graph.features[dst][:, :])
            for name, matrix, dst in relations
        }
        syn_norm_adjacency = {
            name: row_normalize(
                self._synthetic_relation(syn_adjacency, graph, name)
            )
            for name, _matrix, _dst in relations
        }
        real_one_hot = _one_hot(train_labels, num_classes)
        syn_one_hot = _one_hot(syn_labels_arr, num_classes)
        real_self = graph.features[target][train_idx]

        optimizer = Adam(list(syn_features.values()), lr=self.lr_features)
        feature_dims = {
            name: graph.features[dst].shape[1] for name, _matrix, dst in relations
        }
        self_dim = graph.features[target].shape[1]

        for _outer in range(self.outer_iterations):
            sequences = {
                name: orthogonal_parameter_sequence(dim, num_classes, self.ops_length, rng)
                for name, dim in feature_dims.items()
            }
            self_sequence = orthogonal_parameter_sequence(
                self_dim, num_classes, self.ops_length, rng
            )
            for step in range(self.ops_length):
                weights = {name: sequences[name][step].copy() for name in feature_dims}
                self_weight = self_sequence[step].copy()
                num_terms = len(feature_dims) + 1
                # Inner loop: train the relay on the synthetic graph.
                for _inner in range(self.inner_steps):
                    syn_aggregates = {
                        name: syn_norm_adjacency[name] @ syn_features[dst].numpy()
                        for name, _matrix, dst in relations
                    }
                    logits = syn_features[target].numpy() @ self_weight
                    for name in feature_dims:
                        logits = logits + syn_aggregates[name] @ weights[name]
                    logits = logits / num_terms
                    probs = _softmax(logits)
                    residual = (probs - syn_one_hot) / max(num_syn_target, 1)
                    self_weight -= self.relay_lr * (
                        syn_features[target].numpy().T @ residual
                    ) / num_terms
                    for name, _matrix, dst in relations:
                        grad = syn_aggregates[name].T @ residual / num_terms
                        weights[name] -= self.relay_lr * grad
                # Real-graph relay gradients (constants w.r.t. synthetic data).
                real_logits = real_self @ self_weight
                for name, _matrix, _dst in relations:
                    real_logits = real_logits + real_aggregates[name][train_idx] @ weights[name]
                real_logits = real_logits / num_terms
                real_probs = _softmax(real_logits)
                real_residual = (real_probs - real_one_hot) / max(train_idx.shape[0], 1)
                real_grads = {
                    name: real_aggregates[name][train_idx].T @ real_residual
                    for name, _matrix, _dst in relations
                }
                real_self_grad = real_self.T @ real_residual
                # Synthetic gradients as differentiable expressions.
                logits_t = syn_features[target] @ Tensor(self_weight)
                syn_agg_tensors = {}
                for name, _matrix, dst in relations:
                    aggregated = syn_features[dst].matmul_sparse(syn_norm_adjacency[name])
                    syn_agg_tensors[name] = aggregated
                    logits_t = logits_t + aggregated @ Tensor(weights[name])
                logits_t = logits_t * (1.0 / num_terms)
                probs_t = logits_t.softmax(axis=-1)
                residual_t = (probs_t - Tensor(syn_one_hot)) * (1.0 / max(num_syn_target, 1))
                loss = _cosine_matching_loss(
                    syn_features[target].T @ residual_t, real_self_grad
                )
                for name in feature_dims:
                    syn_grad = syn_agg_tensors[name].T @ residual_t
                    loss = loss + _cosine_matching_loss(syn_grad, real_grads[name])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        # ------------------------------------------------------------------
        # Assemble the synthetic heterogeneous graph.
        # ------------------------------------------------------------------
        features_out = {
            node_type: syn_features[node_type].numpy().copy()
            for node_type in graph.schema.node_types
        }
        splits = NodeSplits(
            train=np.arange(num_syn_target, dtype=np.int64),
            val=np.empty(0, dtype=np.int64),
            test=np.empty(0, dtype=np.int64),
        )
        return HeteroGraph(
            schema=graph.schema,
            num_nodes=syn_counts,
            adjacency=syn_adjacency,
            features=features_out,
            labels=syn_labels_arr,
            splits=splits,
            metadata={
                "method": self.name,
                "ratio": ratio,
                "outer_iterations": self.outer_iterations,
                "inner_steps": self.inner_steps,
                "ops_length": self.ops_length,
            },
        )

    # ------------------------------------------------------------------ #
    def _relay_relations(
        self, graph: HeteroGraph
    ) -> list[tuple[str, sp.csr_matrix, str]]:
        """One-hop (target → other) aggregation channels used by the relay."""
        target = graph.schema.target_type
        relations: list[tuple[str, sp.csr_matrix, str]] = []
        for other in graph.schema.node_types:
            if other == target:
                continue
            matrix = graph.typed_adjacency(target, other)
            if matrix.nnz:
                relations.append((f"{target}->{other}", matrix, other))
        # Same-type links (e.g. paper-cite-paper) become a self-channel.
        self_matrix = graph.typed_adjacency(target, target)
        if self_matrix.nnz:
            relations.append((f"{target}->{target}", self_matrix, target))
        return relations

    def _synthetic_relation(
        self,
        syn_adjacency: dict[str, sp.csr_matrix],
        graph: HeteroGraph,
        channel: str,
    ) -> sp.csr_matrix:
        """Synthetic-graph counterpart of a relay aggregation channel."""
        src, dst = channel.split("->")
        combined: sp.csr_matrix | None = None
        for name, block in syn_adjacency.items():
            rel = graph.schema.relation(name)
            if rel.src == src and rel.dst == dst:
                piece = block
            elif rel.src == dst and rel.dst == src:
                piece = block.T.tocsr()
            else:
                continue
            combined = piece if combined is None else combined + piece
        if combined is None:
            raise ValueError(f"no synthetic adjacency found for channel {channel!r}")
        return boolean_csr(combined)


def _cosine_matching_loss(syn_grad: Tensor, real_grad: np.ndarray) -> Tensor:
    """``1 - cosine`` distance between synthetic and real relay gradients."""
    real_flat = real_grad.reshape(-1)
    real_norm = float(np.linalg.norm(real_flat)) + 1e-10
    syn_flat = syn_grad.reshape(-1)
    syn_norm = ((syn_flat * syn_flat).sum() + 1e-10) ** 0.5
    cosine = (syn_flat * Tensor(real_flat)).sum() / (syn_norm * real_norm)
    return 1.0 - cosine
