"""Random-HG — uniform random selection baseline.

Target-type nodes are sampled from the training pool class-by-class so the
condensed class distribution matches the original; every other node type is
sampled uniformly at random.  The result is the induced subgraph on the
selected nodes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GraphCondenser, per_class_budgets, per_type_budgets
from repro.hetero.graph import HeteroGraph

__all__ = ["RandomHG"]


class RandomHG(GraphCondenser):
    """Uniform random heterogeneous coreset."""

    name = "Random-HG"

    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> HeteroGraph:
        ratio = self._validate_ratio(graph, ratio)
        rng = self._rng(seed)
        budgets = per_type_budgets(graph, ratio)
        target = graph.schema.target_type

        class_budgets = per_class_budgets(graph, budgets[target])
        train_pool = graph.splits.train
        train_labels = graph.labels[train_pool]
        selected_target: list[np.ndarray] = []
        for cls, budget in class_budgets.items():
            members = train_pool[train_labels == cls]
            take = min(budget, members.size)
            if take:
                selected_target.append(rng.choice(members, size=take, replace=False))
        kept: dict[str, np.ndarray] = {
            target: np.concatenate(selected_target) if selected_target else np.empty(0, int)
        }
        for node_type in graph.schema.other_types():
            count = graph.num_nodes[node_type]
            take = min(budgets[node_type], count)
            kept[node_type] = rng.choice(count, size=take, replace=False)
        condensed = graph.induced_subgraph(kept)
        condensed.metadata.update({"method": self.name, "ratio": ratio})
        return condensed
