"""Lightweight k-means clustering used by HGCond's hyper-node initialisation.

HGCond replaces the label information that homogeneous condensation relies on
with clustering information (Section II-C of the paper); this module provides
the Lloyd's-algorithm k-means it needs, implemented on NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["kmeans"]


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    *,
    iterations: int = 30,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``num_clusters`` groups.

    Returns ``(centroids, assignment)`` where ``centroids`` has shape
    ``(num_clusters, dim)`` and ``assignment`` maps every point to its
    cluster.  Uses k-means++ style seeding (greedy farthest sampling) for
    stability on small inputs.
    """
    points = np.asarray(points, dtype=np.float64)
    count = points.shape[0]
    if count == 0:
        raise ValueError("cannot cluster an empty point set")
    num_clusters = int(min(max(1, num_clusters), count))
    rng = ensure_rng(seed)

    # k-means++ seeding.
    centroids = np.empty((num_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(count))
    centroids[0] = points[first]
    closest = np.linalg.norm(points - centroids[0], axis=1) ** 2
    for index in range(1, num_clusters):
        total = closest.sum()
        if total <= 0:
            choice = int(rng.integers(count))
        else:
            choice = int(rng.choice(count, p=closest / total))
        centroids[index] = points[choice]
        distance = np.linalg.norm(points - centroids[index], axis=1) ** 2
        closest = np.minimum(closest, distance)

    assignment = np.zeros(count, dtype=np.int64)
    for _ in range(iterations):
        distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        new_assignment = distances.argmin(axis=1)
        if np.array_equal(new_assignment, assignment) and _ > 0:
            break
        assignment = new_assignment
        for cluster in range(num_clusters):
            members = points[assignment == cluster]
            if members.size:
                centroids[cluster] = members.mean(axis=0)
    return centroids, assignment
