"""Coarsening-HG — variation-neighborhoods-style graph coarsening.

Adapts the "scaling up GNNs via graph coarsening" approach (Huang et al.,
KDD 2021) to heterogeneous graphs, as the paper's Coarsening-HG baseline
does: target-type nodes are grouped into super-nodes by repeatedly merging
strongly-connected neighbourhoods of the meta-path projection graph
(heavy-edge matching, the contraction primitive behind variation
neighbourhoods), super-node features are member means and labels are the
majority vote of member training labels; other node types are reduced by
keeping the highest-degree nodes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import GraphCondenser, per_type_budgets
from repro.core.metapaths import enumerate_metapaths, metapath_adjacency
from repro.hetero.graph import HeteroGraph, NodeSplits
from repro.hetero.sparse import boolean_csr

__all__ = ["CoarseningHG", "heavy_edge_matching"]


def _target_projection(graph: HeteroGraph, max_hops: int) -> sp.csr_matrix:
    """Weighted target-target similarity graph from short meta-paths."""
    target = graph.schema.target_type
    n_target = graph.num_nodes[target]
    projection = sp.csr_matrix((n_target, n_target))
    for metapath in enumerate_metapaths(graph.schema, target, max_hops, max_paths=32):
        if metapath.end != target:
            continue
        projection = projection + metapath_adjacency(graph, metapath, normalize=False)
    projection = (projection + projection.T).tolil()
    projection.setdiag(0)
    return projection.tocsr()


def heavy_edge_matching(
    similarity: sp.csr_matrix, budget: int, rng: np.random.Generator, *, max_passes: int = 30
) -> np.ndarray:
    """Cluster assignment via repeated heavy-edge matching contraction.

    Returns a compact cluster id (``0 .. k-1``) for every node with ``k``
    no larger than ``budget``; if matching alone cannot reach the budget the
    smallest clusters are merged pairwise until it does.
    """
    count = similarity.shape[0]
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    clusters = np.arange(count, dtype=np.int64)
    if budget >= count:
        return clusters

    matrix = similarity.tocsr().copy()
    for _ in range(max_passes):
        num_clusters = matrix.shape[0]
        if num_clusters <= budget:
            break
        merge_into = np.arange(num_clusters, dtype=np.int64)
        matched = np.zeros(num_clusters, dtype=bool)
        progress = False
        for node in rng.permutation(num_clusters):
            if matched[node]:
                continue
            start, stop = matrix.indptr[node], matrix.indptr[node + 1]
            neighbors = matrix.indices[start:stop]
            weights = matrix.data[start:stop]
            best, best_weight = -1, 0.0
            for neighbor, weight in zip(neighbors, weights):
                if neighbor != node and not matched[neighbor] and weight > best_weight:
                    best, best_weight = int(neighbor), float(weight)
            if best >= 0:
                matched[node] = matched[best] = True
                merge_into[best] = node
                progress = True
        if not progress:
            break
        unique_roots = np.unique(merge_into)
        relabel = {int(root): index for index, root in enumerate(unique_roots)}
        old_to_new = np.array([relabel[int(root)] for root in merge_into], dtype=np.int64)
        clusters = old_to_new[clusters]
        assign = sp.csr_matrix(
            (np.ones(num_clusters), (np.arange(num_clusters), old_to_new)),
            shape=(num_clusters, unique_roots.size),
        )
        matrix = (assign.T @ matrix @ assign).tolil()
        matrix.setdiag(0)
        matrix = matrix.tocsr()

    # Force the budget by merging the smallest clusters together.
    unique, sizes = np.unique(clusters, return_counts=True)
    while unique.size > budget:
        order = np.argsort(sizes)
        smallest, second = unique[order[0]], unique[order[1]]
        clusters[clusters == smallest] = second
        unique, sizes = np.unique(clusters, return_counts=True)
    relabel = {int(old): new for new, old in enumerate(np.unique(clusters))}
    return np.array([relabel[int(c)] for c in clusters], dtype=np.int64)


class CoarseningHG(GraphCondenser):
    """Variation-neighborhoods-style coarsening for heterogeneous graphs."""

    name = "Coarsening-HG"

    def __init__(self, *, max_hops: int = 2) -> None:
        self.max_hops = max_hops

    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> HeteroGraph:
        ratio = self._validate_ratio(graph, ratio)
        rng = self._rng(seed)
        budgets = per_type_budgets(graph, ratio)
        target = graph.schema.target_type
        n_target = graph.num_nodes[target]

        projection = _target_projection(graph, self.max_hops)
        clusters = heavy_edge_matching(projection, budgets[target], rng)
        num_clusters = int(clusters.max()) + 1
        assignment = sp.csr_matrix(
            (np.ones(n_target), (np.arange(n_target), clusters)),
            shape=(n_target, num_clusters),
        )

        # Super-node features: member mean.  Labels: majority over train members.
        member_counts = np.asarray(assignment.sum(axis=0)).ravel()
        target_features = np.asarray(assignment.T @ graph.features[target])
        target_features = target_features / np.maximum(member_counts[:, None], 1.0)
        labels = np.full(num_clusters, -1, dtype=np.int64)
        train_mask = np.zeros(n_target, dtype=bool)
        train_mask[graph.splits.train] = True
        for cluster in range(num_clusters):
            members = np.flatnonzero(clusters == cluster)
            train_members = members[train_mask[members]]
            voters = train_members if train_members.size else members
            voter_labels = graph.labels[voters]
            voter_labels = voter_labels[voter_labels >= 0]
            if voter_labels.size:
                labels[cluster] = int(np.bincount(voter_labels).argmax())

        # Other node types: keep the highest-degree nodes.
        kept_other: dict[str, np.ndarray] = {}
        for node_type in graph.schema.other_types():
            degrees = np.zeros(graph.num_nodes[node_type])
            for name, matrix in graph.adjacency.items():
                rel = graph.schema.relation(name)
                if rel.src == node_type:
                    degrees += np.asarray(matrix.sum(axis=1)).ravel()
                if rel.dst == node_type:
                    degrees += np.asarray(matrix.sum(axis=0)).ravel()
            take = min(budgets[node_type], degrees.shape[0])
            kept_other[node_type] = np.argsort(-degrees)[:take]

        new_counts = {
            node_type: len(kept_other[node_type]) for node_type in kept_other
        }
        new_counts[target] = num_clusters
        new_features = {
            node_type: graph.features[node_type][kept_other[node_type]]
            for node_type in kept_other
        }
        new_features[target] = target_features

        new_adjacency: dict[str, sp.csr_matrix] = {}
        for name, matrix in graph.adjacency.items():
            rel = graph.schema.relation(name)
            block = matrix
            if rel.src == target:
                block = assignment.T @ block
            elif rel.src in kept_other:
                block = block[kept_other[rel.src], :]
            if rel.dst == target:
                block = block @ assignment
            elif rel.dst in kept_other:
                block = block[:, kept_other[rel.dst]]
            new_adjacency[name] = boolean_csr(block)

        labeled_clusters = np.flatnonzero(labels >= 0)
        splits = NodeSplits(
            train=labeled_clusters,
            val=np.empty(0, dtype=np.int64),
            test=np.empty(0, dtype=np.int64),
        )
        return HeteroGraph(
            schema=graph.schema,
            num_nodes=new_counts,
            adjacency=new_adjacency,
            features=new_features,
            labels=labels,
            splits=splits,
            metadata={"method": self.name, "ratio": ratio},
        )
