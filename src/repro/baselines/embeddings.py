"""Embedding helpers shared by the coreset baselines.

The paper adapts the homogeneous coreset methods (Herding, K-Center) to
heterogeneous graphs by feeding them *learned HGNN embeddings* (Section V-A).
In this reproduction the embeddings are the pre-computed meta-path aggregated
features — the same representation the SeHGNN evaluation model consumes —
concatenated across meta-paths, which captures exactly the semantic
information an HGNN would embed while staying training-free for the
baselines themselves.
"""

from __future__ import annotations

import numpy as np

from repro.hetero.graph import HeteroGraph
from repro.models.propagation import propagate_metapath_features, standardize_features

__all__ = ["target_embeddings", "other_type_embeddings"]


def target_embeddings(
    graph: HeteroGraph, *, max_hops: int = 2, max_paths: int = 16
) -> np.ndarray:
    """Concatenated meta-path feature embedding of every target-type node."""
    features = standardize_features(
        propagate_metapath_features(graph, max_hops=max_hops, max_paths=max_paths)
    )
    blocks = [features[key] for key in sorted(features)]
    return np.concatenate(blocks, axis=1)


def other_type_embeddings(graph: HeteroGraph, node_type: str) -> np.ndarray:
    """Embedding of non-target nodes: raw features plus normalised degree.

    Non-target types carry no labels, so the coreset baselines operate on the
    feature geometry augmented with a degree column (popular nodes matter
    more for preserving connectivity).
    """
    features = graph.features[node_type]
    degrees = np.zeros(graph.num_nodes[node_type], dtype=np.float64)
    for name, matrix in graph.adjacency.items():
        rel = graph.schema.relation(name)
        if rel.src == node_type:
            degrees += np.asarray(matrix.sum(axis=1)).ravel()
        if rel.dst == node_type:
            degrees += np.asarray(matrix.sum(axis=0)).ravel()
    if degrees.max() > 0:
        degrees = degrees / degrees.max()
    return np.concatenate([features, degrees[:, None]], axis=1)
