"""Embedding helpers shared by the coreset baselines.

The paper adapts the homogeneous coreset methods (Herding, K-Center) to
heterogeneous graphs by feeding them *learned HGNN embeddings* (Section V-A).
In this reproduction the embeddings are the pre-computed meta-path aggregated
features — the same representation the SeHGNN evaluation model consumes —
concatenated across meta-paths, which captures exactly the semantic
information an HGNN would embed while staying training-free for the
baselines themselves.

Both helpers accept an optional
:class:`~repro.core.context.CondensationContext`: when one built for the
same graph (with matching hop settings) is supplied, the expensive
meta-path products are served from its memo instead of recomputed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.hetero.graph import HeteroGraph
from repro.models.propagation import propagate_metapath_features, standardize_features

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import CondensationContext

__all__ = ["target_embeddings", "other_type_embeddings"]


def target_embeddings(
    graph: HeteroGraph,
    *,
    max_hops: int = 2,
    max_paths: int = 16,
    context: "CondensationContext | None" = None,
) -> np.ndarray:
    """Concatenated meta-path feature embedding of every target-type node."""
    if context is not None and context.matches(graph, max_hops=max_hops, max_paths=max_paths):
        return context.target_embeddings()
    features = standardize_features(
        propagate_metapath_features(graph, max_hops=max_hops, max_paths=max_paths)
    )
    blocks = [features[key] for key in sorted(features)]
    return np.concatenate(blocks, axis=1)


def other_type_embeddings(
    graph: HeteroGraph,
    node_type: str,
    *,
    context: "CondensationContext | None" = None,
) -> np.ndarray:
    """Embedding of non-target nodes: raw features plus normalised degree.

    Non-target types carry no labels, so the coreset baselines operate on the
    feature geometry augmented with a degree column (popular nodes matter
    more for preserving connectivity).
    """
    if context is not None and context.matches(graph):
        return context.other_type_embeddings(node_type)
    features = graph.features[node_type]
    degrees = np.zeros(graph.num_nodes[node_type], dtype=np.float64)
    for name, matrix in graph.adjacency.items():
        rel = graph.schema.relation(name)
        if rel.src == node_type:
            degrees += np.asarray(matrix.sum(axis=1)).ravel()
        if rel.dst == node_type:
            degrees += np.asarray(matrix.sum(axis=0)).ravel()
    if degrees.max() > 0:
        degrees = degrees / degrees.max()
    return np.concatenate([features, degrees[:, None]], axis=1)
