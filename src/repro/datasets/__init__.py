"""Synthetic heterogeneous-graph datasets mirroring the paper's benchmarks."""

from repro.datasets.acm import acm_config, load_acm
from repro.datasets.adversarial import churn_regimes, generate_adversarial_schedule
from repro.datasets.am import am_config, load_am
from repro.datasets.aminer import aminer_config, load_aminer
from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.dblp import dblp_config, load_dblp
from repro.datasets.freebase import freebase_config, load_freebase
from repro.datasets.generators import (
    generate_delta_schedule,
    generate_hin,
    schema_from_config,
)
from repro.datasets.imdb import imdb_config, load_imdb
from repro.datasets.mutag import load_mutag, mutag_config
from repro.datasets.registry import (
    DATASETS,
    DatasetEntry,
    available_datasets,
    dataset_config,
    load_dataset,
)

__all__ = [
    "NodeTypeSpec",
    "RelationSpec",
    "SyntheticHINConfig",
    "generate_hin",
    "generate_delta_schedule",
    "generate_adversarial_schedule",
    "churn_regimes",
    "schema_from_config",
    "acm_config",
    "load_acm",
    "dblp_config",
    "load_dblp",
    "imdb_config",
    "load_imdb",
    "freebase_config",
    "load_freebase",
    "aminer_config",
    "load_aminer",
    "mutag_config",
    "load_mutag",
    "am_config",
    "load_am",
    "DATASETS",
    "DatasetEntry",
    "available_datasets",
    "dataset_config",
    "load_dataset",
]
