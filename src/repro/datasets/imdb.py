"""Synthetic IMDB movie network (HGB benchmark analogue).

*Movie* is the target type (5 genre classes), directly connected to
directors, actors and keywords — "Structure 1" of Fig. 5.  IMDB is the
hardest HGB dataset (whole-graph accuracy ≈ 68% in the paper) because genre
signal is noisy; the generator mirrors that by using larger feature noise and
weaker edge affinity than ACM/DBLP.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_hin
from repro.hetero.graph import HeteroGraph

__all__ = ["imdb_config", "load_imdb"]


def imdb_config() -> SyntheticHINConfig:
    """Configuration of the synthetic IMDB dataset."""
    return SyntheticHINConfig(
        name="imdb",
        target_type="movie",
        num_classes=5,
        node_types=(
            NodeTypeSpec("movie", count=900, feature_dim=32, feature_noise=1.9),
            NodeTypeSpec("director", count=400, feature_dim=24, feature_noise=1.6),
            NodeTypeSpec("actor", count=1300, feature_dim=24, feature_noise=1.8),
            NodeTypeSpec("keyword", count=500, feature_dim=16, feature_noise=1.5),
        ),
        relations=(
            RelationSpec("movie-director", "movie", "director", avg_degree=1.0, affinity=0.78),
            RelationSpec("movie-actor", "movie", "actor", avg_degree=3.0, affinity=0.55),
            RelationSpec("movie-keyword", "movie", "keyword", avg_degree=4.0, affinity=0.5),
        ),
        feature_signal=1.5,
        metadata={"structure": 1, "hgb": True},
    )


def load_imdb(
    *, scale: float = 1.0, seed: int | np.random.Generator | None = 0
) -> HeteroGraph:
    """Generate the synthetic IMDB heterogeneous graph."""
    return generate_hin(imdb_config(), scale=scale, seed=seed)
