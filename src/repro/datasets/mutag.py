"""Synthetic MUTAG RDF knowledge graph (DGL benchmark analogue).

The real MUTAG RDF graph has 7 node types, 46 edge types and a binary target
(mutagenicity of compound ``d`` nodes).  The generator keeps the multi-
relational character by declaring several parallel relations between the same
node-type pairs, which stresses the relation-aware code paths (typed
adjacency merging, meta-path enumeration over parallel edges).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_hin
from repro.hetero.graph import HeteroGraph

__all__ = ["mutag_config", "load_mutag"]


def mutag_config() -> SyntheticHINConfig:
    """Configuration of the synthetic MUTAG dataset."""
    return SyntheticHINConfig(
        name="mutag",
        target_type="compound",
        num_classes=2,
        node_types=(
            NodeTypeSpec("compound", count=340, feature_dim=24, feature_noise=1.8),
            NodeTypeSpec("atom", count=800, feature_dim=16, feature_noise=1.0),
            NodeTypeSpec("bond", count=500, feature_dim=16, feature_noise=1.0),
            NodeTypeSpec("ring", count=120, feature_dim=16, feature_noise=0.8),
            NodeTypeSpec("structure", count=150, feature_dim=16, feature_noise=0.8),
            NodeTypeSpec("element", count=30, feature_dim=8, feature_noise=0.4),
            NodeTypeSpec("property", count=60, feature_dim=8, feature_noise=0.5),
        ),
        relations=(
            RelationSpec("hasAtom", "compound", "atom", avg_degree=5.0, affinity=0.75),
            RelationSpec("hasStructure", "compound", "structure", avg_degree=1.5, affinity=0.8),
            RelationSpec("hasRing", "compound", "ring", avg_degree=1.0, affinity=0.78),
            RelationSpec("hasProperty", "compound", "property", avg_degree=1.2, affinity=0.8),
            RelationSpec("inBond", "atom", "bond", avg_degree=2.0, affinity=0.7),
            RelationSpec("isElement", "atom", "element", avg_degree=1.0, affinity=0.85),
            RelationSpec("charge", "atom", "property", avg_degree=1.0, affinity=0.6),
            RelationSpec("ringMember", "atom", "ring", avg_degree=1.0, affinity=0.65),
            RelationSpec("bondType", "bond", "property", avg_degree=1.0, affinity=0.6),
            RelationSpec("inStructure", "ring", "structure", avg_degree=1.0, affinity=0.7),
            RelationSpec("subStructure", "structure", "structure", avg_degree=1.0, affinity=0.6),
            RelationSpec("elementProperty", "element", "property", avg_degree=1.0, affinity=0.6),
        ),
        feature_signal=1.8,
        metadata={"structure": 3, "knowledge_graph": True},
    )


def load_mutag(
    *, scale: float = 1.0, seed: int | np.random.Generator | None = 0
) -> HeteroGraph:
    """Generate the synthetic MUTAG heterogeneous graph."""
    return generate_hin(mutag_config(), scale=scale, seed=seed)
