"""Synthetic DBLP bibliographic network (HGB benchmark analogue).

*Author* is the target type (4 research-area classes).  Authors connect to
papers; papers connect to terms and venues — the hierarchical "Structure 2"
of Fig. 5 (root → father → leaf), where *paper* is the father type and
*term* / *venue* are leaf types.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_hin
from repro.hetero.graph import HeteroGraph

__all__ = ["dblp_config", "load_dblp"]


def dblp_config() -> SyntheticHINConfig:
    """Configuration of the synthetic DBLP dataset."""
    return SyntheticHINConfig(
        name="dblp",
        target_type="author",
        num_classes=4,
        node_types=(
            NodeTypeSpec("author", count=800, feature_dim=32, feature_noise=1.8),
            NodeTypeSpec("paper", count=1400, feature_dim=24, feature_noise=0.8),
            NodeTypeSpec("term", count=900, feature_dim=16, feature_noise=0.9),
            NodeTypeSpec("venue", count=20, feature_dim=16, feature_noise=0.3),
        ),
        relations=(
            RelationSpec("author-paper", "author", "paper", avg_degree=3.5, affinity=0.85),
            RelationSpec("paper-term", "paper", "term", avg_degree=5.0, affinity=0.75),
            RelationSpec("paper-venue", "paper", "venue", avg_degree=1.0, affinity=0.9),
        ),
        metadata={"structure": 2, "hgb": True},
    )


def load_dblp(
    *, scale: float = 1.0, seed: int | np.random.Generator | None = 0
) -> HeteroGraph:
    """Generate the synthetic DBLP heterogeneous graph."""
    return generate_hin(dblp_config(), scale=scale, seed=seed)
