"""Synthetic AM (Amsterdam Museum) RDF knowledge graph (DGL analogue).

The real AM graph has 7 node types, 96 edge types and an 11-class target
(``proxy`` artefact records).  The generator keeps the 7-type schema, the
11-class target and a rich set of (partly parallel) relations.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_hin
from repro.hetero.graph import HeteroGraph

__all__ = ["am_config", "load_am"]


def am_config() -> SyntheticHINConfig:
    """Configuration of the synthetic AM dataset."""
    return SyntheticHINConfig(
        name="am",
        target_type="proxy",
        num_classes=11,
        node_types=(
            NodeTypeSpec("proxy", count=800, feature_dim=32, feature_noise=2.0),
            NodeTypeSpec("artifact", count=1200, feature_dim=24, feature_noise=1.2),
            NodeTypeSpec("material", count=150, feature_dim=16, feature_noise=0.8),
            NodeTypeSpec("technique", count=120, feature_dim=16, feature_noise=0.8),
            NodeTypeSpec("agent", count=300, feature_dim=16, feature_noise=1.0),
            NodeTypeSpec("location", count=200, feature_dim=16, feature_noise=1.0),
            NodeTypeSpec("period", count=60, feature_dim=8, feature_noise=0.5),
        ),
        relations=(
            RelationSpec("describes", "proxy", "artifact", avg_degree=1.5, affinity=0.82),
            RelationSpec("relatedTo", "proxy", "artifact", avg_degree=1.0, affinity=0.7),
            RelationSpec("producedBy", "proxy", "agent", avg_degree=1.0, affinity=0.72),
            RelationSpec("locatedAt", "proxy", "location", avg_degree=1.0, affinity=0.68),
            RelationSpec("datedTo", "proxy", "period", avg_degree=1.0, affinity=0.75),
            RelationSpec("madeOf", "artifact", "material", avg_degree=1.5, affinity=0.7),
            RelationSpec("usesTechnique", "artifact", "technique", avg_degree=1.2, affinity=0.7),
            RelationSpec("createdBy", "artifact", "agent", avg_degree=1.0, affinity=0.68),
            RelationSpec("storedAt", "artifact", "location", avg_degree=1.0, affinity=0.6),
            RelationSpec("fromPeriod", "artifact", "period", avg_degree=1.0, affinity=0.7),
            RelationSpec("agentLocation", "agent", "location", avg_degree=1.0, affinity=0.55),
            RelationSpec("agentPeriod", "agent", "period", avg_degree=1.0, affinity=0.55),
            RelationSpec("materialTechnique", "material", "technique", avg_degree=1.0, affinity=0.5),
            RelationSpec("similarArtifact", "artifact", "artifact", avg_degree=1.5, affinity=0.65),
        ),
        feature_signal=1.6,
        metadata={"structure": 3, "knowledge_graph": True},
    )


def load_am(
    *, scale: float = 1.0, seed: int | np.random.Generator | None = 0
) -> HeteroGraph:
    """Generate the synthetic AM heterogeneous graph."""
    return generate_hin(am_config(), scale=scale, seed=seed)
