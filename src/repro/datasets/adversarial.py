"""Adversarial churn regimes for evolving-graph delta schedules.

:func:`repro.datasets.generators.generate_delta_schedule` models the
*friendly* production pattern: a steady trickle of edge churn spread
uniformly over the graph.  The incremental condenser is cheapest exactly
there — small dirty sets, warm starts that mostly replay certificates.
The regimes in this module are engineered to be hostile instead, each one
targeting a specific weakness of the incremental/serving stack:

``dirty-maximizer``
    Every edge edit lands on the highest in-degree destinations (hubs), so
    one touched column dirties the whole meta-path neighbourhood and
    ``dirty_targets`` is as large as the budget allows.  Periodically the
    churn volume is pushed past the ``recondense_threshold`` so the
    fall-back-to-full path is exercised, not just the incremental one.
``hub-deletion``
    Each step tombstones the single highest-total-degree node of every
    non-target type — the worst-case node removal, deleting the most
    incident edges and invalidating the most cached coverage state.
``burst-arrival``
    Quiet steps of near-zero churn punctuated by bursts inserting a
    percent-scale batch of new nodes per type at once, wired
    preferentially into existing hubs.  Node-count changes force the
    adjacency-patching and id-extension paths rather than value updates.
``skewed-types``
    All added edges pile onto one *magnet* destination node of the
    busiest relation while removals drain the other relations, and
    arrivals insert nodes of a single type only — driving the degree and
    node-type distributions pathologically far from the generator's.

Every regime is deterministic under a fixed seed, replays its deltas on a
private copy (so removals always name real edges and id ranges line up),
and stamps ``metadata={"regime": ...}`` on each delta for provenance.

Regimes are consumed through ``generate_delta_schedule(..., regime=...)``;
``python -m repro matrix`` crosses them with datasets, scales and serving
loads.  ``docs/testing.md`` describes how to add a new regime.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import ensure_rng

__all__ = [
    "ADVERSARIAL_REGIMES",
    "churn_regimes",
    "generate_adversarial_schedule",
]


# --------------------------------------------------------------------------- #
# Degree helpers
# --------------------------------------------------------------------------- #
def _in_degrees(matrix) -> np.ndarray:
    """Edges per destination column of one CSR adjacency."""
    coo = matrix.tocoo()
    return np.bincount(coo.col, minlength=matrix.shape[1]).astype(np.int64)


def _out_degrees(matrix) -> np.ndarray:
    """Edges per source row of one CSR adjacency."""
    return np.diff(matrix.indptr).astype(np.int64)


def _total_degrees(state, node_type: str) -> np.ndarray:
    """Total incident edges per node of ``node_type`` across every relation."""
    degrees = np.zeros(state.num_nodes[node_type], dtype=np.int64)
    for name, matrix in state.adjacency.items():
        rel = state.schema.relation(name)
        if rel.src == node_type:
            degrees += _out_degrees(matrix)
        if rel.dst == node_type:
            degrees += _in_degrees(matrix)
    return degrees


def _background_churn(
    state, rng: np.random.Generator, fraction: float
) -> tuple[dict, dict]:
    """Steady-style uniform churn at ``fraction`` of each relation's edges."""
    add_edges: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    remove_edges: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    if fraction <= 0.0:
        return add_edges, remove_edges
    for name, matrix in state.adjacency.items():
        count = max(1, int(round(fraction * matrix.nnz)))
        if matrix.nnz:
            coo = matrix.tocoo()
            picked = rng.choice(coo.nnz, size=min(count, coo.nnz), replace=False)
            remove_edges[name] = (coo.row[picked], coo.col[picked])
        rel = state.schema.relation(name)
        add_edges[name] = (
            rng.integers(0, state.num_nodes[rel.src], size=count),
            rng.integers(0, state.num_nodes[rel.dst], size=count),
        )
    return add_edges, remove_edges


def _arrival_features(state, node_type: str, count: int, rng) -> np.ndarray:
    """Features for arrivals, resampled from the type's empirical moments."""
    base = state.features[node_type]
    mean = base.mean(axis=0)
    std = base.std(axis=0) + 1e-6
    return mean + std * rng.standard_normal((count, base.shape[1]))


def _append_edges(
    add_edges: dict, name: str, src: np.ndarray, dst: np.ndarray
) -> None:
    base_src, base_dst = add_edges.get(
        name, (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    )
    add_edges[name] = (
        np.concatenate([base_src, src]),
        np.concatenate([base_dst, dst]),
    )


# --------------------------------------------------------------------------- #
# Regime builders: (state, step, rng, params) -> GraphDelta kwargs
# --------------------------------------------------------------------------- #
def _dirty_maximizer(state, step: int, rng, params: dict) -> dict:
    threshold = float(params.get("recondense_threshold", 0.05))
    fallback_every = int(params.get("fallback_every", 3))
    hub_count = max(1, int(params.get("hubs", 4)))
    base_churn = float(params.get("edge_churn", 0.002))
    force_full = fallback_every > 0 and step % fallback_every == 0
    add_edges: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    remove_edges: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, matrix in state.adjacency.items():
        if matrix.nnz == 0:
            continue
        rel = state.schema.relation(name)
        in_degrees = _in_degrees(matrix)
        hubs = np.argsort(-in_degrees, kind="stable")[:hub_count]
        if force_full:
            # Adds + removes together must clear the threshold with margin.
            count = max(1, int(np.ceil(1.5 * threshold * matrix.nnz)))
        else:
            count = max(1, int(round(base_churn * matrix.nnz)))
        coo = matrix.tocoo()
        incident = np.flatnonzero(np.isin(coo.col, hubs))
        if incident.size:
            take = min(count, incident.size)
            picked = rng.choice(incident, size=take, replace=False)
            remove_edges[name] = (coo.row[picked], coo.col[picked])
        add_edges[name] = (
            rng.integers(0, state.num_nodes[rel.src], size=count),
            hubs[rng.integers(0, hubs.size, size=count)],
        )
    return {"add_edges": add_edges, "remove_edges": remove_edges}


def _hub_deletion(state, step: int, rng, params: dict) -> dict:
    kill = max(1, int(params.get("hubs_per_step", 1)))
    remove_nodes: dict[str, np.ndarray] = {}
    for node_type in state.schema.node_types:
        if node_type == state.schema.target_type and not params.get(
            "include_target", False
        ):
            continue
        if state.num_nodes[node_type] <= kill + 1:
            continue
        degrees = _total_degrees(state, node_type)
        # Stable argsort: ties (and already-tombstoned zero-degree slots)
        # break by lowest id, keeping the schedule deterministic.
        order = np.argsort(-degrees, kind="stable")
        remove_nodes[node_type] = order[:kill]
    add_edges, remove_edges = _background_churn(
        state, rng, float(params.get("edge_churn", 0.001))
    )
    return {
        "add_edges": add_edges,
        "remove_edges": remove_edges,
        "remove_nodes": remove_nodes,
    }


def _burst_arrival(state, step: int, rng, params: dict) -> dict:
    burst_every = max(1, int(params.get("burst_every", 2)))
    add_edges, remove_edges = _background_churn(
        state, rng, float(params.get("edge_churn", 0.0005))
    )
    add_nodes: dict[str, np.ndarray] = {}
    if step % burst_every == 0:
        fraction = float(params.get("burst_fraction", 0.02))
        for node_type in state.schema.node_types:
            if node_type == state.schema.target_type:
                continue
            count = max(4, int(np.ceil(fraction * state.num_nodes[node_type])))
            add_nodes[node_type] = _arrival_features(state, node_type, count, rng)
        for name, matrix in state.adjacency.items():
            rel = state.schema.relation(name)
            degree = max(
                1, int(matrix.nnz / max(state.num_nodes[rel.src], 1))
            )
            hubs = None
            if matrix.nnz:
                in_degrees = _in_degrees(matrix)
                hubs = np.argsort(-in_degrees, kind="stable")[
                    : max(1, in_degrees.size // 50)
                ]
            new_src = add_nodes.get(rel.src)
            if new_src is not None:
                first = state.num_nodes[rel.src]
                ids = np.repeat(np.arange(first, first + new_src.shape[0]), degree)
                if hubs is not None:
                    # The whole burst lands on existing hot columns at once.
                    dst = hubs[rng.integers(0, hubs.size, size=ids.size)]
                else:
                    dst = rng.integers(0, state.num_nodes[rel.dst], size=ids.size)
                _append_edges(add_edges, name, ids, dst)
            new_dst = add_nodes.get(rel.dst)
            if new_dst is not None:
                first = state.num_nodes[rel.dst]
                ids = np.repeat(np.arange(first, first + new_dst.shape[0]), degree)
                src = rng.integers(0, state.num_nodes[rel.src], size=ids.size)
                _append_edges(add_edges, name, src, ids)
    return {
        "add_edges": add_edges,
        "remove_edges": remove_edges,
        "add_nodes": add_nodes,
    }


def _skewed_types(state, step: int, rng, params: dict) -> dict:
    # The magnet relation is the busiest one (stable tie-break by name).
    names = sorted(state.adjacency, key=lambda n: (-state.adjacency[n].nnz, n))
    magnet_rel = str(params.get("relation") or names[0])
    if magnet_rel not in state.adjacency:
        raise DatasetError(f"skewed-types: unknown relation {magnet_rel!r}")
    matrix = state.adjacency[magnet_rel]
    rel = state.schema.relation(magnet_rel)
    # Today's biggest hub attracts everything, so it only grows: a runaway
    # super-hub, the worst case for popularity-skewed selection scores.
    magnet = int(np.argmax(_in_degrees(matrix))) if matrix.shape[1] else 0
    count = max(8, int(round(float(params.get("edge_churn", 0.004)) * max(matrix.nnz, 1))))
    add_edges: dict[str, tuple[np.ndarray, np.ndarray]] = {
        magnet_rel: (
            rng.integers(0, state.num_nodes[rel.src], size=count),
            np.full(count, magnet, dtype=np.int64),
        )
    }
    remove_edges: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name in names[1:]:
        other = state.adjacency[name]
        if other.nnz == 0:
            continue
        take = max(1, int(round(0.002 * other.nnz)))
        coo = other.tocoo()
        picked = rng.choice(coo.nnz, size=min(take, coo.nnz), replace=False)
        remove_edges[name] = (coo.row[picked], coo.col[picked])
    add_nodes: dict[str, np.ndarray] = {}
    candidates = [t for t in (rel.src, rel.dst) if t != state.schema.target_type]
    if not candidates:
        candidates = [
            t for t in state.schema.node_types if t != state.schema.target_type
        ]
    skew_type = str(params.get("node_type") or candidates[0])
    if step % int(params.get("arrival_every", 2)) == 0:
        n = state.num_nodes[skew_type]
        arrivals = max(4, int(np.ceil(float(params.get("arrival_fraction", 0.01)) * n)))
        add_nodes[skew_type] = _arrival_features(state, skew_type, arrivals, rng)
        if rel.src == skew_type:
            ids = np.arange(n, n + arrivals)
            _append_edges(
                add_edges, magnet_rel, ids, np.full(arrivals, magnet, dtype=np.int64)
            )
    return {
        "add_edges": add_edges,
        "remove_edges": remove_edges,
        "add_nodes": add_nodes,
    }


ADVERSARIAL_REGIMES = {
    "dirty-maximizer": _dirty_maximizer,
    "hub-deletion": _hub_deletion,
    "burst-arrival": _burst_arrival,
    "skewed-types": _skewed_types,
}


def churn_regimes() -> tuple[str, ...]:
    """Every schedule regime name, ``"steady"`` first."""
    return ("steady",) + tuple(sorted(ADVERSARIAL_REGIMES))


def generate_adversarial_schedule(
    graph,
    *,
    regime: str,
    steps: int,
    seed: int | np.random.Generator | None = 0,
    params: dict | None = None,
) -> list:
    """Generate ``steps`` deltas of the named adversarial ``regime``.

    ``graph`` is not mutated: the schedule replays on a private copy so
    removals name real edges and arrivals extend the correct id ranges.
    ``params`` tunes the regime (see each builder's ``params.get`` calls);
    unknown keys are ignored.  ``regime="steady"`` delegates to
    :func:`repro.datasets.generators.generate_delta_schedule` with
    ``params`` forwarded as its keyword arguments.

    Returns a list of :class:`repro.streaming.delta.GraphDelta`, each
    stamped with ``metadata={"regime": regime}`` (steady excepted, which
    keeps its historical payload shape).
    """
    # Local imports: repro.streaming sits above the datasets layer.
    from repro.streaming.apply import DeltaApplier
    from repro.streaming.delta import GraphDelta

    if steps < 1:
        raise DatasetError(f"steps must be >= 1, got {steps}")
    if regime == "steady":
        from repro.datasets.generators import generate_delta_schedule

        return generate_delta_schedule(graph, steps=steps, seed=seed, **(params or {}))
    try:
        builder = ADVERSARIAL_REGIMES[regime]
    except KeyError:
        known = ", ".join(churn_regimes())
        raise DatasetError(
            f"unknown churn regime {regime!r}; known regimes: {known}"
        ) from None

    rng = ensure_rng(seed)
    state = graph.copy()
    applier = DeltaApplier()
    schedule = []
    for step in range(1, steps + 1):
        parts = builder(state, step, rng, dict(params or {}))
        delta = GraphDelta(step=step, metadata={"regime": regime}, **parts)
        delta.validate_against(state)
        applier.apply(state, delta)
        schedule.append(delta)
    return schedule
