"""Dataset registry.

Single lookup point mapping dataset names to loaders and their paper-aligned
default condensation ratios.  The benchmark harness iterates over this
registry instead of hard-coding dataset lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.acm import acm_config, load_acm
from repro.datasets.am import am_config, load_am
from repro.datasets.aminer import aminer_config, load_aminer
from repro.datasets.base import SyntheticHINConfig
from repro.datasets.dblp import dblp_config, load_dblp
from repro.datasets.freebase import freebase_config, load_freebase
from repro.datasets.imdb import imdb_config, load_imdb
from repro.datasets.mutag import load_mutag, mutag_config
from repro.errors import DatasetError
from repro.hetero.graph import HeteroGraph

__all__ = ["DatasetEntry", "DATASETS", "available_datasets", "load_dataset", "dataset_config"]

Loader = Callable[..., HeteroGraph]


@dataclass(frozen=True)
class DatasetEntry:
    """Registry record for one dataset."""

    name: str
    loader: Loader
    config_factory: Callable[[], SyntheticHINConfig]
    paper_ratios: tuple[float, ...]
    max_hops: int
    large_scale: bool = False
    knowledge_graph: bool = False


DATASETS: dict[str, DatasetEntry] = {
    "acm": DatasetEntry(
        name="acm",
        loader=load_acm,
        config_factory=acm_config,
        paper_ratios=(0.012, 0.024, 0.048, 0.096),
        max_hops=3,
    ),
    "dblp": DatasetEntry(
        name="dblp",
        loader=load_dblp,
        config_factory=dblp_config,
        paper_ratios=(0.012, 0.024, 0.048, 0.096),
        max_hops=4,
    ),
    "imdb": DatasetEntry(
        name="imdb",
        loader=load_imdb,
        config_factory=imdb_config,
        paper_ratios=(0.012, 0.024, 0.048, 0.096),
        max_hops=5,
    ),
    "freebase": DatasetEntry(
        name="freebase",
        loader=load_freebase,
        config_factory=freebase_config,
        paper_ratios=(0.012, 0.024, 0.048, 0.096),
        max_hops=2,
    ),
    "aminer": DatasetEntry(
        name="aminer",
        loader=load_aminer,
        config_factory=aminer_config,
        paper_ratios=(0.0005, 0.002, 0.008),
        max_hops=2,
        large_scale=True,
    ),
    "mutag": DatasetEntry(
        name="mutag",
        loader=load_mutag,
        config_factory=mutag_config,
        paper_ratios=(0.005, 0.01, 0.02),
        max_hops=1,
        knowledge_graph=True,
    ),
    "am": DatasetEntry(
        name="am",
        loader=load_am,
        config_factory=am_config,
        paper_ratios=(0.002, 0.004, 0.008),
        max_hops=1,
        knowledge_graph=True,
    ),
}


def available_datasets() -> tuple[str, ...]:
    """Names of every registered dataset."""
    return tuple(DATASETS)


def dataset_config(name: str) -> SyntheticHINConfig:
    """Return the generator config for dataset ``name``."""
    return _entry(name).config_factory()


def load_dataset(
    name: str, *, scale: float = 1.0, seed: int | np.random.Generator | None = 0
) -> HeteroGraph:
    """Load dataset ``name`` at the requested ``scale``."""
    return _entry(name).loader(scale=scale, seed=seed)


def _entry(name: str) -> DatasetEntry:
    key = name.lower()
    if key not in DATASETS:
        raise DatasetError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    return DATASETS[key]
