"""Synthetic AMiner collaboration network (large-scale analogue).

*Author* is the target type (8 research-community classes) and the schema has
only three node types (author, paper, venue) with author→paper and
paper→venue relations — "Structure 2" of Fig. 5.  The real graph has ~4.9M
nodes; the generator keeps the same shape at a CPU-friendly size and marks
the dataset as large-scale so the evaluation pipeline exercises the
scalability code paths (Table VI, Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_hin
from repro.hetero.graph import HeteroGraph

__all__ = ["aminer_config", "load_aminer"]


def aminer_config() -> SyntheticHINConfig:
    """Configuration of the synthetic AMiner dataset."""
    return SyntheticHINConfig(
        name="aminer",
        target_type="author",
        num_classes=8,
        node_types=(
            NodeTypeSpec("author", count=1600, feature_dim=32, feature_noise=1.8),
            NodeTypeSpec("paper", count=2600, feature_dim=24, feature_noise=0.9),
            NodeTypeSpec("venue", count=40, feature_dim=16, feature_noise=0.3),
        ),
        relations=(
            RelationSpec("author-paper", "author", "paper", avg_degree=3.0, affinity=0.8),
            RelationSpec("paper-venue", "paper", "venue", avg_degree=1.0, affinity=0.88),
        ),
        metadata={"structure": 2, "large_scale": True},
    )


def load_aminer(
    *, scale: float = 1.0, seed: int | np.random.Generator | None = 0
) -> HeteroGraph:
    """Generate the synthetic AMiner heterogeneous graph."""
    return generate_hin(aminer_config(), scale=scale, seed=seed)
