"""Schema-driven synthetic heterogeneous-graph generator.

Given a :class:`~repro.datasets.base.SyntheticHINConfig`, :func:`generate_hin`
produces a :class:`~repro.hetero.graph.HeteroGraph` with:

* **planted topics** — every node of every type carries a latent topic drawn
  from the same ``num_classes`` topics; target-type topics *are* the labels;
* **assortative, skewed edges** — each relation connects same-topic nodes
  with probability ``affinity`` and destination popularity follows a Pareto
  distribution, reproducing the power-law degree skew the paper's
  receptive-field argument relies on (Section IV-B);
* **class-conditional features** — each node type has per-topic Gaussian
  feature means, so meta-path aggregated features are predictive of the
  target label, as in real academic/knowledge graphs;
* **HGB-style splits** — 24% / 6% / 70% train/val/test over target nodes by
  default.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import RelationSpec, SyntheticHINConfig
from repro.hetero.builder import HeteroGraphBuilder
from repro.hetero.schema import HeteroSchema, Relation
from repro.utils.rng import ensure_rng

__all__ = ["generate_hin", "schema_from_config", "generate_delta_schedule"]


def schema_from_config(config: SyntheticHINConfig) -> HeteroSchema:
    """Build the :class:`HeteroSchema` described by ``config``."""
    return HeteroSchema(
        node_types=tuple(spec.name for spec in config.node_types),
        relations=tuple(Relation(rel.name, rel.src, rel.dst) for rel in config.relations),
        target_type=config.target_type,
        num_classes=config.num_classes,
        name=config.name,
    )


def _assign_topics(count: int, num_topics: int, rng: np.random.Generator) -> np.ndarray:
    """Roughly balanced topic assignment for ``count`` nodes."""
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    base = np.tile(np.arange(num_topics), count // num_topics + 1)[:count]
    rng.shuffle(base)
    return base.astype(np.int64)


def _popularity_weights(count: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    """Pareto-distributed popularity weights normalised to sum to one."""
    if count == 0:
        return np.empty(0, dtype=np.float64)
    weights = rng.pareto(skew, size=count) + 1.0
    return weights / weights.sum()


def _sample_relation_edges(
    rel: RelationSpec,
    src_topics: np.ndarray,
    dst_topics: np.ndarray,
    num_topics: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample edge endpoints for one relation.

    Every source node draws ``Poisson(avg_degree) + 1`` destinations.  With
    probability ``affinity`` the destination is drawn from the same-topic
    pool (weighted by popularity); otherwise from the full destination set.
    """
    n_src = src_topics.shape[0]
    n_dst = dst_topics.shape[0]
    if n_src == 0 or n_dst == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    popularity = _popularity_weights(n_dst, rel.degree_skew, rng)
    all_dst = np.arange(n_dst)
    per_topic_nodes: list[np.ndarray] = []
    per_topic_probs: list[np.ndarray] = []
    for topic in range(num_topics):
        members = all_dst[dst_topics == topic]
        per_topic_nodes.append(members)
        if members.size:
            probs = popularity[members]
            per_topic_probs.append(probs / probs.sum())
        else:
            per_topic_probs.append(np.empty(0))

    degrees = rng.poisson(rel.avg_degree, size=n_src) + 1
    src_out: list[np.ndarray] = []
    dst_out: list[np.ndarray] = []
    for src_node in range(n_src):
        deg = int(degrees[src_node])
        topic = int(src_topics[src_node]) % num_topics
        same_topic = rng.random(deg) < rel.affinity
        n_same = int(same_topic.sum())
        chosen = np.empty(deg, dtype=np.int64)
        members = per_topic_nodes[topic]
        if n_same and members.size:
            chosen[:n_same] = rng.choice(members, size=n_same, p=per_topic_probs[topic])
        else:
            n_same = 0
        n_rest = deg - n_same
        if n_rest:
            # Background (cross-topic) edges are uniform rather than
            # popularity-weighted, so hub nodes stay topic-pure — the property
            # of real academic/knowledge graphs that makes receptive-field
            # maximisation a sensible selection signal.
            chosen[n_same:] = rng.integers(0, n_dst, size=n_rest)
        src_out.append(np.full(deg, src_node, dtype=np.int64))
        dst_out.append(chosen)
    return np.concatenate(src_out), np.concatenate(dst_out)


def _topic_features(
    topics: np.ndarray,
    feature_dim: int,
    noise: float,
    signal: float,
    num_topics: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Class-conditional Gaussian features: ``x = signal * mu_topic + noise``."""
    means = rng.standard_normal((num_topics, feature_dim))
    # Orthogonalise topic means so classes are separable but not trivially so.
    q, _ = np.linalg.qr(means.T)
    means = q.T[:num_topics] if q.shape[1] >= num_topics else means
    features = signal * means[topics % num_topics]
    features = features + noise * rng.standard_normal((topics.shape[0], feature_dim))
    return features


def generate_hin(
    config: SyntheticHINConfig,
    *,
    scale: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> "HeteroGraph":
    """Generate a synthetic heterogeneous graph from ``config``.

    Parameters
    ----------
    config:
        Dataset description (node types, relations, class count, splits).
    scale:
        Multiplier applied to every node-type count; benchmarks use small
        scales so the full pipeline runs in seconds.
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    HeteroGraph
        Graph with features, labels on the target type and HGB-style splits.
    """
    from repro.hetero.graph import HeteroGraph  # local import to avoid cycles

    rng = ensure_rng(seed)
    schema = schema_from_config(config)
    counts = config.scaled_counts(scale)
    num_topics = config.num_classes

    topics: dict[str, np.ndarray] = {
        spec.name: _assign_topics(counts[spec.name], num_topics, rng)
        for spec in config.node_types
    }

    builder = HeteroGraphBuilder(schema)
    for spec in config.node_types:
        features = _topic_features(
            topics[spec.name],
            spec.feature_dim,
            spec.feature_noise,
            config.feature_signal,
            num_topics,
            rng,
        )
        builder.add_nodes(spec.name, counts[spec.name], features)

    for rel in config.relations:
        src, dst = _sample_relation_edges(
            rel, topics[rel.src], topics[rel.dst], num_topics, rng
        )
        builder.add_edges(rel.name, src, dst)

    target_topics = topics[config.target_type]
    builder.set_labels(target_topics)

    n_target = counts[config.target_type]
    order = rng.permutation(n_target)
    n_train = max(1, int(round(config.train_fraction * n_target)))
    n_val = max(1, int(round(config.val_fraction * n_target)))
    builder.set_splits(
        train=order[:n_train],
        val=order[n_train : n_train + n_val],
        test=order[n_train + n_val :],
    )
    builder.set_metadata(name=config.name, scale=scale, **dict(config.metadata))

    graph: HeteroGraph = builder.build()
    return graph


# --------------------------------------------------------------------------- #
# Evolving-graph schedules
# --------------------------------------------------------------------------- #
def generate_delta_schedule(
    graph: "HeteroGraph",
    *,
    steps: int,
    seed: int | np.random.Generator | None = 0,
    edge_churn: float = 0.002,
    relations: tuple[str, ...] | None = None,
    node_arrival_every: int = 0,
    arrival_count: int = 4,
    arrival_types: tuple[str, ...] | None = None,
    removal_every: int = 0,
    removal_count: int = 2,
    regime: str = "steady",
    regime_params: dict | None = None,
) -> "list":
    """Generate a deterministic, timestamped delta schedule for ``graph``.

    Models the production pattern the streaming subsystem targets: a steady
    trickle of edge churn (new/retracted links, e.g. tags attaching to
    papers) with occasional node arrivals and departures.  Passing
    ``regime`` other than ``"steady"`` instead delegates to the adversarial
    regime library (:mod:`repro.datasets.adversarial`) — hostile schedules
    engineered to maximize dirty sets, delete hubs, burst arrivals or skew
    type distributions — tuned by ``regime_params``; the steady keyword
    arguments below are then ignored.

    Parameters
    ----------
    graph:
        The starting graph.  It is **not** mutated: schedule generation
        replays the deltas on a private copy so that removals always name
        existing edges and arrivals extend the correct id ranges.
    steps:
        Number of deltas to generate (their ``step`` fields are 1-based).
    seed:
        RNG seed; the same seed reproduces the same schedule.
    edge_churn:
        Per-step fraction of each churned relation's edges that is removed
        and (approximately) re-added elsewhere, keeping density stable.
    relations:
        Relation names to churn (default: every relation).
    node_arrival_every / arrival_count / arrival_types:
        Every ``node_arrival_every``-th step additionally inserts
        ``arrival_count`` nodes per arrival type (default: every non-target
        type), with features resampled from the type's empirical mean/std
        and edges wired like the surrounding graph; target-type arrivals
        carry labels drawn from the empirical label distribution and join
        the test split.  ``0`` disables arrivals.
    removal_every / removal_count:
        Every ``removal_every``-th step tombstones ``removal_count`` random
        nodes per arrival type.  ``0`` disables departures.

    Returns
    -------
    list of repro.streaming.GraphDelta
        One delta per step, in replay order.
    """
    if regime != "steady":
        from repro.datasets.adversarial import generate_adversarial_schedule

        return generate_adversarial_schedule(
            graph, regime=regime, steps=steps, seed=seed, params=regime_params
        )
    if regime_params:
        # Steady accepts its tuning through regime_params too, so callers
        # driving every regime through one (regime, regime_params) pair —
        # the scenario matrix — hit the same code path as keyword callers.
        merged = {
            "edge_churn": edge_churn,
            "relations": relations,
            "node_arrival_every": node_arrival_every,
            "arrival_count": arrival_count,
            "arrival_types": arrival_types,
            "removal_every": removal_every,
            "removal_count": removal_count,
            **regime_params,
        }
        return generate_delta_schedule(graph, steps=steps, seed=seed, **merged)

    # Local import: repro.streaming sits above the datasets layer.
    from repro.streaming.apply import DeltaApplier
    from repro.streaming.delta import GraphDelta

    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if not 0.0 <= edge_churn <= 1.0:
        raise ValueError(f"edge_churn must be in [0, 1], got {edge_churn}")
    rng = ensure_rng(seed)
    state = graph.copy()
    applier = DeltaApplier()
    churned = tuple(relations) if relations is not None else tuple(state.adjacency)
    for name in churned:
        state.schema.relation(name)  # raises on unknown relation names
    if arrival_types is None:
        arrival_types = tuple(
            t for t in state.schema.node_types if t != state.schema.target_type
        )

    schedule = []
    for step in range(1, steps + 1):
        add_edges: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        remove_edges: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name in churned:
            matrix = state.adjacency[name]
            # churn 0 means no churn; any positive churn moves >= 1 edge
            count = max(1, int(round(edge_churn * matrix.nnz))) if edge_churn > 0 else 0
            if count == 0:
                continue
            if matrix.nnz:
                coo = matrix.tocoo()
                picked = rng.choice(coo.nnz, size=min(count, coo.nnz), replace=False)
                remove_edges[name] = (coo.row[picked], coo.col[picked])
            rel = state.schema.relation(name)
            add_edges[name] = (
                rng.integers(0, state.num_nodes[rel.src], size=count),
                rng.integers(0, state.num_nodes[rel.dst], size=count),
            )

        add_nodes: dict[str, np.ndarray] = {}
        add_labels = None
        if node_arrival_every and step % node_arrival_every == 0:
            for node_type in arrival_types:
                base = state.features[node_type]
                mean = base.mean(axis=0)
                std = base.std(axis=0) + 1e-6
                add_nodes[node_type] = mean + std * rng.standard_normal(
                    (arrival_count, base.shape[1])
                )
            if state.schema.target_type in add_nodes:
                labeled = state.labels[state.labels >= 0]
                population = labeled if labeled.size else np.zeros(1, dtype=np.int64)
                add_labels = rng.choice(population, size=arrival_count)
            # Wire the arrivals into the graph: every relation touching an
            # arrival type gets a few edges incident to the new ids (mean
            # degree ~= the relation's existing mean out-degree, >= 1).
            for name in state.adjacency:
                rel = state.schema.relation(name)
                new_src = add_nodes.get(rel.src)
                new_dst = add_nodes.get(rel.dst)
                pieces_src: list[np.ndarray] = []
                pieces_dst: list[np.ndarray] = []
                mean_degree = max(
                    1, int(state.adjacency[name].nnz / max(state.num_nodes[rel.src], 1))
                )
                if new_src is not None:
                    first = state.num_nodes[rel.src]
                    ids = np.repeat(
                        np.arange(first, first + new_src.shape[0]), mean_degree
                    )
                    pieces_src.append(ids)
                    pieces_dst.append(
                        rng.integers(0, state.num_nodes[rel.dst], size=ids.size)
                    )
                if new_dst is not None:
                    first = state.num_nodes[rel.dst]
                    ids = np.repeat(
                        np.arange(first, first + new_dst.shape[0]), mean_degree
                    )
                    pieces_dst.append(ids)
                    pieces_src.append(
                        rng.integers(0, state.num_nodes[rel.src], size=ids.size)
                    )
                if pieces_src:
                    base_src, base_dst = add_edges.get(
                        name, (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
                    )
                    add_edges[name] = (
                        np.concatenate([base_src] + pieces_src),
                        np.concatenate([base_dst] + pieces_dst),
                    )

        remove_nodes: dict[str, np.ndarray] = {}
        if removal_every and step % removal_every == 0:
            for node_type in arrival_types:
                count = min(removal_count, state.num_nodes[node_type] - 1)
                if count > 0:
                    remove_nodes[node_type] = rng.choice(
                        state.num_nodes[node_type], size=count, replace=False
                    )

        delta = GraphDelta(
            add_edges=add_edges,
            remove_edges=remove_edges,
            add_nodes=add_nodes,
            add_labels=add_labels,
            remove_nodes=remove_nodes,
            step=step,
        )
        applier.apply(state, delta)
        schedule.append(delta)
    return schedule
