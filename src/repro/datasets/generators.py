"""Schema-driven synthetic heterogeneous-graph generator.

Given a :class:`~repro.datasets.base.SyntheticHINConfig`, :func:`generate_hin`
produces a :class:`~repro.hetero.graph.HeteroGraph` with:

* **planted topics** — every node of every type carries a latent topic drawn
  from the same ``num_classes`` topics; target-type topics *are* the labels;
* **assortative, skewed edges** — each relation connects same-topic nodes
  with probability ``affinity`` and destination popularity follows a Pareto
  distribution, reproducing the power-law degree skew the paper's
  receptive-field argument relies on (Section IV-B);
* **class-conditional features** — each node type has per-topic Gaussian
  feature means, so meta-path aggregated features are predictive of the
  target label, as in real academic/knowledge graphs;
* **HGB-style splits** — 24% / 6% / 70% train/val/test over target nodes by
  default.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import RelationSpec, SyntheticHINConfig
from repro.hetero.builder import HeteroGraphBuilder
from repro.hetero.schema import HeteroSchema, Relation
from repro.utils.rng import ensure_rng

__all__ = ["generate_hin", "schema_from_config"]


def schema_from_config(config: SyntheticHINConfig) -> HeteroSchema:
    """Build the :class:`HeteroSchema` described by ``config``."""
    return HeteroSchema(
        node_types=tuple(spec.name for spec in config.node_types),
        relations=tuple(Relation(rel.name, rel.src, rel.dst) for rel in config.relations),
        target_type=config.target_type,
        num_classes=config.num_classes,
        name=config.name,
    )


def _assign_topics(count: int, num_topics: int, rng: np.random.Generator) -> np.ndarray:
    """Roughly balanced topic assignment for ``count`` nodes."""
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    base = np.tile(np.arange(num_topics), count // num_topics + 1)[:count]
    rng.shuffle(base)
    return base.astype(np.int64)


def _popularity_weights(count: int, skew: float, rng: np.random.Generator) -> np.ndarray:
    """Pareto-distributed popularity weights normalised to sum to one."""
    if count == 0:
        return np.empty(0, dtype=np.float64)
    weights = rng.pareto(skew, size=count) + 1.0
    return weights / weights.sum()


def _sample_relation_edges(
    rel: RelationSpec,
    src_topics: np.ndarray,
    dst_topics: np.ndarray,
    num_topics: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample edge endpoints for one relation.

    Every source node draws ``Poisson(avg_degree) + 1`` destinations.  With
    probability ``affinity`` the destination is drawn from the same-topic
    pool (weighted by popularity); otherwise from the full destination set.
    """
    n_src = src_topics.shape[0]
    n_dst = dst_topics.shape[0]
    if n_src == 0 or n_dst == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    popularity = _popularity_weights(n_dst, rel.degree_skew, rng)
    all_dst = np.arange(n_dst)
    per_topic_nodes: list[np.ndarray] = []
    per_topic_probs: list[np.ndarray] = []
    for topic in range(num_topics):
        members = all_dst[dst_topics == topic]
        per_topic_nodes.append(members)
        if members.size:
            probs = popularity[members]
            per_topic_probs.append(probs / probs.sum())
        else:
            per_topic_probs.append(np.empty(0))

    degrees = rng.poisson(rel.avg_degree, size=n_src) + 1
    src_out: list[np.ndarray] = []
    dst_out: list[np.ndarray] = []
    for src_node in range(n_src):
        deg = int(degrees[src_node])
        topic = int(src_topics[src_node]) % num_topics
        same_topic = rng.random(deg) < rel.affinity
        n_same = int(same_topic.sum())
        chosen = np.empty(deg, dtype=np.int64)
        members = per_topic_nodes[topic]
        if n_same and members.size:
            chosen[:n_same] = rng.choice(members, size=n_same, p=per_topic_probs[topic])
        else:
            n_same = 0
        n_rest = deg - n_same
        if n_rest:
            # Background (cross-topic) edges are uniform rather than
            # popularity-weighted, so hub nodes stay topic-pure — the property
            # of real academic/knowledge graphs that makes receptive-field
            # maximisation a sensible selection signal.
            chosen[n_same:] = rng.integers(0, n_dst, size=n_rest)
        src_out.append(np.full(deg, src_node, dtype=np.int64))
        dst_out.append(chosen)
    return np.concatenate(src_out), np.concatenate(dst_out)


def _topic_features(
    topics: np.ndarray,
    feature_dim: int,
    noise: float,
    signal: float,
    num_topics: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Class-conditional Gaussian features: ``x = signal * mu_topic + noise``."""
    means = rng.standard_normal((num_topics, feature_dim))
    # Orthogonalise topic means so classes are separable but not trivially so.
    q, _ = np.linalg.qr(means.T)
    means = q.T[:num_topics] if q.shape[1] >= num_topics else means
    features = signal * means[topics % num_topics]
    features = features + noise * rng.standard_normal((topics.shape[0], feature_dim))
    return features


def generate_hin(
    config: SyntheticHINConfig,
    *,
    scale: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> "HeteroGraph":
    """Generate a synthetic heterogeneous graph from ``config``.

    Parameters
    ----------
    config:
        Dataset description (node types, relations, class count, splits).
    scale:
        Multiplier applied to every node-type count; benchmarks use small
        scales so the full pipeline runs in seconds.
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    HeteroGraph
        Graph with features, labels on the target type and HGB-style splits.
    """
    from repro.hetero.graph import HeteroGraph  # local import to avoid cycles

    rng = ensure_rng(seed)
    schema = schema_from_config(config)
    counts = config.scaled_counts(scale)
    num_topics = config.num_classes

    topics: dict[str, np.ndarray] = {
        spec.name: _assign_topics(counts[spec.name], num_topics, rng)
        for spec in config.node_types
    }

    builder = HeteroGraphBuilder(schema)
    for spec in config.node_types:
        features = _topic_features(
            topics[spec.name],
            spec.feature_dim,
            spec.feature_noise,
            config.feature_signal,
            num_topics,
            rng,
        )
        builder.add_nodes(spec.name, counts[spec.name], features)

    for rel in config.relations:
        src, dst = _sample_relation_edges(
            rel, topics[rel.src], topics[rel.dst], num_topics, rng
        )
        builder.add_edges(rel.name, src, dst)

    target_topics = topics[config.target_type]
    builder.set_labels(target_topics)

    n_target = counts[config.target_type]
    order = rng.permutation(n_target)
    n_train = max(1, int(round(config.train_fraction * n_target)))
    n_val = max(1, int(round(config.val_fraction * n_target)))
    builder.set_splits(
        train=order[:n_train],
        val=order[n_train : n_train + n_val],
        test=order[n_train + n_val :],
    )
    builder.set_metadata(name=config.name, scale=scale, **dict(config.metadata))

    graph: HeteroGraph = builder.build()
    return graph
