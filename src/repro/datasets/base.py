"""Configuration objects for synthetic heterogeneous-graph datasets.

The paper evaluates on public benchmark graphs (HGB's ACM/DBLP/IMDB/Freebase,
DGL's MUTAG/AM, and the AMiner collaboration network).  Those raw files are
not available offline, so the library ships *schema-faithful synthetic
generators*: each dataset module describes its node types, relations, class
structure and relative sizes with the dataclasses below, and
:mod:`repro.datasets.generators` turns that description into a
:class:`~repro.hetero.graph.HeteroGraph` with planted, learnable class
structure.

The substitution is documented in DESIGN.md: all algorithms under study
consume only structure + features + labels, so a generator that reproduces the
schema, topology family and degree skew of each benchmark exercises the same
code paths and preserves the qualitative method ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DatasetError

__all__ = ["NodeTypeSpec", "RelationSpec", "SyntheticHINConfig"]


@dataclass(frozen=True)
class NodeTypeSpec:
    """Description of one node type in a synthetic graph.

    Attributes
    ----------
    name:
        Node-type name (e.g. ``"paper"``).
    count:
        Number of nodes of this type at ``scale=1.0``.
    feature_dim:
        Dimensionality of the node features.
    feature_noise:
        Standard deviation of the Gaussian noise added to the topic mean;
        larger values make this type less informative on its own and force
        models to rely on meta-path aggregation.
    """

    name: str
    count: int
    feature_dim: int = 16
    feature_noise: float = 1.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise DatasetError(f"node type {self.name!r} must have positive count")
        if self.feature_dim <= 0:
            raise DatasetError(f"node type {self.name!r} must have positive feature_dim")
        if self.feature_noise < 0:
            raise DatasetError(f"node type {self.name!r} must have non-negative noise")


@dataclass(frozen=True)
class RelationSpec:
    """Description of one typed relation in a synthetic graph.

    Attributes
    ----------
    name, src, dst:
        Relation identity (matches :class:`repro.hetero.schema.Relation`).
    avg_degree:
        Expected number of out-edges per source node.
    affinity:
        Probability that an edge connects nodes sharing the same latent
        topic; ``1 / num_topics`` would be chance level, values close to one
        plant strong community structure.
    degree_skew:
        Pareto shape parameter controlling destination popularity; smaller
        values give heavier-tailed (more skewed) degree distributions, which
        is what makes receptive-field maximisation meaningful.
    """

    name: str
    src: str
    dst: str
    avg_degree: float = 3.0
    affinity: float = 0.8
    degree_skew: float = 2.0

    def __post_init__(self) -> None:
        if self.avg_degree <= 0:
            raise DatasetError(f"relation {self.name!r} must have positive avg_degree")
        if not 0.0 <= self.affinity <= 1.0:
            raise DatasetError(f"relation {self.name!r} affinity must be in [0, 1]")
        if self.degree_skew <= 0:
            raise DatasetError(f"relation {self.name!r} degree_skew must be positive")


@dataclass(frozen=True)
class SyntheticHINConfig:
    """Full description of a synthetic heterogeneous information network."""

    name: str
    target_type: str
    num_classes: int
    node_types: tuple[NodeTypeSpec, ...]
    relations: tuple[RelationSpec, ...]
    train_fraction: float = 0.24
    val_fraction: float = 0.06
    feature_signal: float = 2.0
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.node_types]
        if len(set(names)) != len(names):
            raise DatasetError("duplicate node type names in config")
        if self.target_type not in names:
            raise DatasetError(f"target type {self.target_type!r} not declared")
        if self.num_classes < 2:
            raise DatasetError("num_classes must be >= 2")
        known = set(names)
        rel_names = [rel.name for rel in self.relations]
        if len(set(rel_names)) != len(rel_names):
            raise DatasetError("duplicate relation names in config")
        for rel in self.relations:
            if rel.src not in known or rel.dst not in known:
                raise DatasetError(f"relation {rel.name!r} references unknown node type")
        if not 0 < self.train_fraction < 1 or not 0 < self.val_fraction < 1:
            raise DatasetError("train/val fractions must be in (0, 1)")
        if self.train_fraction + self.val_fraction >= 1:
            raise DatasetError("train_fraction + val_fraction must be < 1")

    def node_type(self, name: str) -> NodeTypeSpec:
        """Return the spec of node type ``name``."""
        for spec in self.node_types:
            if spec.name == name:
                return spec
        raise DatasetError(f"unknown node type {name!r}")

    def scaled_counts(self, scale: float) -> dict[str, int]:
        """Node counts after multiplying every type by ``scale`` (min 4 nodes)."""
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        return {
            spec.name: max(4, int(round(spec.count * scale))) for spec in self.node_types
        }
