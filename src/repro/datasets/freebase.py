"""Synthetic Freebase knowledge-graph slice (HGB benchmark analogue).

*Book* is the target type (7 classes).  The real HGB Freebase slice has 8
node types and 36 edge types with rich cross-connections among the non-target
types — "Structure 3" of Fig. 5.  The generator keeps the 8-type schema and a
dense web of relations so the meta-path machinery sees many distinct paths.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_hin
from repro.hetero.graph import HeteroGraph

__all__ = ["freebase_config", "load_freebase"]


def freebase_config() -> SyntheticHINConfig:
    """Configuration of the synthetic Freebase dataset."""
    return SyntheticHINConfig(
        name="freebase",
        target_type="book",
        num_classes=7,
        node_types=(
            NodeTypeSpec("book", count=600, feature_dim=32, feature_noise=2.4),
            NodeTypeSpec("film", count=420, feature_dim=24, feature_noise=1.6),
            NodeTypeSpec("music", count=320, feature_dim=24, feature_noise=1.6),
            NodeTypeSpec("sports", count=200, feature_dim=16, feature_noise=1.4),
            NodeTypeSpec("people", count=520, feature_dim=24, feature_noise=1.5),
            NodeTypeSpec("location", count=280, feature_dim=16, feature_noise=1.2),
            NodeTypeSpec("organization", count=240, feature_dim=16, feature_noise=1.3),
            NodeTypeSpec("business", count=200, feature_dim=16, feature_noise=1.3),
        ),
        relations=(
            RelationSpec("book-book", "book", "book", avg_degree=2.0, affinity=0.7),
            RelationSpec("book-film", "book", "film", avg_degree=1.5, affinity=0.65),
            RelationSpec("book-music", "book", "music", avg_degree=1.2, affinity=0.6),
            RelationSpec("book-people", "book", "people", avg_degree=2.5, affinity=0.68),
            RelationSpec("book-location", "book", "location", avg_degree=1.0, affinity=0.6),
            RelationSpec("book-organization", "book", "organization", avg_degree=1.0, affinity=0.6),
            RelationSpec("film-people", "film", "people", avg_degree=2.0, affinity=0.6),
            RelationSpec("film-location", "film", "location", avg_degree=1.2, affinity=0.55),
            RelationSpec("film-music", "film", "music", avg_degree=1.0, affinity=0.55),
            RelationSpec("music-people", "music", "people", avg_degree=1.5, affinity=0.55),
            RelationSpec("sports-people", "sports", "people", avg_degree=2.0, affinity=0.55),
            RelationSpec("sports-location", "sports", "location", avg_degree=1.0, affinity=0.5),
            RelationSpec("people-location", "people", "location", avg_degree=1.0, affinity=0.55),
            RelationSpec("people-organization", "people", "organization", avg_degree=1.0, affinity=0.55),
            RelationSpec("organization-location", "organization", "location", avg_degree=1.0, affinity=0.5),
            RelationSpec("organization-business", "organization", "business", avg_degree=1.0, affinity=0.55),
            RelationSpec("business-location", "business", "location", avg_degree=1.0, affinity=0.5),
            RelationSpec("business-people", "business", "people", avg_degree=1.0, affinity=0.5),
        ),
        feature_signal=1.5,
        metadata={"structure": 3, "hgb": True},
    )


def load_freebase(
    *, scale: float = 1.0, seed: int | np.random.Generator | None = 0
) -> HeteroGraph:
    """Generate the synthetic Freebase heterogeneous graph."""
    return generate_hin(freebase_config(), scale=scale, seed=seed)
