"""Synthetic ACM academic network (HGB benchmark analogue).

Schema follows the HGB ACM graph: *paper* is the target type (3 classes —
database, wireless communication, data mining in the real data), connected to
authors, subjects and terms, plus paper→paper citation and reference
relations.  Topologically this is "Structure 1" in Fig. 5 of the paper: the
root (paper) is directly connected to every other type.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import NodeTypeSpec, RelationSpec, SyntheticHINConfig
from repro.datasets.generators import generate_hin
from repro.hetero.graph import HeteroGraph

__all__ = ["acm_config", "load_acm"]


def acm_config() -> SyntheticHINConfig:
    """Configuration of the synthetic ACM dataset."""
    return SyntheticHINConfig(
        name="acm",
        target_type="paper",
        num_classes=3,
        node_types=(
            NodeTypeSpec("paper", count=900, feature_dim=32, feature_noise=2.2),
            NodeTypeSpec("author", count=1200, feature_dim=24, feature_noise=0.8),
            NodeTypeSpec("subject", count=18, feature_dim=16, feature_noise=0.4),
            NodeTypeSpec("term", count=500, feature_dim=16, feature_noise=0.9),
        ),
        relations=(
            RelationSpec("paper-cite-paper", "paper", "paper", avg_degree=4.0, affinity=0.82),
            RelationSpec("paper-ref-paper", "paper", "paper", avg_degree=2.5, affinity=0.78),
            RelationSpec("paper-author", "paper", "author", avg_degree=3.0, affinity=0.85),
            RelationSpec("paper-subject", "paper", "subject", avg_degree=1.2, affinity=0.9),
            RelationSpec("paper-term", "paper", "term", avg_degree=6.0, affinity=0.75),
        ),
        feature_signal=1.7,
        metadata={"structure": 1, "hgb": True},
    )


def load_acm(
    *, scale: float = 1.0, seed: int | np.random.Generator | None = 0
) -> HeteroGraph:
    """Generate the synthetic ACM heterogeneous graph."""
    return generate_hin(acm_config(), scale=scale, seed=seed)
