"""Ergonomic top-level entry points.

``repro.condense`` is the one-call facade over the registry: it accepts a
loaded :class:`~repro.hetero.graph.HeteroGraph` *or* a registered dataset
name, resolves the condenser through :data:`repro.registry.condensers`, and
returns the condensed output::

    import repro

    condensed = repro.condense("acm", ratio=0.05)                    # by name
    condensed = repro.condense(graph, 0.05, method="herding-hg")     # by graph
    condensed = repro.condense(
        "dblp", 0.05, target_strategy="herding", father_strategy="ilm"
    )                                                                # ablations
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CondensedFeatureSet
from repro.hetero.graph import HeteroGraph
from repro.registry import condensers, datasets

__all__ = ["condense"]


def condense(
    graph_or_dataset: "HeteroGraph | str",
    ratio: float,
    method: str = "freehgc",
    *,
    seed: int | np.random.Generator | None = 0,
    scale: float = 1.0,
    max_hops: int | None = None,
    fast_optimization: bool = True,
    **overrides: object,
) -> "HeteroGraph | CondensedFeatureSet":
    """Condense a heterogeneous graph with any registered method.

    Parameters
    ----------
    graph_or_dataset:
        A loaded :class:`~repro.hetero.graph.HeteroGraph`, or the name of a
        dataset registered in :data:`repro.registry.datasets` (``"acm"``,
        ``"dblp"``, ...), loaded at ``scale``.
    ratio:
        Condensation ratio ``r`` in ``(0, 1)``.
    method:
        Name (or alias) of a condenser registered in
        :data:`repro.registry.condensers`; defaults to ``"freehgc"``.
    seed:
        Random seed for the dataset generator and the condenser.
    scale:
        Node-count multiplier applied when loading a dataset by name.
    max_hops:
        Meta-path hop limit ``K``.  Defaults to the dataset's paper value
        (capped at 3) when loading by name, otherwise 2.
    fast_optimization:
        Shrinks the loops of the optimisation-based baselines (GCond,
        HGCond) so interactive runs finish quickly.
    **overrides:
        Extra keyword arguments forwarded to the condenser constructor,
        e.g. ``target_strategy="herding"`` or ``alpha=0.1``.

    Returns
    -------
    The condensed :class:`~repro.hetero.graph.HeteroGraph` (selection-based
    methods) or :class:`~repro.baselines.base.CondensedFeatureSet`
    (optimisation-based baselines).

    Examples
    --------
    >>> import repro
    >>> condensed = repro.condense("acm", ratio=0.1, method="random-hg",
    ...                            scale=0.1, seed=0)
    >>> 0 < condensed.total_nodes
    True
    >>> condensed.schema.target_type
    'paper'
    """
    if isinstance(graph_or_dataset, str):
        entry = datasets.get(graph_or_dataset)
        graph = entry.loader(scale=scale, seed=seed if seed is not None else 0)
        if max_hops is None:
            max_hops = min(entry.max_hops, 3)
    else:
        graph = graph_or_dataset
        if max_hops is None:
            max_hops = 2
    factory = condensers.get(method)
    condenser = factory(
        max_hops=max_hops, fast_optimization=fast_optimization, **overrides
    )
    return condenser.condense(graph, ratio, seed=seed)
