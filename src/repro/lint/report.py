"""Reporters for :class:`repro.lint.engine.LintReport`.

Three renderings share one report object:

* :func:`render_human` — compiler-style ``path:line:col`` lines plus a
  summary, for terminals and CI logs;
* :func:`render_json` — the stable machine schema (``"version": 1``) the
  ``lint-smoke`` CI job and future matrix gates parse;
* :func:`render_stats` — per-rule finding/suppression counts, so a PR can
  be gated on "no new suppressions".

The JSON schema is covered by a stability test; bump ``SCHEMA_VERSION``
when changing it incompatibly.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintReport

__all__ = ["SCHEMA_VERSION", "render_human", "render_json", "render_stats", "to_payload"]

SCHEMA_VERSION = 1


def to_payload(report: LintReport) -> dict:
    """The ``--json`` document as a plain dict."""
    return {
        "version": SCHEMA_VERSION,
        "findings": [finding.to_dict() for finding in report.findings],
        "stats": {
            "files": report.files,
            "findings": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "per_rule": report.per_rule_stats(),
        },
        "baseline": {
            "path": report.baseline_path,
            "entries": len(report.baseline) if report.baseline is not None else 0,
            "matched": len(report.baselined),
            "expired": [entry.to_dict() for entry in report.expired],
        },
        "exit_code": report.exit_code,
    }


def render_json(report: LintReport) -> str:
    return json.dumps(to_payload(report), indent=2, sort_keys=True)


def render_human(report: LintReport) -> str:
    lines: list[str] = []
    for finding in report.findings:
        lines.append(finding.render())
    if report.expired:
        lines.append("")
        lines.append(
            f"{len(report.expired)} expired baseline entr"
            f"{'y' if len(report.expired) == 1 else 'ies'} "
            "(finding no longer present — prune with --update-baseline):"
        )
        for entry in report.expired:
            lines.append(f"  {entry.rule} {entry.path} ({entry.fingerprint})")
    if lines:
        lines.append("")
    summary = (
        f"{report.files} file{'s' if report.files != 1 else ''} checked: "
        f"{len(report.findings)} finding{'s' if len(report.findings) != 1 else ''}"
    )
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_stats(report: LintReport) -> str:
    """Per-rule table: ``RULE findings baselined suppressed``."""
    stats = report.per_rule_stats()
    lines = [f"{'rule':<10} {'findings':>8} {'baselined':>9} {'suppressed':>10}"]
    for rule_id, counts in stats.items():
        lines.append(
            f"{rule_id:<10} {counts['findings']:>8} "
            f"{counts['baselined']:>9} {counts['suppressed']:>10}"
        )
    totals = {
        "findings": len(report.findings),
        "baselined": len(report.baselined),
        "suppressed": len(report.suppressed),
    }
    lines.append(
        f"{'total':<10} {totals['findings']:>8} "
        f"{totals['baselined']:>9} {totals['suppressed']:>10}"
    )
    return "\n".join(lines)
