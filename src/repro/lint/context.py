"""Per-module analysis context shared by every ``reprolint`` rule.

One :class:`ModuleContext` is built per linted file: the parsed AST, the raw
source lines, an import-alias map that lets rules match *qualified* names
(``np.random.default_rng`` resolves to ``numpy.random.default_rng`` whatever
the local alias), module-level string constants (so ``setattr(m, CACHE_ATTR,
...)`` can be resolved when ``CACHE_ATTR = "_repro_packed"``), the
suppression-comment table, and the function decomposition most rules analyse
(:class:`FunctionUnit`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.suppress import SuppressionTable

__all__ = ["FunctionUnit", "ModuleContext"]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNCTION_NODES + (ast.Lambda,)


@dataclass
class FunctionUnit:
    """One function (or the module body) as a unit of rule analysis.

    Attributes
    ----------
    node:
        The ``FunctionDef``/``AsyncFunctionDef`` node, or the ``Module``
        node for top-level code.
    qualname:
        Dotted name including enclosing classes (``Store.put``), or
        ``"<module>"``.
    nodes:
        Every AST node in the unit **including** nested functions/lambdas —
        the view durability/cache rules want (a nested helper's
        ``os.replace`` still belongs to the enclosing operation).
    direct_nodes:
        Every AST node in the unit **excluding** nested function and lambda
        bodies — the view the asyncio rule wants (a blocking call inside a
        nested ``def`` is typically shipped to an executor, not awaited
        inline).
    is_async:
        Whether the unit is an ``async def``.
    """

    node: ast.AST
    qualname: str
    nodes: list[ast.AST]
    direct_nodes: list[ast.AST]
    is_async: bool = False

    def calls(self, *, direct_only: bool = False) -> list[ast.Call]:
        pool = self.direct_nodes if direct_only else self.nodes
        return [n for n in pool if isinstance(n, ast.Call)]


def _collect_unit_nodes(root: ast.AST) -> tuple[list[ast.AST], list[ast.AST]]:
    """``(all descendant nodes, descendants excluding nested scopes)``."""
    all_nodes: list[ast.AST] = []
    direct: list[ast.AST] = []

    def walk(node: ast.AST, in_nested: bool) -> None:
        for child in ast.iter_child_nodes(node):
            all_nodes.append(child)
            if not in_nested:
                direct.append(child)
            nested = in_nested or isinstance(child, _SCOPE_NODES)
            walk(child, nested)

    walk(root, False)
    return all_nodes, direct


class ModuleContext:
    """Everything a rule needs to analyse one source file.

    Parameters
    ----------
    path:
        Display path of the file (posix, relative to the lint root).
    source:
        The file's full text.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = str(Path(path).as_posix())
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        self.suppressions = SuppressionTable.from_source(source)
        self.aliases = self._import_aliases(self.tree)
        self.constants = self._module_constants(self.tree)
        self._units: list[FunctionUnit] | None = None

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _import_aliases(tree: ast.Module) -> dict[str, str]:
        """Local name → fully qualified dotted prefix, from import statements."""
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    aliases[item.asname or item.name.split(".")[0]] = (
                        item.name if item.asname else item.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for item in node.names:
                    if item.name == "*":
                        continue
                    aliases[item.asname or item.name] = f"{node.module}.{item.name}"
        return aliases

    @staticmethod
    def _module_constants(tree: ast.Module) -> dict[str, str]:
        """Module-level ``NAME = "literal"`` string constants."""
        constants: dict[str, str] = {}
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = node.value.value
        return constants

    def dotted(self, node: ast.AST) -> str | None:
        """Dotted source form of a Name/Attribute chain, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def qualified(self, node: ast.AST) -> str | None:
        """Alias-resolved qualified name of a call target / name chain.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` under
        ``import numpy as np``; ``sync_dir`` → the full
        ``repro.serving.integrity.sync_dir`` under a ``from`` import.
        """
        dotted = self.dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def string_value(self, node: ast.AST) -> str | None:
        """Literal string value of ``node``, resolving module constants."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.constants.get(node.id)
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # ------------------------------------------------------------------ #
    # Function decomposition
    # ------------------------------------------------------------------ #
    def function_units(self) -> list[FunctionUnit]:
        """Top-level functions/methods (plus the module body) as units.

        Nested functions do **not** get their own unit — they belong to the
        nearest enclosing def, which is the granularity the repo's
        invariants are written at (a ``commit()`` closure inside an async
        handler is part of that handler's durability story).
        """
        if self._units is not None:
            return self._units
        units: list[FunctionUnit] = []

        def visit(body_owner: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(body_owner):
                if isinstance(child, _FUNCTION_NODES):
                    qualname = f"{prefix}{child.name}" if prefix else child.name
                    nodes, direct = _collect_unit_nodes(child)
                    units.append(
                        FunctionUnit(
                            node=child,
                            qualname=qualname,
                            nodes=nodes,
                            direct_nodes=direct,
                            is_async=isinstance(child, ast.AsyncFunctionDef),
                        )
                    )
                    # Nested async defs still need their own asyncio view:
                    # give *async* nested functions a unit of their own.
                    visit(child, f"{qualname}.")
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.")
                else:
                    visit(child, prefix)

        visit(self.tree, "")
        # Keep only top-level-per-scope units: a nested *sync* def is part
        # of its parent; a nested *async* def analyses independently too.
        seen_spans: list[tuple[int, int, bool]] = []
        kept: list[FunctionUnit] = []
        for unit in sorted(units, key=lambda u: (u.node.lineno, -u.node.end_lineno)):
            span = (unit.node.lineno, unit.node.end_lineno)
            enclosed = any(
                lo <= span[0] and span[1] <= hi for lo, hi, _ in seen_spans
            )
            if enclosed and not unit.is_async:
                continue
            seen_spans.append((span[0], span[1], unit.is_async))
            kept.append(unit)
        # The module unit sees only top-level code (incl. class bodies) —
        # function bodies belong to their own units, so excluding nested
        # scopes here keeps findings from double-reporting at module level.
        _, module_direct = _collect_unit_nodes(self.tree)
        kept.append(
            FunctionUnit(
                node=self.tree,
                qualname="<module>",
                nodes=module_direct,
                direct_nodes=module_direct,
            )
        )
        self._units = kept
        return kept

    def enclosing_symbol(self, lineno: int) -> str:
        """Qualname of the innermost function unit containing ``lineno``."""
        best = "<module>"
        best_span = None
        for unit in self.function_units():
            if unit.qualname == "<module>":
                continue
            lo, hi = unit.node.lineno, unit.node.end_lineno
            if lo <= lineno <= hi:
                if best_span is None or (hi - lo) < best_span:
                    best, best_span = unit.qualname, hi - lo
        return best
