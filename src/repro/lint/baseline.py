"""Baseline file: grandfathered findings that do not fail the lint.

The baseline is a committed JSON file (``tools/reprolint_baseline.json``)
listing findings that are *known and intentional* — each entry carries a
mandatory human reason, exactly like inline suppressions.  The engine
matches findings against it by :func:`repro.lint.findings.fingerprint`, so
entries survive unrelated line drift but expire the moment the offending
line is edited (at which point ``--update-baseline`` prunes them).

Format (``"version": 1``)::

    {
      "version": 1,
      "entries": [
        {"fingerprint": "…16 hex…", "rule": "REP-…",
         "path": "repro/…", "reason": "why this is intentional"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import LintError

__all__ = ["BaselineEntry", "Baseline"]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    fingerprint: str
    rule: str
    path: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "reason": self.reason,
        }


class Baseline:
    """A set of grandfathered findings keyed by fingerprint."""

    def __init__(self, entries: list[BaselineEntry] = ()) -> None:
        self._entries: dict[str, BaselineEntry] = {}
        for entry in entries:
            self._entries[entry.fingerprint] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> BaselineEntry | None:
        return self._entries.get(fingerprint)

    def entries(self) -> list[BaselineEntry]:
        return sorted(
            self._entries.values(), key=lambda e: (e.path, e.rule, e.fingerprint)
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Parse a baseline file, validating every entry.

        Raises
        ------
        LintError
            If the file is unreadable, has the wrong version, or any entry
            is missing a field — including the mandatory ``reason``.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise LintError(
                f"baseline {path} must be a JSON object with 'version': {_VERSION}"
            )
        raw_entries = payload.get("entries")
        if not isinstance(raw_entries, list):
            raise LintError(f"baseline {path} must carry an 'entries' list")
        entries: list[BaselineEntry] = []
        for index, raw in enumerate(raw_entries):
            if not isinstance(raw, dict):
                raise LintError(f"baseline {path} entry {index} is not an object")
            missing = [
                key
                for key in ("fingerprint", "rule", "path", "reason")
                if not isinstance(raw.get(key), str) or not raw[key].strip()
            ]
            if missing:
                raise LintError(
                    f"baseline {path} entry {index} is missing {missing}; every "
                    "grandfathered finding needs a fingerprint, rule, path and "
                    "a non-empty reason"
                )
            entries.append(
                BaselineEntry(
                    fingerprint=raw["fingerprint"],
                    rule=raw["rule"],
                    path=raw["path"],
                    reason=raw["reason"],
                )
            )
        return cls(entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": [entry.to_dict() for entry in self.entries()],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
