"""``reprolint`` — the repo-invariant static-analysis pass.

Every guarantee this reproduction ships — byte-identical selection,
crash-consistent WAL publishes, fingerprint-guarded ``_repro_*`` caches,
an unblocked serving event loop — is encoded here as an AST rule, so
violations are caught at review time instead of by a chaos drill.

Entry points:

* ``python -m repro lint [paths]`` — the CLI (see ``repro.runner.cli``);
* :func:`repro.lint.run_lint` — the engine, shared by CLI / tests / CI;
* :data:`repro.lint.rules.rules` — the rule registry (pluggable like every
  other ``repro.registry.Registry``).

See ``docs/linting.md`` for the rule catalogue and suppression policy.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import LintReport, lint_source, run_lint, selftest
from repro.lint.findings import Finding, Severity, fingerprint
from repro.lint.rules import LintRule, all_rules, rules
from repro.lint.suppress import Suppression, SuppressionTable

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "LintRule",
    "Severity",
    "Suppression",
    "SuppressionTable",
    "all_rules",
    "fingerprint",
    "lint_source",
    "rules",
    "run_lint",
    "selftest",
]
