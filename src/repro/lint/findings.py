"""Finding and severity model shared by every ``reprolint`` rule.

A :class:`Finding` is one violation of one repo invariant at one source
location.  Findings are **value objects**: the engine materialises them from
the raw ``(line, col, message)`` triples a rule yields, attaches the stable
:func:`fingerprint` used by the baseline file, and sorts them into a
deterministic report order.

The fingerprint deliberately hashes the *text of the offending line* rather
than its line number, so a finding keeps matching its baseline entry when
unrelated edits shift the file — the same contract `pylint`/`ruff` baselines
rely on.  Identical lines in one file are disambiguated by an occurrence
index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Severity", "Finding", "fingerprint"]


class Severity:
    """Rule severities: ``error`` invariants gate CI, ``warning`` ones advise.

    Both count toward the non-baselined total (the lint exit code); the
    split exists so reports can rank what to fix first.
    """

    ERROR = "error"
    WARNING = "warning"

    ALL = (ERROR, WARNING)

    @classmethod
    def validate(cls, value: str) -> str:
        if value not in cls.ALL:
            raise ValueError(f"severity must be one of {cls.ALL}, got {value!r}")
        return value


def fingerprint(rule_id: str, path: str, line_text: str, occurrence: int) -> str:
    """Stable identity of a finding for baseline matching.

    Hashes ``(rule, posix path, stripped line text, occurrence index)`` so
    the identity survives line-number drift but not edits to the offending
    line itself.

    Examples
    --------
    >>> a = fingerprint("REP-D101", "pkg/mod.py", "rng = default_rng()", 0)
    >>> b = fingerprint("REP-D101", "pkg/mod.py", "rng = default_rng()", 0)
    >>> a == b and len(a) == 16
    True
    >>> a != fingerprint("REP-D101", "pkg/mod.py", "rng = default_rng()", 1)
    True
    """
    payload = f"{rule_id}|{path}|{line_text.strip()}|{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier (``"REP-D101"``).
    severity:
        ``"error"`` or ``"warning"``.
    path:
        Posix-style path of the offending file, relative to the lint root.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human explanation of what violated the invariant.
    symbol:
        Enclosing function/class qualname, or ``"<module>"``.
    fingerprint:
        Stable baseline identity (see :func:`fingerprint`).
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = "<module>"
    fingerprint: str = field(default="", compare=False)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict:
        """JSON-safe representation (the ``--json`` reporter's schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One-line human rendering: ``path:line:col: RULE message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"[{self.severity}] {self.message} ({self.symbol})"
        )
