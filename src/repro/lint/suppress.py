"""Inline suppression comments: ``# reprolint: disable=RULE-ID reason``.

Two forms are recognised, both requiring a human reason:

``# reprolint: disable=REP-D101 boot path, loop not serving yet``
    Suppresses the listed rule(s) on the **same physical line**.
``# reprolint: disable-next=REP-A401,REP-U201 replayed under the WAL lock``
    Suppresses on the **following** line — for statements too long to share
    a line with their justification.

Multiple rule ids are comma-separated.  A suppression **without a reason is
invalid**: the finding is still reported, annotated with
``suppression missing reason`` — an unexplained mute is itself a smell the
lint refuses to honour.  Unknown rule ids in a suppression are tolerated
(they may belong to a newer rule set) but suppress nothing by themselves.

Examples
--------
>>> table = SuppressionTable.from_source(
...     "x = 1  # reprolint: disable=REP-X001 known-hot constant\\n"
...     "# reprolint: disable-next=REP-X002 tested elsewhere\\n"
...     "y = 2\\n"
... )
>>> table.lookup(1, "REP-X001") is not None
True
>>> table.lookup(3, "REP-X002").reason
'tested elsewhere'
>>> table.lookup(2, "REP-X002") is None
True
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass
from io import StringIO

__all__ = ["Suppression", "SuppressionTable"]

_PATTERN = re.compile(
    r"#\s*reprolint:\s*(?P<directive>disable(?:-next)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9,\-\s]*?)(?:\s+(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression directive."""

    line: int  #: the line the suppression *applies to*
    rules: tuple[str, ...]
    reason: str
    valid: bool  #: False when the mandatory reason is missing

    def covers(self, rule_id: str) -> bool:
        return rule_id.upper() in self.rules


class SuppressionTable:
    """Per-file map of line → applicable suppressions."""

    def __init__(self, suppressions: list[Suppression]) -> None:
        self._by_line: dict[int, list[Suppression]] = {}
        for item in suppressions:
            self._by_line.setdefault(item.line, []).append(item)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionTable":
        """Tokenize ``source`` and collect every reprolint directive.

        Tokenization (rather than a per-line regex) keeps directives inside
        string literals from being honoured.
        """
        found: list[Suppression] = []
        try:
            tokens = list(tokenize.generate_tokens(StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls(found)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip().upper()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            if not rules:
                continue
            reason = (match.group("reason") or "").strip()
            line = token.start[0]
            if match.group("directive") == "disable-next":
                line += 1
            found.append(
                Suppression(line=line, rules=rules, reason=reason, valid=bool(reason))
            )
        return cls(found)

    def lookup(self, line: int, rule_id: str) -> Suppression | None:
        """The *valid* suppression covering ``rule_id`` at ``line``, if any."""
        for item in self._by_line.get(line, ()):
            if item.valid and item.covers(rule_id):
                return item
        return None

    def invalid_at(self, line: int, rule_id: str) -> Suppression | None:
        """A reason-less (invalid) suppression covering ``rule_id`` at ``line``."""
        for item in self._by_line.get(line, ()):
            if not item.valid and item.covers(rule_id):
                return item
        return None

    def all(self) -> list[Suppression]:
        return [s for items in self._by_line.values() for s in items]
