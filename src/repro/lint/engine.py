"""The ``reprolint`` engine: walk files, run rules, apply suppressions + baseline.

:func:`run_lint` is the single entry point the CLI, the tests and the CI
gate all share.  It produces a :class:`LintReport` — the engine never
raises on *findings* (those are data), only on misconfiguration
(:class:`repro.errors.LintError`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LintError
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, fingerprint
from repro.lint.rules import LintRule, resolve_rules
from repro.lint.suppress import Suppression

__all__ = ["LintReport", "run_lint", "lint_source", "selftest"]

#: Pseudo-rule id for files the engine cannot parse.
PARSE_RULE = "REP-E000"


@dataclass
class LintReport:
    """Everything one lint run produced, already triaged.

    ``findings`` are the actionable ones (they set the exit code);
    ``baselined`` matched a grandfathered entry; ``suppressed`` were muted
    by a valid inline directive.  ``expired`` are baseline entries no
    current finding matches — dead weight to prune.
    """

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    expired: list[BaselineEntry] = field(default_factory=list)
    files: int = 0
    rules: list[LintRule] = field(default_factory=list)
    baseline: Baseline | None = None
    baseline_path: str | None = None

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def per_rule_stats(self) -> dict[str, dict[str, int]]:
        """``{rule_id: {findings, baselined, suppressed}}`` over every rule run."""
        stats: dict[str, dict[str, int]] = {
            rule.id: {"findings": 0, "baselined": 0, "suppressed": 0}
            for rule in self.rules
        }
        for finding in self.findings:
            stats.setdefault(
                finding.rule, {"findings": 0, "baselined": 0, "suppressed": 0}
            )["findings"] += 1
        for finding in self.baselined:
            stats.setdefault(
                finding.rule, {"findings": 0, "baselined": 0, "suppressed": 0}
            )["baselined"] += 1
        for finding, _ in self.suppressed:
            stats.setdefault(
                finding.rule, {"findings": 0, "baselined": 0, "suppressed": 0}
            )["suppressed"] += 1
        return dict(sorted(stats.items()))

    def updated_baseline(self) -> Baseline:
        """A baseline covering every *current* finding (for ``--update-baseline``).

        Still-matched entries keep their reasons; new findings get an
        explicit TODO placeholder that the suppression policy requires a
        human to replace before committing; expired entries are dropped.
        """
        entries: list[BaselineEntry] = []
        for finding in self.baselined:
            existing = self.baseline.get(finding.fingerprint) if self.baseline else None
            if existing is not None:
                entries.append(existing)
        for finding in self.findings:
            entries.append(
                BaselineEntry(
                    fingerprint=finding.fingerprint,
                    rule=finding.rule,
                    path=finding.path,
                    reason="TODO(reprolint): justify this finding or fix it",
                )
            )
        return Baseline(entries)


def _collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            raise LintError(f"lint target does not exist: {raw}")
    unique: dict[str, Path] = {}
    for path in files:
        unique.setdefault(str(path), path)
    return list(unique.values())


def _display_path(path: Path, root: Path) -> str:
    try:
        return Path(os.path.relpath(path, root)).as_posix()
    except ValueError:  # different drive (windows)
        return path.as_posix()


def _lint_context(
    ctx: ModuleContext, rules: list[LintRule]
) -> tuple[list[Finding], list[tuple[Finding, Suppression]]]:
    """Run every in-scope rule over one parsed module.

    Returns ``(kept findings, suppressed findings)`` — kept ones carry
    their baseline fingerprints, disambiguated by per-line-text occurrence
    indices.
    """
    kept: list[Finding] = []
    suppressed: list[tuple[Finding, Suppression]] = []
    for rule in rules:
        if not rule.applies_to(ctx.path):
            continue
        for line, col, message in rule.check(ctx):
            finding = Finding(
                rule=rule.id,
                severity=rule.severity,
                path=ctx.path,
                line=line,
                col=col,
                message=message,
                symbol=ctx.enclosing_symbol(line),
            )
            muting = ctx.suppressions.lookup(line, rule.id)
            if muting is not None:
                suppressed.append((finding, muting))
                continue
            if ctx.suppressions.invalid_at(line, rule.id) is not None:
                finding = Finding(
                    rule=finding.rule,
                    severity=finding.severity,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message + " [suppression missing reason]",
                    symbol=finding.symbol,
                )
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    # Attach fingerprints with per-(rule, line text) occurrence indices so
    # identical offending lines in one file stay distinguishable.
    occurrences: dict[tuple[str, str], int] = {}
    stamped: list[Finding] = []
    for finding in kept:
        text = ctx.line_text(finding.line)
        key = (finding.rule, text.strip())
        index = occurrences.get(key, 0)
        occurrences[key] = index + 1
        stamped.append(
            Finding(
                rule=finding.rule,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                symbol=finding.symbol,
                fingerprint=fingerprint(finding.rule, finding.path, text, index),
            )
        )
    return stamped, suppressed


def lint_source(
    source: str, *, path: str = "example.py", rules: list[str] | None = None
) -> list[Finding]:
    """Lint a source string (fixture tests, ``--selftest``).

    Returns the kept (non-suppressed) findings; parse failures surface as a
    single ``REP-E000`` finding, mirroring :func:`run_lint`.
    """
    resolved = resolve_rules(rules)
    try:
        ctx = ModuleContext(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_RULE,
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    kept, _ = _lint_context(ctx, resolved)
    return kept


def run_lint(
    paths: list[str],
    *,
    rules: list[str] | None = None,
    baseline: str | Path | None = None,
    root: str | Path | None = None,
) -> LintReport:
    """Lint ``paths`` (files and/or directories) and triage the findings.

    Parameters
    ----------
    paths:
        Files or directories to lint; directories are walked recursively
        for ``*.py``.
    rules:
        Rule ids/aliases to run (default: every registered rule).
    baseline:
        Baseline file of grandfathered findings; missing files mean an
        empty baseline only when the path was not explicitly provided.
    root:
        Directory finding paths are displayed relative to (default: the
        current working directory) — fingerprints depend on it.
    """
    resolved_rules = resolve_rules(rules)
    root_path = Path(root) if root is not None else Path.cwd()
    report = LintReport(rules=resolved_rules)
    loaded: Baseline | None = None
    if baseline is not None:
        report.baseline_path = str(baseline)
        loaded = Baseline.load(baseline)
        report.baseline = loaded

    matched: set[str] = set()
    for file_path in _collect_files(list(paths)):
        report.files += 1
        display = _display_path(file_path, root_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        try:
            ctx = ModuleContext(display, source)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule=PARSE_RULE,
                    severity="error",
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        kept, suppressed = _lint_context(ctx, resolved_rules)
        report.suppressed.extend(suppressed)
        for finding in kept:
            if loaded is not None and finding.fingerprint in loaded:
                matched.add(finding.fingerprint)
                report.baselined.append(finding)
            else:
                report.findings.append(finding)

    if loaded is not None:
        report.expired = [
            entry for entry in loaded.entries() if entry.fingerprint not in matched
        ]
    report.findings.sort(key=Finding.sort_key)
    report.baselined.sort(key=Finding.sort_key)
    report.suppressed.sort(key=lambda pair: pair[0].sort_key())
    return report


def selftest(rules: list[str] | None = None) -> list[str]:
    """Prove every rule fires on its bad fixture and not on its good one.

    Returns a list of human-readable failures (empty means the rule set is
    healthy).  Run by the ``lint-smoke`` CI job and the test suite, so a
    rule whose detection silently rots is caught the same day.
    """
    failures: list[str] = []
    for rule in resolve_rules(rules):
        if not rule.bad_example or not rule.good_example:
            failures.append(f"{rule.id}: missing bad/good example snippets")
            continue
        bad = lint_source(rule.bad_example, path=rule.example_path, rules=[rule.id])
        if not any(f.rule == rule.id for f in bad):
            failures.append(f"{rule.id}: did not fire on its bad example")
        good = lint_source(rule.good_example, path=rule.example_path, rules=[rule.id])
        hits = [f for f in good if f.rule == rule.id]
        if hits:
            failures.append(
                f"{rule.id}: fired on its good example at line {hits[0].line}"
            )
    return failures
