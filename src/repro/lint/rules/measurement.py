"""Measurement rules: durations come from the monotonic clock.

Every latency the repo reports — bench JSON, ``repro_span_seconds``
histograms, trace span durations — must survive NTP slews and daylight
jumps.  ``time.time()`` is a wall clock: it can step backwards mid-run, so
``t1 - t0`` computed from it is occasionally negative or wildly wrong.
``time.perf_counter()`` is the sanctioned duration clock (it is what
:mod:`repro.obs` uses); ``time.time()`` remains fine as a *timestamp*
(e.g. a ``created_unix`` field) as long as two readings are never
subtracted.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import ModuleContext
from repro.lint.rules import LintRule, RawFinding, rules

__all__ = ["WallClockDurationRule"]

#: Wall-clock sources that must never feed a duration subtraction.
_WALL_CLOCK_FNS = {"time.time", "time.time_ns"}


@rules.register("rep-d104", aliases=("wall-clock-duration",))
class WallClockDurationRule(LintRule):
    id = "REP-D104"
    name = "wall-clock-duration"
    severity = "error"
    category = "measurement"
    invariant = (
        "Durations are measured with time.perf_counter(), never by "
        "subtracting wall-clock time.time() readings (NTP steps corrupt "
        "them); time.time() is for timestamps only."
    )
    example_path = "repro/core/example.py"
    bad_example = (
        "import time\n"
        "\n"
        "def timed(fn):\n"
        "    start = time.time()\n"
        "    fn()\n"
        "    return time.time() - start\n"
    )
    good_example = (
        "import time\n"
        "\n"
        "def timed(fn):\n"
        "    start = time.perf_counter()\n"
        "    fn()\n"
        "    return time.perf_counter() - start\n"
    )

    def _is_wall_clock_call(self, ctx: ModuleContext, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and ctx.qualified(node.func) in _WALL_CLOCK_FNS
        )

    def _clock_names(self, ctx: ModuleContext, nodes: list[ast.AST]) -> set[str]:
        """Dotted names assigned from a wall-clock reading in this unit."""
        names: set[str] = set()
        for node in nodes:
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
                targets, value = [node.target], node.value
            else:
                continue
            if value is None or not self._is_wall_clock_call(ctx, value):
                continue
            for target in targets:
                dotted = ctx.dotted(target)
                if dotted is not None:
                    names.add(dotted)
        return names

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for unit in ctx.function_units():
            names = self._clock_names(ctx, unit.nodes)
            for node in unit.nodes:
                if not isinstance(node, ast.BinOp) or not isinstance(
                    node.op, ast.Sub
                ):
                    continue
                operands = (node.left, node.right)
                if not any(
                    self._is_wall_clock_call(ctx, op)
                    or (ctx.dotted(op) or "") in names
                    for op in operands
                ):
                    continue
                yield self.at(
                    node,
                    "duration computed from wall-clock time.time(), which "
                    "steps under NTP adjustment; use time.perf_counter() "
                    "for elapsed-time measurement",
                )
