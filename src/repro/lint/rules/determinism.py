"""Determinism rules: the byte-identical-selection contract.

The whole pipeline promises byte-identical condensed graphs for a given
``(dataset, config, seed)`` triple.  Three things break that silently:

* RNG state that does not flow through ``repro.utils.rng.ensure_rng``
  (unseeded generators, the global ``numpy.random``/``random`` state);
* iteration over an unordered ``set`` in ranking/selection code, where
  Python's hash randomisation turns tie-breaks into coin flips;
* seeds derived from unstable sources — ``hash()`` (PYTHONHASHSEED),
  wall-clock time, ``uuid4``, ``id()`` — which differ across processes
  even when the user-facing seed is fixed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import ModuleContext
from repro.lint.rules import LintRule, RawFinding, rules

__all__ = ["UnseededRngRule", "SetIterationRule", "UnstableSeedRule"]

#: RNG constructors that are deterministic only when given a seed.
_SEEDABLE_CTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

#: Functions that mutate/consume the *global* RNG state — never acceptable
#: outside utils/rng.py, seeded or not.
_GLOBAL_STATE_FNS = {
    "numpy.random.seed",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.random",
    "numpy.random.randint",
    "numpy.random.choice",
    "numpy.random.permutation",
    "numpy.random.shuffle",
    "numpy.random.normal",
    "numpy.random.uniform",
    "random.seed",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
}

#: Call targets that accept a seed (positionally or as ``seed=``).
_SEED_SINKS = _SEEDABLE_CTORS | {"numpy.random.seed", "random.seed"}
_SEED_SINK_SUFFIXES = ("ensure_rng", "spawn_rngs", "spawn_seed_ints")

#: Sources whose value differs across processes/runs for a fixed user seed.
_UNSTABLE_SOURCES = {
    "hash": "hash() depends on PYTHONHASHSEED",
    "id": "id() is an address, unique per process",
    "time.time": "wall-clock time differs per run",
    "time.time_ns": "wall-clock time differs per run",
    "time.monotonic": "monotonic clock differs per run",
    "time.perf_counter": "perf counter differs per run",
    "os.urandom": "os.urandom is entropy, not a seed",
    "uuid.uuid4": "uuid4 is random per call",
}
_UNSTABLE_DATETIME = (".now", ".utcnow", ".today")


@rules.register("rep-d101", aliases=("unseeded-rng",))
class UnseededRngRule(LintRule):
    id = "REP-D101"
    name = "unseeded-rng"
    severity = "error"
    category = "determinism"
    invariant = (
        "All randomness flows through repro.utils.rng.ensure_rng with an "
        "explicit seed; no unseeded generators or global RNG state."
    )
    exempt = ("utils/rng.py",)
    example_path = "repro/core/example.py"
    bad_example = (
        "import numpy as np\n"
        "\n"
        "def jitter(values):\n"
        "    rng = np.random.default_rng()\n"
        "    return values + rng.normal(size=len(values))\n"
    )
    good_example = (
        "from repro.utils.rng import ensure_rng\n"
        "\n"
        "def jitter(values, seed):\n"
        "    rng = ensure_rng(seed)\n"
        "    return values + rng.normal(size=len(values))\n"
    )

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.qualified(node.func)
            if target is None:
                continue
            if target in _SEEDABLE_CTORS and not node.args and not node.keywords:
                yield self.at(
                    node,
                    f"{target}() without a seed breaks byte-identical runs; "
                    "route through repro.utils.rng.ensure_rng(seed)",
                )
            elif target in _GLOBAL_STATE_FNS:
                yield self.at(
                    node,
                    f"{target} uses global RNG state; use an explicit "
                    "ensure_rng(seed) generator instead",
                )


@rules.register("rep-d102", aliases=("set-iteration",))
class SetIterationRule(LintRule):
    id = "REP-D102"
    name = "set-iteration"
    severity = "warning"
    category = "determinism"
    invariant = (
        "Selection/condensation code never iterates an unordered set: "
        "hash randomisation turns tie-breaks into per-run coin flips."
    )
    scope = ("core/", "streaming/", "baselines/", "hetero/")
    example_path = "repro/core/example.py"
    bad_example = (
        "def dedupe(items):\n"
        "    out = []\n"
        "    for item in set(items):\n"
        "        out.append(item)\n"
        "    return out\n"
    )
    good_example = (
        "def dedupe(items):\n"
        "    out = []\n"
        "    for item in sorted(set(items)):\n"
        "        out.append(item)\n"
        "    return out\n"
    )

    def _is_set_expr(self, ctx: ModuleContext, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.qualified(node.func) in {"set", "frozenset"}
        return False

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        message = (
            "iterating an unordered set is order-unstable under hash "
            "randomisation; wrap in sorted(...) before iterating"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(ctx, node.iter):
                    yield self.at(node.iter, message)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set_expr(ctx, gen.iter):
                        yield self.at(gen.iter, message)


@rules.register("rep-d103", aliases=("unstable-seed",))
class UnstableSeedRule(LintRule):
    id = "REP-D103"
    name = "unstable-seed"
    severity = "error"
    category = "determinism"
    invariant = (
        "Seeds are pure functions of user inputs: never derived from "
        "hash(), id(), wall-clock time, urandom, or uuid4."
    )
    example_path = "repro/core/example.py"
    bad_example = (
        "import numpy as np\n"
        "\n"
        "def node_rng(name):\n"
        "    return np.random.default_rng(abs(hash(name)) % (2 ** 32))\n"
    )
    good_example = (
        "import hashlib\n"
        "\n"
        "import numpy as np\n"
        "\n"
        "def node_rng(name):\n"
        "    digest = hashlib.sha256(name.encode('utf-8')).digest()\n"
        "    return np.random.default_rng(int.from_bytes(digest[:4], 'big'))\n"
    )

    def _unstable_reason(self, ctx: ModuleContext, node: ast.AST) -> str | None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            target = ctx.qualified(sub.func)
            if target is None:
                continue
            if target in _UNSTABLE_SOURCES:
                return f"{target}: {_UNSTABLE_SOURCES[target]}"
            if target.startswith("datetime.") and target.endswith(_UNSTABLE_DATETIME):
                return f"{target}: wall-clock time differs per run"
        return None

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.qualified(node.func)
            if target is None:
                continue
            if target not in _SEED_SINKS and not target.endswith(_SEED_SINK_SUFFIXES):
                continue
            seed_exprs: list[ast.AST] = list(node.args)
            seed_exprs.extend(kw.value for kw in node.keywords if kw.arg == "seed")
            for expr in seed_exprs:
                reason = self._unstable_reason(ctx, expr)
                if reason is not None:
                    yield self.at(
                        node,
                        f"seed for {target} derived from an unstable source "
                        f"({reason}); hash the input with hashlib instead",
                    )
                    break
