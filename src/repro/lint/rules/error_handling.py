"""Error-handling rule: broad excepts must not swallow failures silently.

``ReproError`` subclasses carry the diagnostics the CLI, the serving
dead-letter path and the chaos drills all rely on.  A ``except
Exception: pass`` (or bare ``except:``) eats them along with everything
else — the failure surfaces later as corrupt state instead of at the
fault.  Handlers that log, re-raise, dead-letter, or return a sentinel
are fine; only *empty* broad handlers are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import ModuleContext
from repro.lint.rules import LintRule, RawFinding, rules

__all__ = ["SilentBroadExceptRule"]

_BROAD = {"Exception", "BaseException"}


@rules.register("rep-e601", aliases=("silent-broad-except",))
class SilentBroadExceptRule(LintRule):
    id = "REP-E601"
    name = "silent-broad-except"
    severity = "warning"
    category = "error-handling"
    invariant = (
        "No broad except handler swallows errors (including ReproError) "
        "without handling, logging, re-raising, or dead-lettering them."
    )
    example_path = "repro/runner/example.py"
    bad_example = (
        "def read_config(path):\n"
        "    try:\n"
        "        with open(path, encoding='utf-8') as fh:\n"
        "            return fh.read()\n"
        "    except Exception:\n"
        "        pass\n"
        "    return ''\n"
    )
    good_example = (
        "def read_config(path):\n"
        "    try:\n"
        "        with open(path, encoding='utf-8') as fh:\n"
        "            return fh.read()\n"
        "    except OSError:\n"
        "        return ''\n"
    )

    def _is_broad(self, ctx: ModuleContext, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            dotted = ctx.dotted(node)
            if dotted and dotted.split(".")[-1] in _BROAD:
                return True
        return False

    @staticmethod
    def _is_silent(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(ctx, node) and self._is_silent(node):
                caught = "bare except" if node.type is None else "broad except"
                yield self.at(
                    node,
                    f"{caught} silently swallows errors (including "
                    "ReproError); handle, log, re-raise, or dead-letter",
                )
