"""Asyncio-hygiene rule: keep the serving event loop unblocked.

The serving tier (PR 6/8) multiplexes every connection over one event
loop; a single synchronous ``fsync`` or ``np.load`` inside an ``async
def`` stalls *all* in-flight requests for its duration.  The sanctioned
pattern is ``loop.run_in_executor`` (see ``ServingServer._handle_delta``):
the blocking work goes inside a nested ``def`` shipped to a pool, which
this rule deliberately does not descend into (it analyses only the
*direct* body of each ``async def``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import ModuleContext
from repro.lint.rules import LintRule, RawFinding, rules

__all__ = ["BlockingCallInAsyncRule"]

#: Exactly-matching qualified names that block the loop.
_BLOCKING_EXACT = {
    "time.sleep": "use asyncio.sleep",
    "os.fsync": "ship the fsync to an executor",
    "os.replace": "ship the publish to an executor",
}

#: Qualified-name prefixes that block (file/process I/O).
_BLOCKING_PREFIXES = {
    "numpy.load": "ship array loading to an executor",
    "numpy.save": "ship array writes to an executor",
    "subprocess.": "use asyncio.create_subprocess_exec",
}

#: Repo-specific synchronous primitives (disk + verification I/O).
_BLOCKING_SUFFIXES = {
    "sync_dir": "ship the directory fsync to an executor",
    "published_session": "load the session via run_in_executor",
    "recover_from_wal": "replay the WAL via run_in_executor",
    "set_current": "publish the pointer via run_in_executor",
}


@rules.register("rep-a401", aliases=("blocking-call-in-async",))
class BlockingCallInAsyncRule(LintRule):
    id = "REP-A401"
    name = "blocking-call-in-async"
    severity = "warning"
    category = "asyncio"
    invariant = (
        "async def bodies in serving/ never call blocking I/O directly; "
        "blocking work is shipped to an executor so one slow disk cannot "
        "stall every in-flight request."
    )
    scope = ("serving/",)
    example_path = "repro/serving/example.py"
    bad_example = (
        "import time\n"
        "\n"
        "async def throttle(delay):\n"
        "    time.sleep(delay)\n"
    )
    good_example = (
        "import asyncio\n"
        "\n"
        "async def throttle(delay):\n"
        "    await asyncio.sleep(delay)\n"
    )

    def _blocking_hint(self, ctx: ModuleContext, call: ast.Call) -> str | None:
        qualified = ctx.qualified(call.func)
        dotted = ctx.dotted(call.func)
        if qualified is not None:
            hint = _BLOCKING_EXACT.get(qualified)
            if hint is not None:
                return f"{qualified} blocks the event loop; {hint}"
            for prefix, fix in _BLOCKING_PREFIXES.items():
                if qualified.startswith(prefix):
                    return f"{qualified} blocks the event loop; {fix}"
        for name in (qualified, dotted):
            if name is None:
                continue
            tail = name.split(".")[-1]
            hint = _BLOCKING_SUFFIXES.get(tail)
            if hint is not None:
                return f"{name} blocks the event loop; {hint}"
        # Executor shutdown waits for queued work unless wait=False.
        if dotted and dotted.split(".")[-1] == "shutdown":
            waits = True
            for kw in call.keywords:
                if kw.arg == "wait" and isinstance(kw.value, ast.Constant):
                    waits = bool(kw.value.value)
            if waits:
                return (
                    f"{dotted}() joins queued work on the event loop; ship it "
                    "to an executor or pass wait=False"
                )
        return None

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for unit in ctx.function_units():
            if not unit.is_async:
                continue
            for call in unit.calls(direct_only=True):
                hint = self._blocking_hint(ctx, call)
                if hint is not None:
                    yield self.at(call, hint)
