"""Durability rules: the crash-consistent publish contract.

Serving publishes (PR 6/8) follow one idiom, modelled on
``repro.serving.integrity.write_manifest``:

1. write to a temp path, ``flush()`` + ``os.fsync()`` the file contents;
2. ``os.replace(tmp, final)`` for an atomic rename;
3. ``sync_dir(final.parent)`` so the *rename itself* survives power loss.

Skipping step 3 can lose the rename; skipping the fsync in step 1 can
atomically publish a file full of zeroes.  Both failure modes only show up
under the chaos drills — this rule catches them at review time.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import FunctionUnit, ModuleContext
from repro.lint.rules import LintRule, RawFinding, rules

__all__ = ["RenameWithoutDirsyncRule", "WriteRenameWithoutFsyncRule"]

_RENAME_FNS = {"os.replace", "os.rename"}

#: Call shapes that put bytes on disk inside the same operation.
_WRITE_PREFIXES = ("numpy.save",)  # save / savez / savez_compressed
_WRITE_FNS = {"json.dump", "pickle.dump"}
_WRITE_METHODS = (".write_text", ".write_bytes", ".tofile")


def _unit_calls(ctx: ModuleContext, unit: FunctionUnit) -> list[tuple[ast.Call, str | None, str | None]]:
    """``(call, qualified, dotted)`` for every call in the unit."""
    out = []
    for call in unit.calls():
        out.append((call, ctx.qualified(call.func), ctx.dotted(call.func)))
    return out


def _rename_calls(calls) -> list[ast.Call]:
    return [call for call, qualified, _ in calls if qualified in _RENAME_FNS]


def _has_suffix_call(calls, suffix: str) -> bool:
    for _, qualified, dotted in calls:
        for name in (qualified, dotted):
            if name and (name == suffix or name.endswith(f".{suffix}")):
                return True
    return False


def _has_fsync_call(calls) -> bool:
    """``os.fsync`` or a helper wrapping it (``_fsync_file``, ``fsync_path``…)."""
    for _, qualified, dotted in calls:
        for name in (qualified, dotted):
            if name and "fsync" in name.split(".")[-1]:
                return True
    return False


@rules.register("rep-u201", aliases=("rename-without-dirsync",))
class RenameWithoutDirsyncRule(LintRule):
    id = "REP-U201"
    name = "rename-without-dirsync"
    severity = "error"
    category = "durability"
    invariant = (
        "Every atomic rename publish is followed by a parent-directory "
        "fsync (serving.integrity.sync_dir) so the rename survives a crash."
    )
    example_path = "repro/serving/example.py"
    bad_example = (
        "import os\n"
        "\n"
        "def publish(tmp, final):\n"
        "    os.replace(tmp, final)\n"
    )
    good_example = (
        "import os\n"
        "\n"
        "from repro.serving.integrity import sync_dir\n"
        "\n"
        "def publish(tmp, final):\n"
        "    os.replace(tmp, final)\n"
        "    sync_dir(os.path.dirname(final))\n"
    )

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for unit in ctx.function_units():
            calls = _unit_calls(ctx, unit)
            renames = _rename_calls(calls)
            if not renames or _has_suffix_call(calls, "sync_dir"):
                continue
            for call in renames:
                target = ctx.qualified(call.func)
                yield self.at(
                    call,
                    f"{target} without a parent-directory fsync can lose the "
                    "publish on crash; call serving.integrity.sync_dir on the "
                    "destination directory",
                )


@rules.register("rep-u202", aliases=("write-rename-without-fsync",))
class WriteRenameWithoutFsyncRule(LintRule):
    id = "REP-U202"
    name = "write-rename-without-fsync"
    severity = "error"
    category = "durability"
    invariant = (
        "File contents are flushed and fsynced before the atomic rename, "
        "or the publish can atomically install a truncated file."
    )
    example_path = "repro/serving/example.py"
    bad_example = (
        "import json\n"
        "import os\n"
        "\n"
        "from repro.serving.integrity import sync_dir\n"
        "\n"
        "def save(path, payload):\n"
        "    tmp = f'{path}.tmp'\n"
        "    with open(tmp, 'w', encoding='utf-8') as fh:\n"
        "        json.dump(payload, fh)\n"
        "    os.replace(tmp, path)\n"
        "    sync_dir(os.path.dirname(path))\n"
    )
    good_example = (
        "import json\n"
        "import os\n"
        "\n"
        "from repro.serving.integrity import sync_dir\n"
        "\n"
        "def save(path, payload):\n"
        "    tmp = f'{path}.tmp'\n"
        "    with open(tmp, 'w', encoding='utf-8') as fh:\n"
        "        json.dump(payload, fh)\n"
        "        fh.flush()\n"
        "        os.fsync(fh.fileno())\n"
        "    os.replace(tmp, path)\n"
        "    sync_dir(os.path.dirname(path))\n"
    )

    def _writes(self, calls) -> bool:
        for _, qualified, dotted in calls:
            if qualified and (
                qualified.startswith(_WRITE_PREFIXES) or qualified in _WRITE_FNS
            ):
                return True
            if dotted and dotted.endswith(_WRITE_METHODS):
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for unit in ctx.function_units():
            calls = _unit_calls(ctx, unit)
            renames = _rename_calls(calls)
            if not renames or not self._writes(calls):
                continue
            if _has_fsync_call(calls):
                continue
            for call in renames:
                yield self.at(
                    call,
                    "rename after writing without flush+fsync can publish a "
                    "truncated file; fsync the written file before "
                    "os.replace (see serving.integrity.write_manifest)",
                )
