"""Cross-process-safety rule: only picklable work crosses a process pool.

Work submitted to a ``ProcessPoolExecutor`` is pickled.  Lambdas and
functions defined inside the submitting function are not picklable — the
submission raises at runtime (or, with a fork context, silently drags
locks/file handles/live sessions into the child).  The repo's pattern
(``runner.executor``) submits module-level functions with plain-data
arguments; this rule enforces that shape.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import FunctionUnit, ModuleContext
from repro.lint.rules import LintRule, RawFinding, rules

__all__ = ["UnpicklableSubmissionRule"]

_POOL_CTOR_SUFFIXES = ("ProcessPoolExecutor", "WorkerPool")


@rules.register("rep-p501", aliases=("unpicklable-process-submission",))
class UnpicklableSubmissionRule(LintRule):
    id = "REP-P501"
    name = "unpicklable-process-submission"
    severity = "error"
    category = "process-safety"
    invariant = (
        "Work submitted to a process pool is a module-level function — "
        "lambdas and closures cannot be pickled across the process "
        "boundary."
    )
    example_path = "repro/runner/example.py"
    bad_example = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def run(items):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        futures = [pool.submit(lambda x: x + 1, i) for i in items]\n"
        "    return [f.result() for f in futures]\n"
    )
    good_example = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def _increment(x):\n"
        "    return x + 1\n"
        "\n"
        "def run(items):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        futures = [pool.submit(_increment, i) for i in items]\n"
        "    return [f.result() for f in futures]\n"
    )

    def _pool_names(self, ctx: ModuleContext, unit: FunctionUnit) -> set[str]:
        """Local variable names bound to a process-pool instance."""
        names: set[str] = set()

        def ctor(value: ast.AST) -> bool:
            if not isinstance(value, ast.Call):
                return False
            qualified = ctx.qualified(value.func)
            return bool(qualified) and qualified.endswith(_POOL_CTOR_SUFFIXES)

        for node in unit.nodes:
            if isinstance(node, ast.Assign) and ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if ctor(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        names.add(item.optional_vars.id)
        return names

    def _local_defs(self, unit: FunctionUnit) -> set[str]:
        return {
            node.name
            for node in unit.nodes
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for unit in ctx.function_units():
            if unit.qualname == "<module>":
                continue
            pools = self._pool_names(ctx, unit)
            if not pools:
                continue
            local_defs = self._local_defs(unit)
            for call in unit.calls():
                dotted = ctx.dotted(call.func)
                if dotted is None or "." not in dotted:
                    continue
                owner, _, method = dotted.rpartition(".")
                if method != "submit" or owner not in pools or not call.args:
                    continue
                work = call.args[0]
                if isinstance(work, ast.Lambda):
                    yield self.at(
                        call,
                        "lambda submitted to a process pool cannot be "
                        "pickled; move the work to a module-level function",
                    )
                elif isinstance(work, ast.Name) and work.id in local_defs:
                    yield self.at(
                        call,
                        f"locally-defined function {work.id!r} submitted to a "
                        "process pool cannot be pickled (and would capture "
                        "enclosing state); move it to module level",
                    )
