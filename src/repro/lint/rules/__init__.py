"""``reprolint`` rule registry and base class.

Rules are pluggable through the same :class:`repro.registry.Registry`
mechanism as condensers, stages, models and datasets: each rule class
registers under its id (``rep-d101``) plus a readable alias
(``unseeded-rng``), so ``python -m repro lint --rules unseeded-rng`` and
programmatic lookups both work, and third-party rule packs can
``rules.register(...)`` their own classes.

Every rule declares:

``id`` / ``name`` / ``severity`` / ``category``
    Identity and report metadata.
``invariant``
    One sentence naming the repo contract the rule protects — rendered in
    ``docs/linting.md`` and ``repro lint --list-rules``.
``scope``
    Path fragments the rule is restricted to (empty = everywhere); a file
    is in scope when any fragment appears in its posix path.
``exempt``
    Path suffixes the rule never fires on (e.g. the determinism rule
    exempts ``utils/rng.py`` — that module *is* the sanctioned RNG funnel).
``bad_example`` / ``good_example`` / ``example_path``
    A minimal snippet the rule must fire on, a paired snippet it must stay
    silent on, and a synthetic path satisfying ``scope``.  These power
    ``repro lint --selftest`` (a CI gate) and the parametrized fixture
    tests.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import ModuleContext
from repro.registry import Registry

__all__ = ["LintRule", "rules", "all_rules", "RawFinding"]

#: rule registry — the sixth Registry of the library (see repro.registry)
rules = Registry("lint rule")

#: (line, col, message) triple as yielded by a rule; the engine attaches
#: severity, path, symbol and fingerprint.
RawFinding = tuple[int, int, str]


class LintRule:
    """Base class for all reprolint rules."""

    id: str = "REP-0000"
    name: str = "abstract-rule"
    severity: str = "error"
    category: str = "general"
    invariant: str = ""
    scope: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()
    bad_example: str = ""
    good_example: str = ""
    example_path: str = "repro/example.py"

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` (posix) is inside this rule's scope."""
        if any(path.endswith(suffix) for suffix in self.exempt):
            return False
        if not self.scope:
            return True
        return any(fragment in path for fragment in self.scope)

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def at(node: ast.AST, message: str) -> RawFinding:
        return (getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message)

    def describe(self) -> dict:
        """JSON-safe rule metadata (``repro list --json`` / ``--list-rules``)."""
        return {
            "id": self.id,
            "name": self.name,
            "severity": self.severity,
            "category": self.category,
            "invariant": self.invariant,
            "scope": list(self.scope),
        }


def _ensure_builtin_rules() -> None:
    """Import every built-in rule module (their decorators register)."""
    from repro.lint.rules import (  # noqa: F401
        asyncio_hygiene,
        cache_guard,
        determinism,
        durability,
        error_handling,
        measurement,
        process_safety,
    )


def all_rules() -> list[LintRule]:
    """One instance of every registered rule, sorted by id.

    Aliases resolve to the same class, so each rule appears exactly once.
    """
    _ensure_builtin_rules()
    instances: dict[str, LintRule] = {}
    for name in rules.names():
        cls = rules.get(name)
        instance = cls() if isinstance(cls, type) else cls
        instances.setdefault(instance.id, instance)  # type: ignore[union-attr]
    return sorted(instances.values(), key=lambda r: r.id)


def resolve_rules(wanted: Iterable[str] | None) -> list[LintRule]:
    """Rule instances for ``wanted`` ids/aliases (all rules when ``None``)."""
    if wanted is None:
        return all_rules()
    _ensure_builtin_rules()
    by_id: dict[str, LintRule] = {}
    for name in wanted:
        cls = rules.get(name)
        instance = cls() if isinstance(cls, type) else cls
        by_id.setdefault(instance.id, instance)  # type: ignore[union-attr]
    return sorted(by_id.values(), key=lambda r: r.id)
