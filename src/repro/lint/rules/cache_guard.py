"""Cache-guard rule: the fingerprint-guarded ``_repro_*`` cache contract.

PR 4 introduced attribute caches (``matrix._repro_cache_token``,
``_repro_packed`` …) on scipy sparse matrices.  A cache written without
first validating the matrix fingerprint (``hetero.sparse.
validate_attribute_caches`` / ``matrix_fingerprint``) keeps serving stale
derived data after the underlying matrix mutates — the exact bug class the
guard machinery exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import ModuleContext
from repro.lint.rules import LintRule, RawFinding, rules

__all__ = ["UnguardedAttributeCacheRule"]

_CACHE_PREFIX = "_repro_"
_GUARD_SUFFIXES = ("validate_attribute_caches", "matrix_fingerprint")


@rules.register("rep-c301", aliases=("unguarded-attribute-cache",))
class UnguardedAttributeCacheRule(LintRule):
    id = "REP-C301"
    name = "unguarded-attribute-cache"
    severity = "error"
    category = "cache-guard"
    invariant = (
        "Every _repro_* attribute-cache write happens in a function that "
        "first validates the owner's fingerprint, so mutated matrices "
        "cannot serve stale derived data."
    )
    exempt = ("hetero/sparse.py",)  # defines the guard machinery itself
    example_path = "repro/core/example.py"
    bad_example = (
        "def cached_degree(matrix):\n"
        "    if not hasattr(matrix, '_repro_degree'):\n"
        "        matrix._repro_degree = matrix.sum(axis=1)\n"
        "    return matrix._repro_degree\n"
    )
    good_example = (
        "from repro.hetero.sparse import validate_attribute_caches\n"
        "\n"
        "def cached_degree(matrix):\n"
        "    validate_attribute_caches(matrix)\n"
        "    if not hasattr(matrix, '_repro_degree'):\n"
        "        matrix._repro_degree = matrix.sum(axis=1)\n"
        "    return matrix._repro_degree\n"
    )

    def _cache_writes(self, ctx: ModuleContext, unit) -> list[ast.AST]:
        writes: list[ast.AST] = []
        for node in unit.nodes:
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr.startswith(
                        _CACHE_PREFIX
                    ):
                        writes.append(node)
                        break
            elif isinstance(node, ast.Call):
                if ctx.qualified(node.func) == "setattr" and len(node.args) >= 2:
                    name = ctx.string_value(node.args[1])
                    if name is not None and name.startswith(_CACHE_PREFIX):
                        writes.append(node)
        return writes

    def _guarded(self, ctx: ModuleContext, unit) -> bool:
        for call in unit.calls():
            dotted = ctx.dotted(call.func)
            if dotted and dotted.split(".")[-1] in _GUARD_SUFFIXES:
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterable[RawFinding]:
        for unit in ctx.function_units():
            writes = self._cache_writes(ctx, unit)
            if not writes or self._guarded(ctx, unit):
                continue
            for node in writes:
                yield self.at(
                    node,
                    "_repro_* cache written without a fingerprint guard in "
                    "this function; call hetero.sparse."
                    "validate_attribute_caches(owner) first",
                )
