"""``python -m repro`` — the parallel, resumable experiment runner CLI.

See :mod:`repro.runner.cli` for the subcommands (``sweep``, ``generalize``,
``report``, ``list``) and ``docs/reproduce.md`` for per-table recipes.
"""

from repro.runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
