"""``python -m repro`` — the parallel, resumable experiment runner CLI.

See :mod:`repro.runner.cli` for the subcommands (``sweep``, ``generalize``,
``stream``, ``serve``, ``report``, ``list``), ``docs/reproduce.md`` for
per-table recipes and ``docs/serving.md`` for the online endpoint.
"""

from repro.runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
