"""Parallel, resumable execution of experiment plans.

The executor turns :class:`~repro.runner.plan.Cell` records into
:class:`~repro.evaluation.protocol.MethodEvaluation` results, either in the
calling process or across a :class:`~concurrent.futures.ProcessPoolExecutor`.
Three properties make a parallel run equivalent to the serial pipeline:

* **Deterministic per-cell seeding** — each cell derives its trial RNGs from
  its own ``base_seed`` via :func:`repro.utils.rng.spawn_rngs`, exactly as
  the serial pipeline does, so cell results do not depend on scheduling.
* **Deterministic inputs** — workers re-load the dataset from the cell's
  ``(dataset, scale, base_seed)`` triple instead of shipping graphs over
  pipes; synthetic generation is seeded, so every process sees the same
  graph.
* **Result ordering** — results are reported in plan order no matter which
  worker finished first.

Workers additionally memoise condensed artifacts per process (keyed by
:meth:`~repro.runner.plan.Cell.condense_key` plus the trial seed), so the
models of one generalization row share a single condensation instead of
re-condensing per model.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from copy import deepcopy
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.errors import ReproError
from repro.evaluation.protocol import (
    MethodEvaluation,
    evaluate_condenser,
    whole_graph_reference,
)
from repro.evaluation.timing import timed
from repro.hetero.graph import HeteroGraph
from repro.obs.propagate import continue_trace, extract_payload, inject_payload
from repro.obs.spans import Span
from repro.runner.cache import ArtifactStore
from repro.runner.plan import KIND_WHOLE, Cell, ExperimentPlan
from repro.utils.rng import spawn_seed_ints

__all__ = ["CellOutcome", "execute_plan", "clear_worker_caches"]

ProgressCallback = Callable[["CellOutcome", int, int], None]

#: per-process dataset memo — workers handling many cells of one plan load
#: the graph once.  Small cap: graphs dominate worker memory.
_GRAPH_CACHE: "OrderedDict[tuple[str, float, int], HeteroGraph]" = OrderedDict()
_GRAPH_CACHE_MAX = 4

#: per-process condensed-artifact memo keyed by (condense_key, trial_seed).
_CONDENSED_CACHE: "OrderedDict[tuple[object, ...], object]" = OrderedDict()
_CONDENSED_CACHE_MAX = 64


def clear_worker_caches() -> None:
    """Drop this process's dataset and condensed-artifact memos.

    The memos are keyed by registered component *names*; call this after
    swapping a registration under an existing name
    (:meth:`repro.registry.Registry.unregister` + re-register) so the next
    ``execute_plan`` in this process cannot serve artifacts produced by the
    old implementation.  Pool workers are spawned per ``execute_plan`` call
    and never outlive it, so only the in-process (``workers=1``) path needs
    this.
    """
    _GRAPH_CACHE.clear()
    _CONDENSED_CACHE.clear()


@dataclass
class CellOutcome:
    """Result of one cell: its evaluation plus how it was obtained."""

    cell: Cell
    evaluation: MethodEvaluation
    cached: bool
    elapsed_s: float


def _graph_for(cell: Cell) -> HeteroGraph:
    from repro import registry

    # Cache by canonical name so alias spellings share one loaded graph.
    entry = registry.datasets.get(cell.dataset)
    key = (registry.datasets.canonical(cell.dataset), float(cell.scale), int(cell.base_seed))
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = entry.loader(scale=cell.scale, seed=cell.base_seed)  # type: ignore[attr-defined]
        _GRAPH_CACHE[key] = graph
        while len(_GRAPH_CACHE) > _GRAPH_CACHE_MAX:
            _GRAPH_CACHE.popitem(last=False)
    else:
        _GRAPH_CACHE.move_to_end(key)
    return graph


class _MemoisingCondenser:
    """Wraps a condenser so repeated trials reuse cached condensed artifacts.

    :func:`~repro.evaluation.protocol.evaluate_condenser` calls ``condense``
    exactly once per trial, in trial order; pairing the call index with the
    pre-computed trial seeds gives a stable cache key without inspecting the
    generator.  Cache hits hand out a deep copy so no two model trainings
    ever share (and could cross-mutate) one artifact — matching the serial
    pipeline, where every trial condenses a fresh object.
    """

    def __init__(self, condenser: object, base_key: tuple[object, ...], trial_seeds: list[int]):
        self._condenser = condenser
        self._base_key = base_key
        self._trial_seeds = trial_seeds
        self._calls = 0

    @property
    def name(self) -> str:
        return self._condenser.name  # type: ignore[attr-defined]

    def condense(self, graph: HeteroGraph, ratio: float, *, seed: object = None) -> object:
        index = self._calls
        self._calls += 1
        if index >= len(self._trial_seeds):  # defensive: never expected
            return self._condenser.condense(graph, ratio, seed=seed)  # type: ignore[attr-defined]
        key = self._base_key + (self._trial_seeds[index],)
        cached = _CONDENSED_CACHE.get(key)
        if cached is not None:
            _CONDENSED_CACHE.move_to_end(key)
            return deepcopy(cached)
        artifact = self._condenser.condense(graph, ratio, seed=seed)  # type: ignore[attr-defined]
        _CONDENSED_CACHE[key] = deepcopy(artifact)
        while len(_CONDENSED_CACHE) > _CONDENSED_CACHE_MAX:
            _CONDENSED_CACHE.popitem(last=False)
        return artifact


def _execute_cell(
    cell: Cell, graph: HeteroGraph | None = None, *, use_memo: bool = True
) -> MethodEvaluation:
    """Run one cell to completion in this process.

    ``use_memo=False`` (the ``force`` path) bypasses the condensed-artifact
    memo so a forced re-run re-measures condensation instead of replaying a
    cached artifact.  An injected graph bypasses the memo unconditionally:
    the memo key describes the *named* dataset, which an arbitrary override
    graph does not match.
    """
    from repro.evaluation.pipeline import make_condenser, make_model_factory

    override = graph is not None
    graph = graph if graph is not None else _graph_for(cell)
    model_factory = make_model_factory(
        cell.model,
        hidden_dim=cell.hidden_dim,
        epochs=cell.epochs,
        max_hops=cell.max_hops,
        seed=cell.base_seed,
        **dict(cell.extra_model_kwargs),
    )
    if cell.kind == KIND_WHOLE:
        return whole_graph_reference(
            graph,
            model_factory,
            seeds=cell.seeds,
            base_seed=cell.base_seed,
            dataset_name=cell.dataset,
        )
    condenser = make_condenser(
        cell.method,  # type: ignore[arg-type]
        max_hops=cell.max_hops,
        fast_optimization=cell.fast_optimization,
    )
    if use_memo and not override:
        condenser = _MemoisingCondenser(  # type: ignore[assignment]
            condenser,
            cell.condense_key(),  # type: ignore[arg-type]
            spawn_seed_ints(cell.base_seed, cell.seeds),
        )
    return evaluate_condenser(
        graph,
        condenser,  # type: ignore[arg-type]
        cell.ratio,  # type: ignore[arg-type]
        model_factory,
        seeds=cell.seeds,
        base_seed=cell.base_seed,
        dataset_name=cell.dataset,
    )


def _cell_span(cell: Cell, index: int):
    """The per-cell span — one spelling shared by the serial and pool paths,
    so a parallel run's reassembled span tree matches the serial run's."""
    return obs.span(
        "runner.cell",
        index=int(index),
        dataset=cell.dataset,
        method=cell.method or cell.kind,
    )


def _worker(payload: dict[str, object]) -> dict[str, object]:
    """Pool entry point: dicts in, dicts out (cheap and version-stable to pickle)."""
    cell = Cell.from_dict(payload["cell"])  # type: ignore[arg-type]
    index = int(payload.get("index", 0))  # type: ignore[arg-type]
    # Continue the submitter's trace: the payload carries its TraceContext,
    # and this worker's spans parent to the submitting span.  Buffer-only
    # tracer — spans travel back in the result dict, not through a file.
    ctx = extract_payload(payload)
    tracer = obs.install(continue_trace(ctx, scope=f"cell-{index}")) if ctx else None
    try:
        with _cell_span(cell, index):
            with timed() as clock:
                evaluation = _execute_cell(
                    cell, use_memo=bool(payload.get("use_memo", True))
                )
    finally:
        if tracer is not None:
            obs.uninstall()
    out: dict[str, object] = {"result": evaluation.to_dict(), "elapsed_s": clock[0]}
    if tracer is not None:
        out["spans"] = [span.to_obj() for span in tracer.drain_spans()]
    return out


def _absorb_spans(objs) -> None:
    """Merge a worker's returned spans into the caller's active tracer."""
    tracer = obs.active()
    if tracer is None or not objs:
        return
    tracer.collector.extend(Span.from_obj(obj) for obj in objs)


def _coerce_store(store: "ArtifactStore | str | None") -> ArtifactStore | None:
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


def execute_plan(
    plan: ExperimentPlan,
    *,
    workers: int = 1,
    store: "ArtifactStore | str | None" = None,
    force: bool = False,
    graph: HeteroGraph | None = None,
    progress: ProgressCallback | None = None,
) -> list[CellOutcome]:
    """Execute every cell of ``plan``, skipping those already in ``store``.

    Parameters
    ----------
    plan:
        The plan to run (see :mod:`repro.runner.plan`).
    workers:
        Process count.  ``1`` (default) runs in the calling process; values
        above one fan pending cells out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.
    store:
        An :class:`~repro.runner.cache.ArtifactStore` (or a directory path
        for one).  Completed cells found in the store are **not** re-run;
        newly computed cells are appended to it.  ``None`` disables caching.
    force:
        Re-run every cell even when the store already holds its result (the
        fresh result is appended and becomes the latest record).
    graph:
        Pre-loaded graph override used by the in-process facades.  Mutually
        exclusive with both ``store`` (cache keys describe the *named*
        dataset, not an arbitrary graph) and multi-process execution (the
        override cannot be shipped to workers faithfully).
    progress:
        Optional callback ``(outcome, index, total)`` invoked once per cell
        in completion order.

    Returns
    -------
    list of CellOutcome
        One outcome per plan cell, **in plan order** regardless of worker
        scheduling.
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if graph is not None and store is not None:
        raise ReproError(
            "an explicit graph override cannot be combined with an artifact "
            "store: stored results are keyed by the named dataset"
        )
    if graph is not None and workers > 1:
        raise ReproError(
            "an explicit graph override cannot be combined with workers > 1: "
            "the override graph cannot be shipped to worker processes "
            "faithfully — pass workers=1 (or drop the override)"
        )
    store = _coerce_store(store)
    total = len(plan)
    keys = plan.keys()
    outcomes: list[CellOutcome | None] = [None] * total

    pending: list[int] = []
    for index, (cell, key) in enumerate(zip(plan.cells, keys)):
        record = None if (force or store is None) else store.get(key)
        if record is None:
            pending.append(index)
            continue
        outcome = CellOutcome(
            cell=cell,
            evaluation=MethodEvaluation.from_dict(record["result"]),  # type: ignore[arg-type]
            cached=True,
            elapsed_s=float(record.get("meta", {}).get("elapsed_s", 0.0)),  # type: ignore[union-attr]
        )
        outcomes[index] = outcome
        if progress is not None:
            progress(outcome, index, total)

    def finish(index: int, evaluation: MethodEvaluation, elapsed_s: float) -> None:
        cell = plan.cells[index]
        outcome = CellOutcome(cell=cell, evaluation=evaluation, cached=False, elapsed_s=elapsed_s)
        outcomes[index] = outcome
        if store is not None:
            store.put(keys[index], cell.to_dict(), evaluation.to_dict(), elapsed_s=elapsed_s)
        if progress is not None:
            progress(outcome, index, total)

    if workers > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {
                pool.submit(
                    _worker,
                    inject_payload(
                        {
                            "cell": plan.cells[index].to_dict(),
                            "use_memo": not force,
                            "index": index,
                        }
                    ),
                ): index
                for index in pending
            }
            for future in as_completed(futures):
                payload = future.result()
                _absorb_spans(payload.get("spans"))
                finish(
                    futures[future],
                    MethodEvaluation.from_dict(payload["result"]),  # type: ignore[arg-type]
                    float(payload["elapsed_s"]),  # type: ignore[arg-type]
                )
    else:
        for index in pending:
            with _cell_span(plan.cells[index], index):
                with timed() as clock:
                    evaluation = _execute_cell(
                        plan.cells[index], graph=graph, use_memo=not force
                    )
            finish(index, evaluation, clock[0])

    return [outcome for outcome in outcomes if outcome is not None]
