"""``python -m repro.runner`` — same entry point as ``python -m repro``."""

from repro.runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
