"""Cell planner: expand experiment configs into independent work cells.

The paper's tables are grids of independent ``(dataset, method, ratio,
model, seed)`` cells; this module turns the declarative configs
(:class:`~repro.evaluation.pipeline.ExperimentConfig` for Table III sweeps,
:class:`GeneralizationConfig` for Table IV grids) into an explicit
:class:`ExperimentPlan` — an ordered tuple of :class:`Cell` records that the
executor (:mod:`repro.runner.executor`) can run in any order, in any number
of processes, and that the artifact store (:mod:`repro.runner.cache`) can
key by a stable content hash.

A cell is *self-contained*: it names the dataset (loaded deterministically
from ``(dataset, scale, base_seed)``), the condensation method, the
evaluation model and every hyper-parameter, so two processes that ever build
the same cell compute the same :func:`Cell.key`.

Examples
--------
>>> from repro.evaluation.pipeline import ExperimentConfig
>>> from repro.runner.plan import plan_ratio_sweep
>>> plan = plan_ratio_sweep(ExperimentConfig(dataset="acm", ratios=(0.05,),
...                                          methods=("random-hg",), seeds=1))
>>> [cell.kind for cell in plan]
['evaluate', 'whole']
>>> plan.cells[0].method, plan.cells[0].ratio
('random-hg', 0.05)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Iterator

from repro import registry
from repro.errors import ReproError
from repro.utils.validation import check_max_hops

__all__ = [
    "Cell",
    "ExperimentPlan",
    "GeneralizationConfig",
    "ServeConfig",
    "StreamConfig",
    "plan_ratio_sweep",
    "plan_generalization",
    "assemble_generalization_rows",
]

def resolve_max_hops(dataset: str, max_hops: int | None) -> int:
    """Hop limit shared by every config: explicit value wins, otherwise the
    dataset's paper default capped at 3 (unknown datasets fall back to 2)."""
    if max_hops is not None:
        return max_hops
    from repro.datasets.registry import DATASETS

    entry = DATASETS.get(dataset.lower())
    return min(entry.max_hops, 3) if entry is not None else 2


#: Evaluate one (method, ratio) cell: condense → train model → test on full graph.
KIND_EVALUATE = "evaluate"
#: Whole-graph reference: train the model on the uncondensed graph.
KIND_WHOLE = "whole"


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    Parameters
    ----------
    kind:
        ``"evaluate"`` (condense → train → test) or ``"whole"`` (train the
        model on the full graph as the reference row).
    dataset:
        Dataset name or alias, kept in the caller's spelling (it labels the
        report rows); the executor resolves it through
        :data:`repro.registry.datasets` and loads at ``(scale, base_seed)``.
    method:
        Canonical condenser name (``None`` for ``"whole"`` cells).
    ratio:
        Condensation ratio (``None`` for ``"whole"`` cells).
    model:
        Canonical evaluation-model name.
    scale, seeds, base_seed, hidden_dim, epochs, max_hops, fast_optimization:
        The experiment hyper-parameters, mirroring
        :class:`~repro.evaluation.pipeline.ExperimentConfig`.
    extra_model_kwargs:
        Sorted ``(key, value)`` pairs forwarded to the model constructor.

    Returns nothing interesting by itself — cells are plain data; the
    executor turns them into
    :class:`~repro.evaluation.protocol.MethodEvaluation` results.

    Examples
    --------
    >>> cell = Cell(kind="evaluate", dataset="acm", method="random-hg",
    ...             ratio=0.05, model="sehgnn")
    >>> cell.key() == Cell.from_dict(cell.to_dict()).key()
    True
    """

    kind: str
    dataset: str
    method: str | None = None
    ratio: float | None = None
    model: str = "sehgnn"
    scale: float = 0.35
    seeds: int = 2
    base_seed: int = 0
    hidden_dim: int = 32
    epochs: int = 80
    max_hops: int = 2
    fast_optimization: bool = True
    extra_model_kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (KIND_EVALUATE, KIND_WHOLE):
            raise ReproError(f"unknown cell kind {self.kind!r}")
        if self.kind == KIND_EVALUATE and (self.method is None or self.ratio is None):
            raise ReproError("evaluate cells need both a method and a ratio")
        if self.kind == KIND_WHOLE:
            # No condenser runs in a whole cell: normalise the
            # condensation-only flag so it cannot cause spurious cache
            # misses (e.g. re-running the slow whole-graph reference just
            # because --paper-loops changed).
            object.__setattr__(self, "fast_optimization", True)

    # ------------------------------------------------------------------ #
    # Serialization / hashing
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """JSON-safe dict representation (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "method": self.method,
            "ratio": self.ratio,
            "model": self.model,
            "scale": self.scale,
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "hidden_dim": self.hidden_dim,
            "epochs": self.epochs,
            "max_hops": self.max_hops,
            "fast_optimization": self.fast_optimization,
            "extra_model_kwargs": [list(pair) for pair in self.extra_model_kwargs],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Cell":
        """Rebuild a cell from :meth:`to_dict` output (e.g. a stored artifact)."""
        data = dict(payload)
        extra = data.get("extra_model_kwargs", [])
        data["extra_model_kwargs"] = tuple((str(k), v) for k, v in extra)
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def key(self) -> str:
        """Stable 16-hex-digit content hash of the cell.

        The hash is SHA-256 over the canonical JSON encoding of
        :meth:`to_dict` (sorted keys, no whitespace), so it is identical
        across processes, machines and Python versions — the property the
        artifact store relies on for resumability.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def condense_key(self) -> tuple[object, ...] | None:
        """Cache key of the condensed artifact this cell trains on.

        Deliberately excludes the model hyper-parameters: every model of a
        generalization row trains on the *same* condensed graph, so cells
        differing only in model fields share one condensation per trial.
        Returns ``None`` for ``"whole"`` cells (nothing is condensed).
        """
        if self.kind != KIND_EVALUATE:
            return None
        return (
            self.dataset,
            self.scale,
            self.base_seed,
            self.method,
            self.ratio,
            self.max_hops,
            self.fast_optimization,
            self.seeds,
        )

    def label(self) -> str:
        """Short human-readable label used in progress lines."""
        if self.kind == KIND_WHOLE:
            return f"{self.dataset}/whole×{self.model}"
        return f"{self.dataset}/{self.method}@{self.ratio:g}×{self.model}"


@dataclass(frozen=True)
class ExperimentPlan:
    """An ordered, immutable collection of :class:`Cell` records.

    Iterating a plan yields its cells in the order the serial pipeline would
    have executed them, which is also the order the executor reports results
    in (regardless of completion order under parallelism).

    Examples
    --------
    >>> from repro.evaluation.pipeline import ExperimentConfig
    >>> plan = plan_ratio_sweep(ExperimentConfig(dataset="acm",
    ...                                          ratios=(0.05, 0.1),
    ...                                          methods=("random-hg",)))
    >>> len(plan)
    3
    >>> len(plan.keys()) == len(set(plan.keys()))
    True
    """

    cells: tuple[Cell, ...]
    description: str = ""

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    def keys(self) -> tuple[str, ...]:
        """The cell hashes, in plan order."""
        return tuple(cell.key() for cell in self.cells)


@dataclass(frozen=True)
class GeneralizationConfig:
    """Configuration of one Table IV-style generalization grid.

    Every ``method`` condenses the dataset once per trial at ``ratio``; each
    condensed artifact then trains every ``model``, and each model's
    whole-graph reference is measured once.  Mirrors the keyword surface of
    :func:`~repro.evaluation.pipeline.run_generalization_study`.
    """

    dataset: str
    ratio: float
    methods: tuple[str, ...] = ("herding-hg", "hgcond", "freehgc")
    models: tuple[str, ...] = ("hgb", "hgt", "han", "sehgnn")
    scale: float = 0.35
    seeds: int = 1
    base_seed: int = 0
    hidden_dim: int = 32
    epochs: int = 80
    max_hops: int | None = None
    fast_optimization: bool = True
    extra_model_kwargs: dict[str, object] = field(default_factory=dict)

    def resolved_max_hops(self) -> int:
        """Meta-path hop limit: explicit value or the dataset's paper default."""
        return resolve_max_hops(self.dataset, self.max_hops)


@dataclass(frozen=True)
class StreamConfig:
    """Configuration of one ``python -m repro stream`` replay.

    Describes an evolving-graph run: the starting synthetic graph, the
    generated delta schedule (see
    :func:`repro.datasets.generators.generate_delta_schedule`) and the
    incremental-condensation settings
    (:class:`repro.streaming.IncrementalCondenser`).

    Examples
    --------
    >>> StreamConfig(dataset="acm", ratio=0.05, steps=4).resolved_max_hops()
    3
    >>> StreamConfig(dataset="acm", ratio=0.05, steps=0)
    Traceback (most recent call last):
        ...
    repro.errors.ReproError: steps must be >= 1, got 0
    """

    dataset: str
    ratio: float
    steps: int = 20
    scale: float = 0.35
    seed: int = 0
    max_hops: int | None = None
    edge_churn: float = 0.002
    relations: tuple[str, ...] | None = None
    node_arrival_every: int = 0
    arrival_count: int = 4
    removal_every: int = 0
    removal_count: int = 2
    recondense_threshold: float = 0.05
    verify_every: int = 0
    eval_every: int = 0
    hidden_dim: int = 32
    epochs: int = 40
    model: str = "heterosgc"

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ReproError(f"steps must be >= 1, got {self.steps}")
        if not 0.0 < self.ratio <= 1.0:
            raise ReproError(f"ratio must be in (0, 1], got {self.ratio}")
        if not 0.0 <= self.edge_churn <= 1.0:
            raise ReproError(f"edge_churn must be in [0, 1], got {self.edge_churn}")
        if not 0.0 <= self.recondense_threshold <= 1.0:
            raise ReproError(
                "recondense_threshold must be in [0, 1], got "
                f"{self.recondense_threshold}"
            )
        for field_name in ("verify_every", "eval_every", "node_arrival_every", "removal_every"):
            if getattr(self, field_name) < 0:
                raise ReproError(f"{field_name} must be >= 0")
        if self.max_hops is not None:
            check_max_hops(self.max_hops)

    def resolved_max_hops(self) -> int:
        """Meta-path hop limit: explicit value or the dataset's paper default."""
        return resolve_max_hops(self.dataset, self.max_hops)


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one ``python -m repro serve`` deployment.

    Describes the graph being served, the condensation keeping it cheap and
    the serving knobs (micro-batching, prediction cache, bundle store); the
    CLI expands it into a :class:`repro.serving.ServingController` plus a
    :class:`repro.serving.ServingServer`.

    Examples
    --------
    >>> ServeConfig(dataset="acm", ratio=0.05).resolved_max_hops()
    3
    >>> ServeConfig(dataset="acm", ratio=2.0)
    Traceback (most recent call last):
        ...
    repro.errors.ReproError: ratio must be in (0, 1], got 2.0
    """

    dataset: str
    ratio: float
    scale: float = 0.35
    seed: int = 0
    max_hops: int | None = None
    model: str = "heterosgc"
    hidden_dim: int = 32
    epochs: int = 80
    recondense_threshold: float = 0.05
    cache_size: int = 4096
    max_batch: int = 256
    batch_window_ms: float = 2.0
    host: str = "127.0.0.1"
    port: int = 8765
    bundle_store: str | None = None
    workers: int = 0
    wal: str | None = None
    snapshot_every: int = 0
    max_pending: int = 0
    max_body_bytes: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ReproError(f"ratio must be in (0, 1], got {self.ratio}")
        if not 0.0 <= self.recondense_threshold <= 1.0:
            raise ReproError(
                "recondense_threshold must be in [0, 1], got "
                f"{self.recondense_threshold}"
            )
        if self.cache_size < 0:
            raise ReproError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_window_ms < 0:
            raise ReproError(f"batch_window_ms must be >= 0, got {self.batch_window_ms}")
        if self.max_hops is not None:
            check_max_hops(self.max_hops)
        if self.workers < 0:
            raise ReproError(f"workers must be >= 0, got {self.workers}")
        if self.workers > 0 and not self.wal:
            raise ReproError(
                "replicated serving (workers > 0) requires --wal PATH: the "
                "write-ahead log is what makes worker restarts and coordinator "
                "crash recovery safe"
            )
        if self.snapshot_every < 0:
            raise ReproError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        if self.max_pending < 0:
            raise ReproError(f"max_pending must be >= 0, got {self.max_pending}")
        if self.max_body_bytes < 1:
            raise ReproError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )

    def resolved_max_hops(self) -> int:
        """Meta-path hop limit: explicit value or the dataset's paper default."""
        return resolve_max_hops(self.dataset, self.max_hops)

    def bundle_key(self) -> str:
        """Stable model-store key of this deployment's bundle lineage."""
        return (
            f"{self.dataset.lower()}:{self.model.lower()}:r{self.ratio:g}"
            f":s{self.scale:g}:seed{self.seed}:h{self.resolved_max_hops()}"
        )


def _sorted_kwargs(kwargs: dict[str, object]) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


def _checked_dataset(name: str, validate: bool) -> str:
    """Validate ``name`` against the dataset registry, keeping it verbatim.

    The caller's spelling is preserved (it labels every report row, exactly
    as the pre-runner pipeline did); validation is skipped when the plan
    will run against an explicitly injected graph, where the dataset string
    is a pure label.
    """
    if validate:
        registry.datasets.get(name)  # raises RegistryError listing valid names
    return name


def plan_ratio_sweep(config, *, validate_dataset: bool = True) -> ExperimentPlan:
    """Expand an ``ExperimentConfig`` into a Table III-style plan.

    Cell order matches the serial pipeline exactly: every ``(ratio, method)``
    pair in ratio-major order, followed by the whole-graph reference when
    ``config.include_whole`` is set.

    Parameters
    ----------
    config:
        An :class:`~repro.evaluation.pipeline.ExperimentConfig`.
    validate_dataset:
        Check ``config.dataset`` against the registry (pass ``False`` when
        the plan will execute against an injected graph and the name is a
        pure label).

    Returns
    -------
    ExperimentPlan
        One ``"evaluate"`` cell per (ratio, method) plus at most one
        ``"whole"`` cell.
    """
    dataset = _checked_dataset(config.dataset, validate_dataset)
    model = registry.models.canonical(config.model)
    methods = tuple(registry.condensers.canonical(m) for m in config.methods)
    max_hops = check_max_hops(config.resolved_max_hops())
    common = dict(
        dataset=dataset,
        model=model,
        scale=config.scale,
        seeds=config.seeds,
        base_seed=config.base_seed,
        hidden_dim=config.hidden_dim,
        epochs=config.epochs,
        max_hops=max_hops,
        fast_optimization=config.fast_optimization,
        extra_model_kwargs=_sorted_kwargs(dict(config.extra_model_kwargs)),
    )
    cells = [
        Cell(kind=KIND_EVALUATE, method=method, ratio=float(ratio), **common)
        for ratio in config.ratios
        for method in methods
    ]
    if config.include_whole:
        cells.append(Cell(kind=KIND_WHOLE, **common))
    return ExperimentPlan(
        cells=tuple(cells),
        description=f"ratio sweep on {dataset} ({len(cells)} cells)",
    )


def plan_generalization(
    config: GeneralizationConfig, *, validate_dataset: bool = True
) -> ExperimentPlan:
    """Expand a :class:`GeneralizationConfig` into a Table IV-style plan.

    Returns one ``"evaluate"`` cell per (method, model) pair — all models of
    one method share a :meth:`Cell.condense_key`, so the executor condenses
    once per row — plus one ``"whole"`` cell per model.
    ``validate_dataset`` behaves as in :func:`plan_ratio_sweep`.
    """
    dataset = _checked_dataset(config.dataset, validate_dataset)
    methods = tuple(registry.condensers.canonical(m) for m in config.methods)
    models = tuple(registry.models.canonical(m) for m in config.models)
    max_hops = check_max_hops(config.resolved_max_hops())
    common = dict(
        dataset=dataset,
        scale=config.scale,
        seeds=config.seeds,
        base_seed=config.base_seed,
        hidden_dim=config.hidden_dim,
        epochs=config.epochs,
        max_hops=max_hops,
        fast_optimization=config.fast_optimization,
        extra_model_kwargs=_sorted_kwargs(dict(config.extra_model_kwargs)),
    )
    cells = [
        Cell(kind=KIND_EVALUATE, method=method, ratio=float(config.ratio), model=model, **common)
        for method in methods
        for model in models
    ]
    cells.extend(Cell(kind=KIND_WHOLE, model=model, **common) for model in models)
    return ExperimentPlan(
        cells=tuple(cells),
        description=f"generalization grid on {dataset} ({len(cells)} cells)",
    )


def assemble_generalization_rows(
    config: GeneralizationConfig,
    evaluations_by_key: dict[str, object],
    *,
    plan: ExperimentPlan | None = None,
) -> list[dict[str, object]]:
    """Fold per-cell evaluations back into Table IV rows.

    Parameters
    ----------
    config:
        The grid configuration the plan was built from.
    evaluations_by_key:
        Mapping from :meth:`Cell.key` to the cell's
        :class:`~repro.evaluation.protocol.MethodEvaluation` (the shape
        produced by the executor).
    plan:
        The executed plan; pass it to avoid re-expanding (and re-hashing)
        the config.  Defaults to ``plan_generalization(config)``.

    Returns
    -------
    list of dict
        One row per method with per-model accuracies (keys are the
        upper-cased model names as passed by the caller), the condensed
        average and the whole-graph average — byte-compatible with the
        pre-runner ``run_generalization_study`` output.
    """
    if plan is None:
        plan = plan_generalization(config, validate_dataset=False)
    cells = {cell.key(): cell for cell in plan}
    by_cell: dict[tuple[str | None, str, str], object] = {}
    for key, evaluation in evaluations_by_key.items():
        cell = cells.get(key)
        if cell is not None:
            by_cell[(cell.method, cell.model, cell.kind)] = evaluation

    canonical_models = [registry.models.canonical(m) for m in config.models]
    whole_mean = {
        model: by_cell[(None, model, KIND_WHOLE)].mean_accuracy for model in canonical_models
    }
    whole_avg = round(100.0 * sum(whole_mean.values()) / len(canonical_models), 2)

    rows: list[dict[str, object]] = []
    for method in config.methods:
        canonical_method = registry.condensers.canonical(method)
        row: dict[str, object] = {"dataset": config.dataset, "method": None, "ratio": config.ratio}
        per_model: list[float] = []
        for caller_name, model in zip(config.models, canonical_models):
            evaluation = by_cell[(canonical_method, model, KIND_EVALUATE)]
            row["method"] = evaluation.method
            row[caller_name.upper()] = round(100.0 * evaluation.mean_accuracy, 2)
            per_model.append(evaluation.mean_accuracy)
        row["Condensed Avg."] = round(100.0 * sum(per_model) / len(per_model), 2)
        row["Whole Avg."] = whole_avg
        rows.append(row)
    return rows
