"""The ``python -m repro`` command line.

Eight subcommands drive the planner/executor/store/serving stack end to end:

``sweep``
    Table III-style ratio sweep: every (method, ratio) cell plus the
    whole-graph reference, rendered as an aligned text table.
``generalize``
    Table IV-style grid: every method's condensed graph trains every model;
    condensation is shared across the models of a row.
``stream``
    Replay an evolving-graph delta schedule through incremental
    condensation, optionally verifying byte-identity per step.
``serve``
    Online inference endpoint: micro-batched predictions over HTTP with
    zero-downtime hot-swap on streaming deltas (``docs/serving.md``).
``matrix``
    Scenario matrix: {dataset × scale × churn regime × serving load} cells
    run resumably through the artifact store, each verified for
    byte-identity and checked against regression gates derived from the
    committed ``BENCH_*.json`` baselines (``docs/testing.md``).
``report``
    Render rows from a store's artifacts without running anything.
``lint``
    The ``reprolint`` static-analysis pass: AST rules encoding the repo's
    determinism, durability, cache-guard and async/process-safety
    invariants (``docs/linting.md``).
``list``
    Show every registered dataset, condenser, model and stage strategy,
    plus the serving components (``--json`` for machine-readable output).

Runs are **resumable**: completed cells land in the artifact store (default
``./runs``) keyed by a content hash of the cell, and re-invoking the same
command skips them.  ``--workers N`` fans independent cells out over N
processes without changing any reported number (see
:mod:`repro.runner.executor`).

Example::

    python -m repro sweep --dataset acm --ratios 0.01,0.05 --workers 4
    python -m repro report --store runs --markdown
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Sequence

from repro import registry
from repro.errors import ReproError
from repro.evaluation.pipeline import ExperimentConfig
from repro.evaluation.protocol import MethodEvaluation
from repro.evaluation.reporting import (
    format_markdown_table,
    format_table,
    sweep_columns,
    write_report,
)
from repro.evaluation.timing import Stopwatch
from repro.runner.cache import ArtifactStore
from repro.runner.executor import CellOutcome, execute_plan
from repro.runner.plan import (
    GeneralizationConfig,
    ServeConfig,
    StreamConfig,
    assemble_generalization_rows,
    plan_generalization,
    plan_ratio_sweep,
)

__all__ = ["main", "build_parser"]


def _csv(text: str) -> tuple[str, ...]:
    items = tuple(part.strip() for part in text.split(",") if part.strip())
    if not items:
        raise argparse.ArgumentTypeError(f"expected a comma-separated list, got {text!r}")
    return items


def _csv_floats(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in _csv(text))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad float list {text!r}: {exc}") from exc


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    run = parser.add_argument_group("run control")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes (default: 1, serial)")
    run.add_argument("--store", default="runs", metavar="DIR",
                     help="artifact store directory (default: ./runs)")
    run.add_argument("--no-store", action="store_true",
                     help="disable the artifact store (no caching, no resume)")
    run.add_argument("--force", action="store_true",
                     help="re-run cells even when the store already has them")
    run.add_argument("--quiet", action="store_true", help="suppress per-cell progress lines")
    out = parser.add_argument_group("output")
    out.add_argument("--markdown", action="store_true", help="render a Markdown table")
    out.add_argument("--no-timings", action="store_true",
                     help="omit wall-clock columns (byte-stable across runs)")
    out.add_argument("--output", metavar="PATH", help="also write the table to PATH")


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span-tree trace of this run to PATH (JSONL; inspect "
             "with `python -m repro trace report PATH`)",
    )


def _add_experiment_options(parser: argparse.ArgumentParser, *, default_seeds: int) -> None:
    exp = parser.add_argument_group("experiment")
    exp.add_argument("--dataset", required=True, help="registered dataset name (see `list`)")
    exp.add_argument("--scale", type=float, default=0.35,
                     help="synthetic graph size multiplier (default: 0.35)")
    exp.add_argument("--seeds", type=int, default=default_seeds, metavar="N",
                     help=f"repeated trials per cell (default: {default_seeds})")
    exp.add_argument("--base-seed", type=int, default=0, help="root random seed (default: 0)")
    exp.add_argument("--hidden-dim", type=int, default=32,
                     help="evaluation-model hidden dimension (default: 32)")
    exp.add_argument("--epochs", type=int, default=80,
                     help="evaluation-model training epochs (default: 80)")
    exp.add_argument("--max-hops", type=int, default=None, metavar="K",
                     help="meta-path hop limit (default: the dataset's paper value, capped at 3)")
    exp.add_argument("--paper-loops", action="store_true",
                     help="use paper-scale optimisation loops for GCond/HGCond (slow)")


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel, resumable reproduction runner for the FreeHGC paper tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep",
        help="Table III ratio sweep: (method, ratio) grid + whole-graph reference",
    )
    _add_experiment_options(sweep, default_seeds=2)
    sweep.add_argument("--ratios", type=_csv_floats, default=None, metavar="R1,R2,...",
                       help="condensation ratios (default: the dataset's paper ratios)")
    sweep.add_argument("--methods", type=_csv, default=("random-hg", "herding-hg", "hgcond", "freehgc"),
                       metavar="M1,M2,...", help="condenser names (default: random-hg,herding-hg,hgcond,freehgc)")
    sweep.add_argument("--model", default="sehgnn", help="evaluation model (default: sehgnn)")
    sweep.add_argument("--no-whole", action="store_true",
                       help="skip the whole-graph reference row")
    _add_run_options(sweep)
    _add_trace_option(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    generalize = sub.add_parser(
        "generalize",
        help="Table IV grid: each method's condensed graph trains every model",
    )
    _add_experiment_options(generalize, default_seeds=1)
    generalize.add_argument("--ratio", type=float, required=True, help="condensation ratio")
    generalize.add_argument("--methods", type=_csv, default=("herding-hg", "hgcond", "freehgc"),
                            metavar="M1,M2,...", help="condenser names (default: herding-hg,hgcond,freehgc)")
    generalize.add_argument("--models", type=_csv, default=("hgb", "hgt", "han", "sehgnn"),
                            metavar="M1,M2,...", help="evaluation models (default: hgb,hgt,han,sehgnn)")
    _add_run_options(generalize)
    generalize.set_defaults(func=_cmd_generalize)

    stream = sub.add_parser(
        "stream",
        help="replay an evolving-graph delta schedule through incremental condensation",
    )
    exp = stream.add_argument_group("experiment")
    exp.add_argument("--dataset", required=True, help="registered dataset name (see `list`)")
    exp.add_argument("--ratio", type=float, required=True, help="condensation ratio")
    exp.add_argument("--steps", type=int, default=20, help="delta steps to replay (default: 20)")
    exp.add_argument("--scale", type=float, default=0.35,
                     help="synthetic graph size multiplier (default: 0.35)")
    exp.add_argument("--seed", type=int, default=0, help="schedule + condensation seed (default: 0)")
    exp.add_argument("--max-hops", type=int, default=None, metavar="K",
                     help="meta-path hop limit (default: the dataset's paper value, capped at 3)")
    sched = stream.add_argument_group("delta schedule")
    sched.add_argument("--edge-churn", type=float, default=0.002,
                       help="per-step churned edge fraction per relation (default: 0.002)")
    sched.add_argument("--relations", type=_csv, default=None, metavar="R1,R2,...",
                       help="relations to churn (default: all)")
    sched.add_argument("--arrivals-every", type=int, default=0, metavar="N",
                       help="insert nodes every N steps (default: 0, disabled)")
    sched.add_argument("--arrival-count", type=int, default=4,
                       help="nodes inserted per type per arrival step (default: 4)")
    sched.add_argument("--removals-every", type=int, default=0, metavar="N",
                       help="tombstone nodes every N steps (default: 0, disabled)")
    sched.add_argument("--removal-count", type=int, default=2,
                       help="nodes tombstoned per type per removal step (default: 2)")
    cond = stream.add_argument_group("condensation")
    cond.add_argument("--recondense-threshold", type=float, default=0.05,
                      help="edge fraction above which a step recondenses from "
                           "scratch (default: 0.05)")
    cond.add_argument("--verify-every", type=int, default=0, metavar="N",
                      help="every N steps, recondense fully and assert the "
                           "incremental result is byte-identical (default: 0, off)")
    cond.add_argument("--eval-every", type=int, default=0, metavar="N",
                      help="every N steps, train a model on the condensed graph "
                           "and report full-graph test accuracy (default: 0, off)")
    cond.add_argument("--model", default="heterosgc",
                      help="evaluation model for --eval-every (default: heterosgc)")
    cond.add_argument("--hidden-dim", type=int, default=32)
    cond.add_argument("--epochs", type=int, default=40)
    out = stream.add_argument_group("output")
    out.add_argument("--markdown", action="store_true", help="render a Markdown table")
    out.add_argument("--no-timings", action="store_true",
                     help="omit wall-clock columns (byte-stable across runs)")
    out.add_argument("--output", metavar="PATH", help="also write the table to PATH")
    out.add_argument("--quiet", action="store_true", help="suppress per-step progress lines")
    _add_trace_option(stream)
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="online inference endpoint with micro-batching and hot-swap on deltas",
    )
    exp = serve.add_argument_group("experiment")
    exp.add_argument("--dataset", required=True, help="registered dataset name (see `list`)")
    exp.add_argument("--ratio", type=float, required=True, help="condensation ratio")
    exp.add_argument("--scale", type=float, default=0.35,
                     help="synthetic graph size multiplier (default: 0.35)")
    exp.add_argument("--seed", type=int, default=0, help="condensation + training seed (default: 0)")
    exp.add_argument("--max-hops", type=int, default=None, metavar="K",
                     help="meta-path hop limit (default: the dataset's paper value, capped at 3)")
    exp.add_argument("--model", default="heterosgc",
                     help="served evaluation model (default: heterosgc)")
    exp.add_argument("--hidden-dim", type=int, default=32)
    exp.add_argument("--epochs", type=int, default=80)
    srv = serve.add_argument_group("serving")
    srv.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8765,
                     help="TCP port; 0 picks an ephemeral port (default: 8765)")
    srv.add_argument("--cache-size", type=int, default=4096,
                     help="LRU prediction-cache capacity, 0 disables (default: 4096)")
    srv.add_argument("--max-batch", type=int, default=256,
                     help="micro-batch flush size (default: 256)")
    srv.add_argument("--batch-window-ms", type=float, default=2.0,
                     help="micro-batch flush window in ms (default: 2.0)")
    srv.add_argument("--recondense-threshold", type=float, default=0.05,
                     help="edge fraction above which a delta recondenses from "
                          "scratch (default: 0.05)")
    srv.add_argument("--bundle-store", default=None, metavar="DIR",
                     help="ModelStore directory: warm-start from a stored bundle "
                          "and persist one after cold start and every retrain")
    rep = serve.add_argument_group("replication")
    rep.add_argument("--workers", type=int, default=0, metavar="N",
                     help="run the replicated tier: N predictor worker "
                          "processes sharing the port via SO_REUSEPORT, plus "
                          "a coordinator owning all writes (0 = single "
                          "process, the default)")
    rep.add_argument("--wal", default=None, metavar="PATH",
                     help="write-ahead log file for the replicated tier; its "
                          "parent directory holds published model versions, "
                          "snapshots and the shared metrics board (required "
                          "when --workers > 0)")
    rep.add_argument("--snapshot-every", type=int, default=0, metavar="N",
                     help="checkpoint a model snapshot into the WAL every N "
                          "committed deltas, bounding replay time after a "
                          "crash (0 = never, replay from genesis)")
    rep.add_argument("--max-pending", type=int, default=0, metavar="N",
                     help="per-process admission limit: shed /predict with "
                          "429 beyond N in-flight requests (0 = unbounded)")
    rep.add_argument("--max-body-bytes", type=int, default=16 * 1024 * 1024,
                     help="reject request bodies larger than this with 413 "
                          "(default: 16 MiB)")
    srv.add_argument("--selftest", type=int, default=0, metavar="STEPS",
                     help="do not serve: replay STEPS deltas against an "
                          "in-process server under concurrent load, verify "
                          "every response, then exit (0 = disabled)")
    srv.add_argument("--quiet", action="store_true", help="suppress progress lines")
    _add_trace_option(serve)
    serve.set_defaults(func=_cmd_serve)

    matrix = sub.add_parser(
        "matrix",
        help="run the scenario matrix: datasets x scales x churn regimes x loads",
    )
    grid = matrix.add_argument_group("matrix axes")
    grid.add_argument("--datasets", type=_csv, default=("acm",), metavar="D1,D2,...",
                      help="registered dataset names (default: acm)")
    grid.add_argument("--scales", type=_csv_floats, default=(0.1,), metavar="S1,S2,...",
                      help="graph size multipliers (default: 0.1)")
    grid.add_argument("--regimes", type=_csv, default=None, metavar="R1,R2,...",
                      help="churn regimes (default: steady + every adversarial regime)")
    grid.add_argument("--loads", type=_csv, default=("none",), metavar="L1,L2,...",
                      help="serving loads: none, light, heavy (default: none)")
    exp = matrix.add_argument_group("per-cell experiment")
    exp.add_argument("--steps", type=int, default=4, help="delta steps per cell (default: 4)")
    exp.add_argument("--ratio", type=float, default=0.2, help="condensation ratio (default: 0.2)")
    exp.add_argument("--seed", type=int, default=0, help="schedule + condensation seed (default: 0)")
    exp.add_argument("--max-hops", type=int, default=None, metavar="K",
                     help="meta-path hop limit (default: the dataset's paper value, capped at 3)")
    exp.add_argument("--recondense-threshold", type=float, default=0.05,
                     help="edge fraction above which a step recondenses from scratch "
                          "(default: 0.05)")
    exp.add_argument("--verify-every", type=int, default=0, metavar="N",
                     help="verify byte-identity every N steps (default: 0, final step only)")
    exp.add_argument("--model", default="heterosgc",
                     help="serving model for load cells (default: heterosgc)")
    exp.add_argument("--hidden-dim", type=int, default=16)
    exp.add_argument("--epochs", type=int, default=15)
    exp.add_argument("--inject-faults", action="store_true",
                     help="install the deterministic fault injector in serving-load cells")
    gating = matrix.add_argument_group("regression gates")
    gating.add_argument("--baselines", default=".", metavar="DIR",
                        help="directory holding the committed BENCH_*.json baselines "
                             "(default: .)")
    gating.add_argument("--no-gates", action="store_true",
                        help="skip baseline-derived regression gates")
    _add_run_options(matrix)
    _add_trace_option(matrix)
    matrix.set_defaults(func=_cmd_matrix)

    report = sub.add_parser("report", help="render stored artifacts as a table, running nothing")
    report.add_argument("--store", default="runs", metavar="DIR",
                        help="artifact store directory (default: ./runs)")
    report.add_argument("--dataset", default=None, help="only rows for this dataset")
    report.add_argument("--markdown", action="store_true", help="render a Markdown table")
    report.add_argument("--no-timings", action="store_true",
                        help="omit wall-clock columns (byte-stable across runs)")
    report.add_argument("--output", metavar="PATH", help="also write the table to PATH")
    report.set_defaults(func=_cmd_report)

    lint = sub.add_parser(
        "lint",
        help="run the repo-invariant static-analysis pass (reprolint)",
        description=(
            "reprolint: AST rules encoding the repo's determinism, durability, "
            "cache-guard and async/process-safety invariants (docs/linting.md). "
            "Exit 0 when clean, 1 on non-baselined findings."
        ),
    )
    lint.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                      help="files/directories to lint (default: src)")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule ids/aliases (default: all rules)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="baseline of grandfathered findings "
                           "(default: tools/reprolint_baseline.json when present)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable report (stable schema)")
    lint.add_argument("--stats", action="store_true",
                      help="per-rule finding/baselined/suppression counts")
    lint.add_argument("--selftest", action="store_true",
                      help="prove every rule fires on its bad fixture and stays "
                           "silent on the good one")
    lint.add_argument("--list-rules", action="store_true",
                      help="show the rule catalogue with invariants")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline to cover current findings "
                           "(new entries get TODO reasons to fill in)")
    lint.set_defaults(func=_cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="record and inspect span-tree traces (docs/observability.md)",
        description=(
            "End-to-end tracing: `trace record -- <command>` runs any repro "
            "subcommand with the tracer installed (spawned workers write "
            "per-process sidecar files next to the main trace), `trace "
            "report` aggregates the span forest, `trace flame` emits "
            "collapsed stacks for flamegraph.pl / speedscope."
        ),
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_sub.add_parser(
        "record", help="run another repro command with tracing enabled"
    )
    record.add_argument("--out", default="trace.jsonl", metavar="PATH",
                        help="trace JSONL output file (default: trace.jsonl)")
    record.add_argument("--trace-id", default=None,
                        help="trace id (default: derived from the recorded command)")
    record.add_argument("--profile", action="store_true",
                        help="also sample RSS (and stamp deltas) per span")
    record.add_argument("--json", action="store_true",
                        help="print the aggregate report as JSON after the run")
    record.add_argument("argv", nargs=argparse.REMAINDER, metavar="-- COMMAND ...",
                        help="the repro command to record, after `--`")
    record.set_defaults(func=_cmd_trace_record)
    trace_report = trace_sub.add_parser(
        "report", help="aggregate + span-tree view of a recorded trace"
    )
    trace_report.add_argument("path",
                              help="trace JSONL file (worker sidecars `<path>.*` are merged)")
    trace_report.add_argument("--json", action="store_true",
                              help="emit the machine-readable report "
                                   "(schema repro.trace.report.v1)")
    trace_report.set_defaults(func=_cmd_trace_report)
    flame = trace_sub.add_parser(
        "flame", help="collapsed-stack output for flamegraph.pl / speedscope"
    )
    flame.add_argument("path",
                       help="trace JSONL file (worker sidecars `<path>.*` are merged)")
    flame.add_argument("--output", metavar="PATH",
                       help="write collapsed stacks to PATH instead of stdout")
    flame.set_defaults(func=_cmd_trace_flame)

    list_cmd = sub.add_parser("list", help="list registered components")
    list_cmd.add_argument(
        "what",
        nargs="?",
        default="all",
        choices=(
            "all", "datasets", "condensers", "models",
            "target-stages", "other-stages", "serving", "lint",
        ),
        help="which registry to list (default: all)",
    )
    list_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the listing as one machine-readable JSON object",
    )
    list_cmd.set_defaults(func=_cmd_list)

    return parser


# ---------------------------------------------------------------------- #
# Subcommand implementations
# ---------------------------------------------------------------------- #
def _progress_printer(quiet: bool) -> Callable[[CellOutcome, int, int], None] | None:
    if quiet:
        return None
    done = [0]

    def progress(outcome: CellOutcome, index: int, total: int) -> None:
        done[0] += 1
        status = "cached" if outcome.cached else f"ran {outcome.elapsed_s:.2f}s"
        print(f"[{done[0]}/{total}] {outcome.cell.label()}  {status}", flush=True)

    return progress


@contextmanager
def _maybe_trace(args: argparse.Namespace):
    """Install a tracer around a subcommand when it was given ``--trace``.

    The trace id is derived from the command's own parameters (never the
    clock), and the file/id are exported into the environment so spawned
    worker processes join the session via
    :func:`repro.obs.bootstrap_from_env`.
    """
    path = getattr(args, "trace", None)
    if not path:
        yield
        return
    from repro import obs

    dataset = getattr(args, "dataset", None) or ",".join(
        str(d) for d in (getattr(args, "datasets", None) or ())
    ) or "run"
    seed = getattr(args, "seed", None)
    if seed is None:
        seed = getattr(args, "base_seed", 0)
    trace_id = f"{args.command}-{dataset}-s{seed}"
    with obs.tracing(trace_id, path=path, export_env=True):
        yield
    if not getattr(args, "quiet", False):
        print(f"trace written to {path}", flush=True)


def _trace_paths(base: str | Path) -> list[Path]:
    """The main trace file plus every sidecar next to it.

    Sidecars are ``<base>.<scope>`` (per-process) and ``<base>.<n>``
    (rotation) files; all carry the same trace and merge into one forest.
    """
    base = Path(base)
    if not base.exists():
        raise ReproError(f"no trace file at {base}")
    return [base, *sorted(p for p in base.parent.glob(f"{base.name}.*") if p.is_file())]


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.spans import read_trace_tree

    argv = list(args.argv)
    if argv[:1] == ["--"]:
        argv = argv[1:]
    if not argv:
        raise ReproError(
            "trace record needs a command to record, e.g. "
            "`trace record --out run.jsonl -- stream --dataset acm --ratio 0.2`"
        )
    if argv[0] == "trace":
        raise ReproError("trace record cannot record the trace command itself")
    try:
        inner = build_parser().parse_args(argv)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2
    profiler = None
    if args.profile:
        from repro.obs.profile import SpanProfiler

        profiler = SpanProfiler()
    trace_id = args.trace_id or f"repro-{argv[0]}"
    with obs.tracing(trace_id, path=args.out, profiler=profiler, export_env=True):
        code = inner.func(inner)
    header, spans = read_trace_tree(_trace_paths(args.out))
    if args.json:
        import json

        from repro.obs.report import report_obj

        print(json.dumps(report_obj(header, spans), indent=2, sort_keys=True))
    else:
        print(f"recorded {len(spans)} spans (trace {header['trace_id']!r}) to {args.out}")
    return code


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.spans import read_trace_tree

    header, spans = read_trace_tree(_trace_paths(args.path))
    if args.json:
        import json

        from repro.obs.report import report_obj

        print(json.dumps(report_obj(header, spans), indent=2, sort_keys=True))
    else:
        from repro.obs.report import render_report

        print(render_report(header, spans))
    return 0


def _cmd_trace_flame(args: argparse.Namespace) -> int:
    from repro.obs.report import collapsed_stacks
    from repro.obs.spans import read_trace_tree

    _, spans = read_trace_tree(_trace_paths(args.path))
    text = "\n".join(collapsed_stacks(spans)) + "\n"
    if args.output:
        write_report(text, args.output)
    else:
        print(text, end="")
    return 0


def _resolve_store(args: argparse.Namespace) -> ArtifactStore | None:
    if getattr(args, "no_store", False):
        return None
    return ArtifactStore(args.store)


def _render(rows: Sequence[dict], args: argparse.Namespace, *, title: str,
            columns: Sequence[str] | None = None) -> str:
    if args.markdown:
        text = format_markdown_table(rows, columns=columns)
        if title:
            text = f"**{title}**\n\n{text}"
    else:
        text = format_table(rows, columns=columns, title=title)
    print(text)
    if args.output:
        write_report(text, args.output)
    return text


def _summarize(outcomes: list[CellOutcome], watch: Stopwatch, quiet: bool) -> None:
    if quiet:
        return
    cached = sum(1 for o in outcomes if o.cached)
    executed = len(outcomes) - cached
    print(
        f"{len(outcomes)} cells: {cached} cached, {executed} executed "
        f"in {watch.get('run'):.2f}s\n"
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    ratios = args.ratios
    if ratios is None:
        entry = registry.datasets.get(args.dataset)
        ratios = tuple(entry.paper_ratios)
    config = ExperimentConfig(
        dataset=args.dataset,
        ratios=ratios,
        methods=args.methods,
        model=args.model,
        scale=args.scale,
        seeds=args.seeds,
        base_seed=args.base_seed,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
        max_hops=args.max_hops,
        include_whole=not args.no_whole,
        fast_optimization=not args.paper_loops,
    )
    plan = plan_ratio_sweep(config)
    watch = Stopwatch()
    with watch.measure("run"):
        outcomes = execute_plan(
            plan,
            workers=args.workers,
            store=_resolve_store(args),
            force=args.force,
            progress=_progress_printer(args.quiet),
        )
    _summarize(outcomes, watch, args.quiet)
    rows = [outcome.evaluation.as_row() for outcome in outcomes]
    _render(
        rows,
        args,
        title=f"Ratio sweep — {args.dataset} ({args.model} test model)",
        columns=sweep_columns(include_timings=not args.no_timings),
    )
    return 0


def _cmd_generalize(args: argparse.Namespace) -> int:
    config = GeneralizationConfig(
        dataset=args.dataset,
        ratio=args.ratio,
        methods=args.methods,
        models=args.models,
        scale=args.scale,
        seeds=args.seeds,
        base_seed=args.base_seed,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
        max_hops=args.max_hops,
        fast_optimization=not args.paper_loops,
    )
    plan = plan_generalization(config)
    watch = Stopwatch()
    with watch.measure("run"):
        outcomes = execute_plan(
            plan,
            workers=args.workers,
            store=_resolve_store(args),
            force=args.force,
            progress=_progress_printer(args.quiet),
        )
    _summarize(outcomes, watch, args.quiet)
    evaluations = {key: o.evaluation for key, o in zip(plan.keys(), outcomes)}
    rows = assemble_generalization_rows(config, evaluations, plan=plan)
    _render(
        rows,
        args,
        title=f"Generalization — {args.dataset} @ ratio {args.ratio:g}",
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.condenser import FreeHGC
    from repro.datasets.generators import generate_delta_schedule
    from repro.evaluation.pipeline import make_model_factory
    from repro.evaluation.protocol import train_on_condensed
    from repro.streaming import IncrementalCondenser, graphs_equal

    config = StreamConfig(
        dataset=args.dataset,
        ratio=args.ratio,
        steps=args.steps,
        scale=args.scale,
        seed=args.seed,
        max_hops=args.max_hops,
        edge_churn=args.edge_churn,
        relations=args.relations,
        node_arrival_every=args.arrivals_every,
        arrival_count=args.arrival_count,
        removal_every=args.removals_every,
        removal_count=args.removal_count,
        recondense_threshold=args.recondense_threshold,
        verify_every=args.verify_every,
        eval_every=args.eval_every,
        model=args.model,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
    )
    entry = registry.datasets.get(config.dataset)
    graph = entry.loader(scale=config.scale, seed=config.seed)
    max_hops = config.resolved_max_hops()
    schedule = generate_delta_schedule(
        graph,
        steps=config.steps,
        seed=config.seed,
        edge_churn=config.edge_churn,
        relations=config.relations,
        node_arrival_every=config.node_arrival_every,
        arrival_count=config.arrival_count,
        removal_every=config.removal_every,
        removal_count=config.removal_count,
    )
    replica = graph.copy() if config.verify_every else None
    incremental = IncrementalCondenser(
        graph,
        condenser=FreeHGC(max_hops=max_hops),
        ratio=config.ratio,
        recondense_threshold=config.recondense_threshold,
        seed=config.seed,
    )
    model_factory = None
    if config.eval_every:
        model_factory = make_model_factory(
            config.model,
            hidden_dim=config.hidden_dim,
            epochs=config.epochs,
            max_hops=max_hops,
            seed=config.seed,
        )

    def quality(condensed) -> str:
        if model_factory is None:
            return ""
        model, _ = train_on_condensed(condensed, model_factory, incremental.graph)
        return f"{model.evaluate(incremental.graph):.4f}"

    watch = Stopwatch()
    rows: list[dict] = []
    mismatches = 0
    with watch.measure("cold"):
        base = incremental.condense()
    rows.append(
        {
            "step": 0,
            "mode": "full",
            "edges±": "",
            "nodes±": "",
            "delta%": "",
            "condense_s": f"{watch.get('cold'):.3f}",
            "drift": 0,
            "verified": "",
            "full_s": "",
            "accuracy": quality(base),
        }
    )
    if not args.quiet:
        print(f"step 0: cold condensation in {watch.get('cold'):.3f}s", flush=True)
    from repro.streaming import DeltaApplier

    replica_applier = DeltaApplier()
    for delta in schedule:
        report = incremental.step(delta)
        verified, full_seconds = "", ""
        if replica is not None:
            replica_applier.apply(replica, delta)
        if config.verify_every and delta.step % config.verify_every == 0:
            with watch.measure(f"full-{delta.step}"):
                full = FreeHGC(max_hops=max_hops).condense(
                    replica, config.ratio, seed=config.seed
                )
            full_seconds = f"{watch.get(f'full-{delta.step}'):.3f}"
            if graphs_equal(report.condensed, full):
                verified = "identical"
            else:
                verified = "MISMATCH"
                mismatches += 1
        apply_report = report.apply_report
        rows.append(
            {
                "step": delta.step,
                "mode": report.mode,
                "edges±": f"+{apply_report.edges_added}/-{apply_report.edges_removed}",
                "nodes±": f"+{apply_report.nodes_added}/-{apply_report.nodes_removed}",
                "delta%": f"{100.0 * report.edge_fraction:.2f}",
                "condense_s": f"{report.condense_seconds:.3f}",
                "drift": report.selection_drift,
                "verified": verified,
                "full_s": full_seconds,
                "accuracy": (
                    quality(report.condensed)
                    if config.eval_every and delta.step % config.eval_every == 0
                    else ""
                ),
            }
        )
        if not args.quiet:
            extra = f"  [{verified}]" if verified else ""
            print(
                f"step {delta.step}: {report.mode} condense "
                f"{report.condense_seconds:.3f}s drift={report.selection_drift}{extra}",
                flush=True,
            )

    incremental_times = [
        float(row["condense_s"]) for row in rows[1:] if row["mode"] == "incremental"
    ]
    full_times = [float(row["full_s"]) for row in rows if row["full_s"]]
    if not args.quiet:
        summary = f"{len(schedule)} steps"
        if incremental_times:
            summary += f", median incremental condense {np.median(incremental_times):.3f}s"
        if full_times:
            summary += f", median full recondense {np.median(full_times):.3f}s"
        memo = incremental.selection_memo.stats
        summary += (
            f" (coverage hits {memo['hits']}, warm starts {memo['warm_starts']}, "
            f"misses {memo['misses']})"
        )
        print(summary + "\n")
    columns = ("step", "mode", "edges±", "nodes±", "delta%", "drift", "verified", "accuracy")
    if not args.no_timings:
        columns = columns[:5] + ("condense_s", "full_s") + columns[5:]
    _render(
        rows,
        args,
        title=f"Streaming condensation — {config.dataset} @ ratio {config.ratio:g}",
        columns=[c for c in columns if any(str(row.get(c, "")) for row in rows)],
    )
    return 1 if mismatches else 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.datasets.adversarial import churn_regimes
    from repro.runner.gates import derive_matrix_gates
    from repro.runner.matrix import (
        MatrixConfig,
        consolidate,
        plan_matrix,
        run_matrix,
    )

    config = MatrixConfig(
        datasets=args.datasets,
        scales=args.scales,
        regimes=args.regimes if args.regimes is not None else churn_regimes(),
        loads=args.loads,
        steps=args.steps,
        ratio=args.ratio,
        seed=args.seed,
        max_hops=args.max_hops,
        recondense_threshold=args.recondense_threshold,
        verify_every=args.verify_every,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
        model=args.model,
        inject_faults=args.inject_faults,
    )
    plan = plan_matrix(config)
    store = _resolve_store(args)
    gates = () if args.no_gates else derive_matrix_gates(args.baselines)
    if not args.quiet:
        print(f"matrix: {len(plan)} cells ({plan.description}), "
              f"{len(gates)} baseline gates", flush=True)
    watch = Stopwatch()
    with watch.measure("run"):
        outcomes = run_matrix(
            plan,
            store=store,
            workers=args.workers,
            force=args.force,
            progress=_progress_printer(args.quiet),
        )
    _summarize(outcomes, watch, args.quiet)
    report = consolidate(outcomes, gates)

    rows = []
    for entry in report["cells"]:
        cell, result = entry["cell"], entry["result"]
        modes = result.get("modes", {})
        latency = result.get("latency_ms", {})
        speedup = result.get("speedup")
        rows.append(
            {
                "dataset": cell["dataset"],
                "scale": f"{cell['scale']:g}",
                "regime": cell["regime"],
                "load": cell["load"],
                "full/incr": f"{modes.get('full', 0)}/{modes.get('incremental', 0)}",
                "dirty_max": result.get("dirty_targets_max", 0),
                "delta%max": f"{100.0 * result.get('max_edge_fraction', 0.0):.2f}",
                "speedup": "" if speedup is None else f"{speedup:.2f}x",
                "p95_ms": "" if not latency else f"{latency.get('p95', 0.0):.2f}",
                "faults": sum(result.get("fault_fires", {}).values()) or "",
                "verified": (
                    "MISMATCH"
                    if result.get("mismatches")
                    else ("identical" if result.get("verified_checkpoints") else "")
                ),
                "gates": (
                    "FAIL:" + ",".join(entry["failed_gates"])
                    if entry["failed_gates"]
                    else "ok"
                ),
            }
        )
    columns = ("dataset", "scale", "regime", "load", "full/incr", "dirty_max",
               "delta%max", "speedup", "p95_ms", "faults", "verified", "gates")
    _render(
        rows,
        args,
        title=f"Scenario matrix — {len(plan)} cells",
        columns=[c for c in columns if any(str(row.get(c, "")) for row in rows)],
    )
    if store is not None:
        report_path = Path(store.root) / "matrix_report.json"
        report_path.write_text(_json.dumps(report, indent=2, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"wrote {report_path}")
    summary = report["summary"]
    if not args.quiet:
        print(
            f"matrix summary: {summary['total']} cells "
            f"({summary['cached']} cached), "
            f"{summary['verified_checkpoints']} checkpoints verified, "
            f"{summary['mismatches']} mismatches, "
            f"{summary['gate_failures']} gate failures"
        )
    return 0 if summary["passed"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.condenser import FreeHGC
    from repro.evaluation.pipeline import make_model_factory
    from repro.serving import ModelStore, ServingController, ServingServer

    config = ServeConfig(
        dataset=args.dataset,
        ratio=args.ratio,
        scale=args.scale,
        seed=args.seed,
        max_hops=args.max_hops,
        model=args.model,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
        recondense_threshold=args.recondense_threshold,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        host=args.host,
        port=args.port,
        bundle_store=args.bundle_store,
        workers=args.workers,
        wal=args.wal,
        snapshot_every=args.snapshot_every,
        max_pending=args.max_pending,
        max_body_bytes=args.max_body_bytes,
    )

    def log(message: str) -> None:
        if not args.quiet:
            print(message, flush=True)

    if config.workers > 0:
        if args.selftest:
            raise ReproError("--selftest runs in-process; drop --workers")
        return _serve_replicated(config, log)

    entry = registry.datasets.get(config.dataset)
    graph = entry.loader(scale=config.scale, seed=config.seed)
    max_hops = config.resolved_max_hops()
    factory = make_model_factory(
        config.model,
        hidden_dim=config.hidden_dim,
        epochs=config.epochs,
        max_hops=max_hops,
        seed=config.seed,
    )
    controller = ServingController(
        graph,
        factory,
        model_name=registry.models.canonical(config.model),
        ratio=config.ratio,
        condenser=FreeHGC(max_hops=max_hops),
        recondense_threshold=config.recondense_threshold,
        seed=config.seed,
        cache_size=config.cache_size,
    )
    store = ModelStore(config.bundle_store) if config.bundle_store else None
    key = config.bundle_key()
    warm_bundle = store.load(key) if store is not None and key in store else None

    log(f"condensing {config.dataset} @ ratio {config.ratio:g} and training {config.model}...")
    controller.start(warm_bundle=warm_bundle)
    log(
        "warm-started from stored bundle"
        if controller.warm_started
        else "cold start: trained a fresh model"
    )

    def persist(swap_report=None) -> None:
        if store is None:
            return
        if swap_report is not None and not swap_report.retrained:
            return  # unchanged weights: the stored revision is still current
        metadata = {"dataset": config.dataset, "ratio": config.ratio, "seed": config.seed}
        if swap_report is not None:
            metadata["step"] = swap_report.step
        store.put(key, controller.export_bundle(metadata=metadata))
        log(f"persisted bundle {key!r} revision {store.revision_of(key)}")

    if not controller.warm_started:
        persist()

    server = ServingServer(
        controller,
        host=config.host,
        port=config.port,
        max_batch=config.max_batch,
        batch_window_seconds=config.batch_window_ms / 1e3,
        # selftest deltas are synthetic: persisting their bundles would
        # shadow the cold-start bundle the next deployment warm-starts from
        on_swap=None if args.selftest else persist,
    )
    if args.selftest:
        return asyncio.run(_serve_selftest(server, controller, config, args.selftest, log))

    async def run() -> None:
        host, port = await server.start()
        log(f"serving {config.dataset} on http://{host}:{port} "
            f"(endpoints: /healthz /stats /predict /delta)")
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        log("interrupted: shutting down")
    return 0


def _serve_replicated(config: ServeConfig, log) -> int:
    """``serve --workers N --wal PATH``: the multi-process replicated tier.

    One coordinator process (this one) owns the WAL and all delta writes;
    ``N`` spawned workers answer ``/predict`` from memory-mapped published
    model versions, all sharing ``config.port`` via ``SO_REUSEPORT``.
    """
    import asyncio
    from pathlib import Path

    from repro.core.condenser import FreeHGC
    from repro.evaluation.pipeline import make_model_factory
    from repro.serving import ServingController
    from repro.serving.replicated import ReplicatedConfig, ReplicatedServer

    entry = registry.datasets.get(config.dataset)
    max_hops = config.resolved_max_hops()

    def make_controller(graph=None):
        if graph is None:
            graph = entry.loader(scale=config.scale, seed=config.seed)
        return ServingController(
            graph,
            make_model_factory(
                config.model,
                hidden_dim=config.hidden_dim,
                epochs=config.epochs,
                max_hops=max_hops,
                seed=config.seed,
            ),
            model_name=registry.models.canonical(config.model),
            ratio=config.ratio,
            condenser=FreeHGC(max_hops=max_hops),
            recondense_threshold=config.recondense_threshold,
            seed=config.seed,
            cache_size=config.cache_size,
        )

    wal_path = Path(config.wal)
    genesis = {
        "dataset": config.dataset,
        "scale": config.scale,
        "seed": config.seed,
        "ratio": config.ratio,
        "model": config.model,
        "hidden_dim": config.hidden_dim,
        "epochs": config.epochs,
        "max_hops": max_hops,
    }
    replicated = ReplicatedConfig(
        root=wal_path.parent,
        wal_filename=wal_path.name,
        host=config.host,
        port=config.port,
        workers=config.workers,
        snapshot_every=config.snapshot_every,
        max_pending=config.max_pending,
        max_body_bytes=config.max_body_bytes,
        cache_size=config.cache_size,
        max_batch=config.max_batch,
        batch_window_seconds=config.batch_window_ms / 1e3,
    )
    server = ReplicatedServer(make_controller, config=replicated, genesis=genesis)

    async def run() -> None:
        log(f"recovering from WAL {wal_path} (condense + train on cold start)...")
        host, port = await server.start()
        recovery = server.recovery
        log(f"recovery: mode={recovery['mode']} "
            f"deltas_replayed={recovery['deltas_replayed']} "
            f"quarantined={recovery.get('quarantined', 0)} "
            f"quarantined_now={recovery.get('quarantined_now', 0)} "
            f"version={server.controller.version}")
        if recovery.get("quarantined_now"):
            log(f"quarantine: {recovery['quarantined_now']} poison delta(s) "
                f"dead-lettered during this boot (see {wal_path}.deadletter)")
        log(f"serving {config.dataset} on http://{host}:{port} with "
            f"{config.workers} workers "
            "(endpoints: /healthz /stats /predict /delta /metrics)")
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        log("interrupted: shutting down")
    return 0


async def _serve_selftest(server, controller, config: ServeConfig, steps: int, log) -> int:
    """In-process smoke: concurrent predictions during a live delta replay.

    Every response is verified against a per-version snapshot of the
    session's own predictions, so a response served mid-swap must match
    either the old or the new model — exactly, and stamped with the right
    version.  Returns a non-zero exit code on any dropped or incorrect
    response.
    """
    import asyncio
    import json as _json

    import numpy as np

    from repro.datasets.generators import generate_delta_schedule

    host, port = await server.start()
    log(f"selftest server on http://{host}:{port}")
    num_targets = controller.session.num_targets
    all_ids = np.arange(num_targets, dtype=np.int64)
    def snapshot() -> "np.ndarray":
        # Reference labels straight from the logits, bypassing the LRU
        # cache, so the selftest also catches bad cache carry-over.
        return np.argmax(controller.session.logits(all_ids), axis=-1)

    expected = {controller.version: snapshot()}
    rng = np.random.default_rng(config.seed + 17)
    schedule = generate_delta_schedule(
        controller.graph, steps=steps, seed=config.seed + 1, edge_churn=0.005
    )
    failures = 0
    answered = 0

    async def request(method: str, path: str, payload: dict | None = None) -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        body = _json.dumps(payload or {}).encode()
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n".encode() + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, response_body = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        return {"http_status": status, "body": _json.loads(response_body or b"{}")}

    async def verified_predict() -> None:
        nonlocal failures, answered
        ids = rng.choice(num_targets, size=min(16, num_targets), replace=False)
        response = await request("POST", "/predict", {"nodes": ids.tolist()})
        answered += 1
        if response["http_status"] != 200:
            failures += 1
            return
        version = response["body"]["version"]
        reference = expected.get(version)
        if reference is None and version == controller.version:
            # A swap can land between our done() check and this response;
            # snapshot the (deterministic) new session lazily.
            reference = snapshot()
            expected[version] = reference
        if reference is None or not np.array_equal(
            np.asarray(response["body"]["labels"]), reference[ids]
        ):
            failures += 1

    health = await request("GET", "/healthz")
    if health["http_status"] != 200 or health["body"].get("status") != "ok":
        failures += 1
    for delta in schedule:
        swap_task = asyncio.create_task(
            request("POST", "/delta", delta.to_payload())
        )
        while not swap_task.done():
            await asyncio.gather(*(verified_predict() for _ in range(8)))
        swap = await swap_task
        if swap["http_status"] != 200:
            failures += 1
            continue
        swapped = swap["body"]
        expected.setdefault(swapped["version"], snapshot())
        log(
            f"step {swapped['step']}: version {swapped['version']} "
            f"retrained={swapped['retrained']} dirty={swapped['dirty_count']} "
            f"({answered} verified requests so far)"
        )
        await asyncio.gather(*(verified_predict() for _ in range(8)))
    stats = await request("GET", "/stats")
    await server.close()
    latency = stats["body"].get("latency", {})
    log(
        f"selftest: {answered} requests, {failures} failures, "
        f"p50={latency.get('p50', 0) * 1e3:.2f}ms p95={latency.get('p95', 0) * 1e3:.2f}ms"
    )
    if failures:
        print(f"error: serving selftest had {failures} failed/incorrect responses",
              file=sys.stderr)
        return 1
    return 0


def _dataset_key(name: str) -> str:
    """Alias-aware comparison key: canonical registry name, else lower-case."""
    try:
        return registry.datasets.canonical(name)
    except ReproError:
        return name.strip().lower()


def _cmd_report(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store)
    records = store.records()
    if not records:
        print(f"(no artifacts under {store.root})")
        return 0
    wanted = _dataset_key(args.dataset) if args.dataset else None
    rows = []
    for record in records:
        cell = record.get("cell", {})
        if wanted is not None and _dataset_key(str(cell.get("dataset", ""))) != wanted:
            continue
        evaluation = MethodEvaluation.from_dict(record["result"])
        row = evaluation.as_row()
        row["model"] = cell.get("model", "")
        rows.append(row)
    rows.sort(
        key=lambda row: (
            str(row["dataset"]),
            float(row["ratio"]),
            str(row["method"]),
            str(row["model"]),
        )
    )
    columns = sweep_columns(include_timings=not args.no_timings) + ("model",)
    _render(rows, args, title=f"Stored artifacts — {store.path}", columns=columns)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.lint import run_lint, selftest
    from repro.lint.report import render_human, render_json, render_stats
    from repro.lint.rules import resolve_rules

    rule_names = None
    if args.rules:
        rule_names = [part.strip() for part in args.rules.split(",") if part.strip()]

    if args.list_rules:
        catalogue = resolve_rules(rule_names)
        if args.json:
            payload = {"version": 1, "rules": [rule.describe() for rule in catalogue]}
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            for rule in catalogue:
                print(f"{rule.id}  {rule.name}  [{rule.severity}, {rule.category}]")
                print(f"    {rule.invariant}")
        return 0

    if args.selftest:
        failures = selftest(rule_names)
        if args.json:
            print(_json.dumps(
                {"version": 1, "failures": failures}, indent=2, sort_keys=True
            ))
        else:
            for failure in failures:
                print(f"selftest: FAIL {failure}")
            if not failures:
                count = len(resolve_rules(rule_names))
                print(f"selftest: all {count} rules fire on bad / stay silent on good")
        return 1 if failures else 0

    # Baseline resolution: an explicit --baseline must exist (Baseline.load
    # errors otherwise); the default one is picked up only when present, so
    # fresh checkouts and temp dirs lint without ceremony.
    baseline = args.baseline
    if baseline is None:
        default = Path("tools") / "reprolint_baseline.json"
        if default.exists():
            baseline = str(default)

    if args.update_baseline:
        target = args.baseline or str(Path("tools") / "reprolint_baseline.json")
        existing = baseline if baseline is not None and Path(baseline).exists() else None
        report = run_lint(args.paths, rules=rule_names, baseline=existing)
        updated = report.updated_baseline()
        updated.save(target)
        print(
            f"wrote {len(updated)} baseline entr"
            f"{'y' if len(updated) == 1 else 'ies'} to {target}"
        )
        return 0

    report = run_lint(args.paths, rules=rule_names, baseline=baseline)
    if args.json:
        print(render_json(report))
    elif args.stats:
        print(render_stats(report))
    else:
        print(render_human(report))
    return report.exit_code


#: serving is not a registry — its components are the fixed serving stack,
#: listed alongside the registries so deployment tooling can discover them
_SERVING_COMPONENTS = {
    "engine": "InferenceSession — micro-batched prediction over pre-computed features",
    "controller": "ServingController — zero-downtime hot-swap on streaming deltas",
    "server": "ServingServer — stdlib asyncio HTTP endpoint (python -m repro serve)",
    "model-store": "ModelStore — versioned .npz model bundles (weights + condensed graph)",
    "wal": "DeltaWAL — durable write-ahead delta log with snapshot checkpoints",
    "replicated": "ReplicatedServer — coordinator + SO_REUSEPORT worker pool over "
                  "mmap-shared model versions (python -m repro serve --workers N)",
}

_SERVING_ENDPOINTS = (
    "GET /healthz",
    "GET /stats",
    "GET /metrics",
    "POST /predict",
    "POST /delta",
)


def _registry_listing(reg: registry.Registry) -> dict[str, dict]:
    return {name: {"aliases": list(reg.aliases_of(name))} for name in reg.names()}


def _lint_listing() -> dict:
    from repro.lint import all_rules

    return {
        "rules": {rule.id: rule.describe() for rule in all_rules()},
        "subcommand": "python -m repro lint",
    }


def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        import json as _json

        payload: dict[str, object] = {}
        sections: dict[str, Callable[[], object]] = {
            "datasets": lambda: {
                name: {
                    "aliases": list(registry.datasets.aliases_of(name)),
                    "paper_ratios": [float(r) for r in registry.datasets.get(name).paper_ratios],
                    "max_hops": int(registry.datasets.get(name).max_hops),
                }
                for name in registry.datasets.names()
            },
            "condensers": lambda: _registry_listing(registry.condensers),
            "models": lambda: _registry_listing(registry.models),
            "target-stages": lambda: _registry_listing(registry.target_stages),
            "other-stages": lambda: _registry_listing(registry.other_stages),
            "serving": lambda: {
                "components": dict(_SERVING_COMPONENTS),
                "endpoints": list(_SERVING_ENDPOINTS),
                "subcommand": "python -m repro serve",
            },
            "lint": _lint_listing,
        }
        wanted = sections if args.what == "all" else {args.what: sections[args.what]}
        for name, build in wanted.items():
            payload[name] = build()
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0

    def show(label: str, reg: registry.Registry, describe=None) -> None:
        print(f"{label}:")
        for name in reg.names():
            aliases = reg.aliases_of(name)
            suffix = f"  (aliases: {', '.join(aliases)})" if aliases else ""
            extra = f"  {describe(name)}" if describe is not None else ""
            print(f"  {name}{suffix}{extra}")
        print()

    def show_serving() -> None:
        print("serving:")
        for name, description in _SERVING_COMPONENTS.items():
            print(f"  {name}  {description}")
        print(f"  endpoints: {', '.join(_SERVING_ENDPOINTS)}")
        print()

    def show_lint() -> None:
        from repro.lint import all_rules

        print("lint rules (python -m repro lint):")
        for rule in all_rules():
            print(f"  {rule.id}  {rule.name}  [{rule.severity}]")
        print()

    sections = {
        "datasets": lambda: show(
            "datasets",
            registry.datasets,
            lambda name: (
                f"[paper ratios: {', '.join(f'{r:g}' for r in registry.datasets.get(name).paper_ratios)}"
                f"; max hops: {registry.datasets.get(name).max_hops}]"
            ),
        ),
        "condensers": lambda: show("condensers", registry.condensers),
        "models": lambda: show("models", registry.models),
        "target-stages": lambda: show("target stages", registry.target_stages),
        "other-stages": lambda: show("father/leaf stages", registry.other_stages),
        "serving": show_serving,
        "lint": show_lint,
    }
    if args.what == "all":
        for section in sections.values():
            section()
    else:
        sections[args.what]()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Parameters
    ----------
    argv:
        Argument list (defaults to ``sys.argv[1:]``).

    Returns
    -------
    int
        ``0`` on success, ``2`` on a library-level error (unknown dataset,
        infeasible ratio, ...).
    """
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse already printed its usage/choice message; translate the
        # exit into a plain return code (2 for bad usage, 0 for --help) so
        # programmatic callers never see a SystemExit traceback.
        return exc.code if isinstance(exc.code, int) else 2
    try:
        with _maybe_trace(args):
            return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer went away (e.g. `python -m repro list | head`):
        # silence the shutdown-time flush error and exit cleanly.
        import os

        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except OSError:
            pass
        return 0
    except KeyboardInterrupt:
        return 130
