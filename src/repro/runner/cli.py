"""The ``python -m repro`` command line.

Four subcommands drive the planner/executor/store stack end to end:

``sweep``
    Table III-style ratio sweep: every (method, ratio) cell plus the
    whole-graph reference, rendered as an aligned text table.
``generalize``
    Table IV-style grid: every method's condensed graph trains every model;
    condensation is shared across the models of a row.
``report``
    Render rows from a store's artifacts without running anything.
``list``
    Show every registered dataset, condenser, model and stage strategy.

Runs are **resumable**: completed cells land in the artifact store (default
``./runs``) keyed by a content hash of the cell, and re-invoking the same
command skips them.  ``--workers N`` fans independent cells out over N
processes without changing any reported number (see
:mod:`repro.runner.executor`).

Example::

    python -m repro sweep --dataset acm --ratios 0.01,0.05 --workers 4
    python -m repro report --store runs --markdown
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import registry
from repro.errors import ReproError
from repro.evaluation.pipeline import ExperimentConfig
from repro.evaluation.protocol import MethodEvaluation
from repro.evaluation.reporting import (
    format_markdown_table,
    format_table,
    sweep_columns,
    write_report,
)
from repro.evaluation.timing import Stopwatch
from repro.runner.cache import ArtifactStore
from repro.runner.executor import CellOutcome, execute_plan
from repro.runner.plan import (
    GeneralizationConfig,
    StreamConfig,
    assemble_generalization_rows,
    plan_generalization,
    plan_ratio_sweep,
)

__all__ = ["main", "build_parser"]


def _csv(text: str) -> tuple[str, ...]:
    items = tuple(part.strip() for part in text.split(",") if part.strip())
    if not items:
        raise argparse.ArgumentTypeError(f"expected a comma-separated list, got {text!r}")
    return items


def _csv_floats(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in _csv(text))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad float list {text!r}: {exc}") from exc


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    run = parser.add_argument_group("run control")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes (default: 1, serial)")
    run.add_argument("--store", default="runs", metavar="DIR",
                     help="artifact store directory (default: ./runs)")
    run.add_argument("--no-store", action="store_true",
                     help="disable the artifact store (no caching, no resume)")
    run.add_argument("--force", action="store_true",
                     help="re-run cells even when the store already has them")
    run.add_argument("--quiet", action="store_true", help="suppress per-cell progress lines")
    out = parser.add_argument_group("output")
    out.add_argument("--markdown", action="store_true", help="render a Markdown table")
    out.add_argument("--no-timings", action="store_true",
                     help="omit wall-clock columns (byte-stable across runs)")
    out.add_argument("--output", metavar="PATH", help="also write the table to PATH")


def _add_experiment_options(parser: argparse.ArgumentParser, *, default_seeds: int) -> None:
    exp = parser.add_argument_group("experiment")
    exp.add_argument("--dataset", required=True, help="registered dataset name (see `list`)")
    exp.add_argument("--scale", type=float, default=0.35,
                     help="synthetic graph size multiplier (default: 0.35)")
    exp.add_argument("--seeds", type=int, default=default_seeds, metavar="N",
                     help=f"repeated trials per cell (default: {default_seeds})")
    exp.add_argument("--base-seed", type=int, default=0, help="root random seed (default: 0)")
    exp.add_argument("--hidden-dim", type=int, default=32,
                     help="evaluation-model hidden dimension (default: 32)")
    exp.add_argument("--epochs", type=int, default=80,
                     help="evaluation-model training epochs (default: 80)")
    exp.add_argument("--max-hops", type=int, default=None, metavar="K",
                     help="meta-path hop limit (default: the dataset's paper value, capped at 3)")
    exp.add_argument("--paper-loops", action="store_true",
                     help="use paper-scale optimisation loops for GCond/HGCond (slow)")


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel, resumable reproduction runner for the FreeHGC paper tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep",
        help="Table III ratio sweep: (method, ratio) grid + whole-graph reference",
    )
    _add_experiment_options(sweep, default_seeds=2)
    sweep.add_argument("--ratios", type=_csv_floats, default=None, metavar="R1,R2,...",
                       help="condensation ratios (default: the dataset's paper ratios)")
    sweep.add_argument("--methods", type=_csv, default=("random-hg", "herding-hg", "hgcond", "freehgc"),
                       metavar="M1,M2,...", help="condenser names (default: random-hg,herding-hg,hgcond,freehgc)")
    sweep.add_argument("--model", default="sehgnn", help="evaluation model (default: sehgnn)")
    sweep.add_argument("--no-whole", action="store_true",
                       help="skip the whole-graph reference row")
    _add_run_options(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    generalize = sub.add_parser(
        "generalize",
        help="Table IV grid: each method's condensed graph trains every model",
    )
    _add_experiment_options(generalize, default_seeds=1)
    generalize.add_argument("--ratio", type=float, required=True, help="condensation ratio")
    generalize.add_argument("--methods", type=_csv, default=("herding-hg", "hgcond", "freehgc"),
                            metavar="M1,M2,...", help="condenser names (default: herding-hg,hgcond,freehgc)")
    generalize.add_argument("--models", type=_csv, default=("hgb", "hgt", "han", "sehgnn"),
                            metavar="M1,M2,...", help="evaluation models (default: hgb,hgt,han,sehgnn)")
    _add_run_options(generalize)
    generalize.set_defaults(func=_cmd_generalize)

    stream = sub.add_parser(
        "stream",
        help="replay an evolving-graph delta schedule through incremental condensation",
    )
    exp = stream.add_argument_group("experiment")
    exp.add_argument("--dataset", required=True, help="registered dataset name (see `list`)")
    exp.add_argument("--ratio", type=float, required=True, help="condensation ratio")
    exp.add_argument("--steps", type=int, default=20, help="delta steps to replay (default: 20)")
    exp.add_argument("--scale", type=float, default=0.35,
                     help="synthetic graph size multiplier (default: 0.35)")
    exp.add_argument("--seed", type=int, default=0, help="schedule + condensation seed (default: 0)")
    exp.add_argument("--max-hops", type=int, default=None, metavar="K",
                     help="meta-path hop limit (default: the dataset's paper value, capped at 3)")
    sched = stream.add_argument_group("delta schedule")
    sched.add_argument("--edge-churn", type=float, default=0.002,
                       help="per-step churned edge fraction per relation (default: 0.002)")
    sched.add_argument("--relations", type=_csv, default=None, metavar="R1,R2,...",
                       help="relations to churn (default: all)")
    sched.add_argument("--arrivals-every", type=int, default=0, metavar="N",
                       help="insert nodes every N steps (default: 0, disabled)")
    sched.add_argument("--arrival-count", type=int, default=4,
                       help="nodes inserted per type per arrival step (default: 4)")
    sched.add_argument("--removals-every", type=int, default=0, metavar="N",
                       help="tombstone nodes every N steps (default: 0, disabled)")
    sched.add_argument("--removal-count", type=int, default=2,
                       help="nodes tombstoned per type per removal step (default: 2)")
    cond = stream.add_argument_group("condensation")
    cond.add_argument("--recondense-threshold", type=float, default=0.05,
                      help="edge fraction above which a step recondenses from "
                           "scratch (default: 0.05)")
    cond.add_argument("--verify-every", type=int, default=0, metavar="N",
                      help="every N steps, recondense fully and assert the "
                           "incremental result is byte-identical (default: 0, off)")
    cond.add_argument("--eval-every", type=int, default=0, metavar="N",
                      help="every N steps, train a model on the condensed graph "
                           "and report full-graph test accuracy (default: 0, off)")
    cond.add_argument("--model", default="heterosgc",
                      help="evaluation model for --eval-every (default: heterosgc)")
    cond.add_argument("--hidden-dim", type=int, default=32)
    cond.add_argument("--epochs", type=int, default=40)
    out = stream.add_argument_group("output")
    out.add_argument("--markdown", action="store_true", help="render a Markdown table")
    out.add_argument("--no-timings", action="store_true",
                     help="omit wall-clock columns (byte-stable across runs)")
    out.add_argument("--output", metavar="PATH", help="also write the table to PATH")
    out.add_argument("--quiet", action="store_true", help="suppress per-step progress lines")
    stream.set_defaults(func=_cmd_stream)

    report = sub.add_parser("report", help="render stored artifacts as a table, running nothing")
    report.add_argument("--store", default="runs", metavar="DIR",
                        help="artifact store directory (default: ./runs)")
    report.add_argument("--dataset", default=None, help="only rows for this dataset")
    report.add_argument("--markdown", action="store_true", help="render a Markdown table")
    report.add_argument("--no-timings", action="store_true",
                        help="omit wall-clock columns (byte-stable across runs)")
    report.add_argument("--output", metavar="PATH", help="also write the table to PATH")
    report.set_defaults(func=_cmd_report)

    list_cmd = sub.add_parser("list", help="list registered components")
    list_cmd.add_argument(
        "what",
        nargs="?",
        default="all",
        choices=("all", "datasets", "condensers", "models", "target-stages", "other-stages"),
        help="which registry to list (default: all)",
    )
    list_cmd.set_defaults(func=_cmd_list)

    return parser


# ---------------------------------------------------------------------- #
# Subcommand implementations
# ---------------------------------------------------------------------- #
def _progress_printer(quiet: bool) -> Callable[[CellOutcome, int, int], None] | None:
    if quiet:
        return None
    done = [0]

    def progress(outcome: CellOutcome, index: int, total: int) -> None:
        done[0] += 1
        status = "cached" if outcome.cached else f"ran {outcome.elapsed_s:.2f}s"
        print(f"[{done[0]}/{total}] {outcome.cell.label()}  {status}", flush=True)

    return progress


def _resolve_store(args: argparse.Namespace) -> ArtifactStore | None:
    if getattr(args, "no_store", False):
        return None
    return ArtifactStore(args.store)


def _render(rows: Sequence[dict], args: argparse.Namespace, *, title: str,
            columns: Sequence[str] | None = None) -> str:
    if args.markdown:
        text = format_markdown_table(rows, columns=columns)
        if title:
            text = f"**{title}**\n\n{text}"
    else:
        text = format_table(rows, columns=columns, title=title)
    print(text)
    if args.output:
        write_report(text, args.output)
    return text


def _summarize(outcomes: list[CellOutcome], watch: Stopwatch, quiet: bool) -> None:
    if quiet:
        return
    cached = sum(1 for o in outcomes if o.cached)
    executed = len(outcomes) - cached
    print(
        f"{len(outcomes)} cells: {cached} cached, {executed} executed "
        f"in {watch.get('run'):.2f}s\n"
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    ratios = args.ratios
    if ratios is None:
        entry = registry.datasets.get(args.dataset)
        ratios = tuple(entry.paper_ratios)
    config = ExperimentConfig(
        dataset=args.dataset,
        ratios=ratios,
        methods=args.methods,
        model=args.model,
        scale=args.scale,
        seeds=args.seeds,
        base_seed=args.base_seed,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
        max_hops=args.max_hops,
        include_whole=not args.no_whole,
        fast_optimization=not args.paper_loops,
    )
    plan = plan_ratio_sweep(config)
    watch = Stopwatch()
    with watch.measure("run"):
        outcomes = execute_plan(
            plan,
            workers=args.workers,
            store=_resolve_store(args),
            force=args.force,
            progress=_progress_printer(args.quiet),
        )
    _summarize(outcomes, watch, args.quiet)
    rows = [outcome.evaluation.as_row() for outcome in outcomes]
    _render(
        rows,
        args,
        title=f"Ratio sweep — {args.dataset} ({args.model} test model)",
        columns=sweep_columns(include_timings=not args.no_timings),
    )
    return 0


def _cmd_generalize(args: argparse.Namespace) -> int:
    config = GeneralizationConfig(
        dataset=args.dataset,
        ratio=args.ratio,
        methods=args.methods,
        models=args.models,
        scale=args.scale,
        seeds=args.seeds,
        base_seed=args.base_seed,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
        max_hops=args.max_hops,
        fast_optimization=not args.paper_loops,
    )
    plan = plan_generalization(config)
    watch = Stopwatch()
    with watch.measure("run"):
        outcomes = execute_plan(
            plan,
            workers=args.workers,
            store=_resolve_store(args),
            force=args.force,
            progress=_progress_printer(args.quiet),
        )
    _summarize(outcomes, watch, args.quiet)
    evaluations = {key: o.evaluation for key, o in zip(plan.keys(), outcomes)}
    rows = assemble_generalization_rows(config, evaluations, plan=plan)
    _render(
        rows,
        args,
        title=f"Generalization — {args.dataset} @ ratio {args.ratio:g}",
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.condenser import FreeHGC
    from repro.datasets.generators import generate_delta_schedule
    from repro.evaluation.pipeline import make_model_factory
    from repro.evaluation.protocol import train_on_condensed
    from repro.streaming import IncrementalCondenser, graphs_equal

    config = StreamConfig(
        dataset=args.dataset,
        ratio=args.ratio,
        steps=args.steps,
        scale=args.scale,
        seed=args.seed,
        max_hops=args.max_hops,
        edge_churn=args.edge_churn,
        relations=args.relations,
        node_arrival_every=args.arrivals_every,
        arrival_count=args.arrival_count,
        removal_every=args.removals_every,
        removal_count=args.removal_count,
        recondense_threshold=args.recondense_threshold,
        verify_every=args.verify_every,
        eval_every=args.eval_every,
        model=args.model,
        hidden_dim=args.hidden_dim,
        epochs=args.epochs,
    )
    entry = registry.datasets.get(config.dataset)
    graph = entry.loader(scale=config.scale, seed=config.seed)
    max_hops = config.resolved_max_hops()
    schedule = generate_delta_schedule(
        graph,
        steps=config.steps,
        seed=config.seed,
        edge_churn=config.edge_churn,
        relations=config.relations,
        node_arrival_every=config.node_arrival_every,
        arrival_count=config.arrival_count,
        removal_every=config.removal_every,
        removal_count=config.removal_count,
    )
    replica = graph.copy() if config.verify_every else None
    incremental = IncrementalCondenser(
        graph,
        condenser=FreeHGC(max_hops=max_hops),
        ratio=config.ratio,
        recondense_threshold=config.recondense_threshold,
        seed=config.seed,
    )
    model_factory = None
    if config.eval_every:
        model_factory = make_model_factory(
            config.model,
            hidden_dim=config.hidden_dim,
            epochs=config.epochs,
            max_hops=max_hops,
            seed=config.seed,
        )

    def quality(condensed) -> str:
        if model_factory is None:
            return ""
        model, _ = train_on_condensed(condensed, model_factory, incremental.graph)
        return f"{model.evaluate(incremental.graph):.4f}"

    watch = Stopwatch()
    rows: list[dict] = []
    mismatches = 0
    with watch.measure("cold"):
        base = incremental.condense()
    rows.append(
        {
            "step": 0,
            "mode": "full",
            "edges±": "",
            "nodes±": "",
            "delta%": "",
            "condense_s": f"{watch.get('cold'):.3f}",
            "drift": 0,
            "verified": "",
            "full_s": "",
            "accuracy": quality(base),
        }
    )
    if not args.quiet:
        print(f"step 0: cold condensation in {watch.get('cold'):.3f}s", flush=True)
    from repro.streaming import DeltaApplier

    replica_applier = DeltaApplier()
    for delta in schedule:
        report = incremental.step(delta)
        verified, full_seconds = "", ""
        if replica is not None:
            replica_applier.apply(replica, delta)
        if config.verify_every and delta.step % config.verify_every == 0:
            with watch.measure(f"full-{delta.step}"):
                full = FreeHGC(max_hops=max_hops).condense(
                    replica, config.ratio, seed=config.seed
                )
            full_seconds = f"{watch.get(f'full-{delta.step}'):.3f}"
            if graphs_equal(report.condensed, full):
                verified = "identical"
            else:
                verified = "MISMATCH"
                mismatches += 1
        apply_report = report.apply_report
        rows.append(
            {
                "step": delta.step,
                "mode": report.mode,
                "edges±": f"+{apply_report.edges_added}/-{apply_report.edges_removed}",
                "nodes±": f"+{apply_report.nodes_added}/-{apply_report.nodes_removed}",
                "delta%": f"{100.0 * report.edge_fraction:.2f}",
                "condense_s": f"{report.condense_seconds:.3f}",
                "drift": report.selection_drift,
                "verified": verified,
                "full_s": full_seconds,
                "accuracy": (
                    quality(report.condensed)
                    if config.eval_every and delta.step % config.eval_every == 0
                    else ""
                ),
            }
        )
        if not args.quiet:
            extra = f"  [{verified}]" if verified else ""
            print(
                f"step {delta.step}: {report.mode} condense "
                f"{report.condense_seconds:.3f}s drift={report.selection_drift}{extra}",
                flush=True,
            )

    incremental_times = [
        float(row["condense_s"]) for row in rows[1:] if row["mode"] == "incremental"
    ]
    full_times = [float(row["full_s"]) for row in rows if row["full_s"]]
    if not args.quiet:
        summary = f"{len(schedule)} steps"
        if incremental_times:
            summary += f", median incremental condense {np.median(incremental_times):.3f}s"
        if full_times:
            summary += f", median full recondense {np.median(full_times):.3f}s"
        memo = incremental.selection_memo.stats
        summary += (
            f" (coverage hits {memo['hits']}, warm starts {memo['warm_starts']}, "
            f"misses {memo['misses']})"
        )
        print(summary + "\n")
    columns = ("step", "mode", "edges±", "nodes±", "delta%", "drift", "verified", "accuracy")
    if not args.no_timings:
        columns = columns[:5] + ("condense_s", "full_s") + columns[5:]
    _render(
        rows,
        args,
        title=f"Streaming condensation — {config.dataset} @ ratio {config.ratio:g}",
        columns=[c for c in columns if any(str(row.get(c, "")) for row in rows)],
    )
    return 1 if mismatches else 0


def _dataset_key(name: str) -> str:
    """Alias-aware comparison key: canonical registry name, else lower-case."""
    try:
        return registry.datasets.canonical(name)
    except ReproError:
        return name.strip().lower()


def _cmd_report(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store)
    records = store.records()
    if not records:
        print(f"(no artifacts under {store.root})")
        return 0
    wanted = _dataset_key(args.dataset) if args.dataset else None
    rows = []
    for record in records:
        cell = record.get("cell", {})
        if wanted is not None and _dataset_key(str(cell.get("dataset", ""))) != wanted:
            continue
        evaluation = MethodEvaluation.from_dict(record["result"])
        row = evaluation.as_row()
        row["model"] = cell.get("model", "")
        rows.append(row)
    rows.sort(
        key=lambda row: (
            str(row["dataset"]),
            float(row["ratio"]),
            str(row["method"]),
            str(row["model"]),
        )
    )
    columns = sweep_columns(include_timings=not args.no_timings) + ("model",)
    _render(rows, args, title=f"Stored artifacts — {store.path}", columns=columns)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    def show(label: str, reg: registry.Registry, describe=None) -> None:
        print(f"{label}:")
        for name in reg.names():
            aliases = reg.aliases_of(name)
            suffix = f"  (aliases: {', '.join(aliases)})" if aliases else ""
            extra = f"  {describe(name)}" if describe is not None else ""
            print(f"  {name}{suffix}{extra}")
        print()

    sections = {
        "datasets": lambda: show(
            "datasets",
            registry.datasets,
            lambda name: (
                f"[paper ratios: {', '.join(f'{r:g}' for r in registry.datasets.get(name).paper_ratios)}"
                f"; max hops: {registry.datasets.get(name).max_hops}]"
            ),
        ),
        "condensers": lambda: show("condensers", registry.condensers),
        "models": lambda: show("models", registry.models),
        "target-stages": lambda: show("target stages", registry.target_stages),
        "other-stages": lambda: show("father/leaf stages", registry.other_stages),
    }
    if args.what == "all":
        for section in sections.values():
            section()
    else:
        sections[args.what]()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Parameters
    ----------
    argv:
        Argument list (defaults to ``sys.argv[1:]``).

    Returns
    -------
    int
        ``0`` on success, ``2`` on a library-level error (unknown dataset,
        infeasible ratio, ...).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
